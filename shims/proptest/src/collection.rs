//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A vector of values from `element`, with a length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.end > len.start, "empty length range");
    VecStrategy { element, len }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
