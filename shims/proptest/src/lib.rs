//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no network access and no vendored registry, so
//! this crate reimplements exactly the slice of proptest's API the workspace
//! uses: `Strategy` + `prop_map`, `Just`, `any::<T>()`, range and string
//! (char-class regex) strategies, tuple and `collection::vec` composition,
//! weighted `prop_oneof!`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros. Generation is deterministic per test (seedable
//! via `PROPTEST_SEED`) so failures reproduce across runs; there is no
//! shrinking — a failing case panics with the generated inputs' debug output
//! from the assertion message instead.

#![allow(clippy::all)] // stand-in shim, not house code
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}
