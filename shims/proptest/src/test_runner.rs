//! The test runner: a deterministic RNG plus a case loop.

use std::fmt;

/// A small, fast, deterministic RNG (splitmix64). Quality is plenty for
/// test-input generation and the determinism is what we actually want.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift reduction; bias is negligible at test scale.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runner configuration. Only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case (what `prop_assert!` returns).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Proptest signals "discard this input" with `Reject`; we simply skip.
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives one `proptest!` test function for `config.cases` iterations.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> TestRunner {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x853c_49e6_748f_ea9b);
        TestRunner {
            config,
            rng: TestRng::new(seed),
        }
    }

    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for i in 0..self.config.cases {
            if let Err(e) = case(&mut self.rng) {
                panic!("proptest case {i}/{} failed: {e}", self.config.cases);
            }
        }
    }
}
