//! Strategies: composable random-value generators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// A generator of values of one type. Unlike real proptest there is no
/// shrink tree — `generate` yields the value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// `s.prop_map(f)`.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Any value of a primitive type, with a bias toward boundary values.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // One case in eight is a boundary value; edges find bugs.
                if rng.below(8) == 0 {
                    match rng.below(4) {
                        0 => 0 as $t,
                        1 => 1 as $t,
                        2 => <$t>::MAX,
                        _ => <$t>::MIN,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        if rng.below(8) == 0 {
            match rng.below(5) {
                0 => 0.0,
                1 => -0.0,
                2 => f64::INFINITY,
                3 => f64::NEG_INFINITY,
                _ => f64::NAN,
            }
        } else {
            // Reinterpreted random bits cover the whole representable line.
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xd800) as u32).unwrap_or('a')
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// String literals are strategies, interpreted as a tiny regex subset:
/// one char class with a bounded repetition, e.g. `"[a-z0-9 ]{0,12}"`.
/// Anything that doesn't parse as that shape generates itself literally.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_repeat(self) {
            Some((chars, lo, hi)) => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parse `[class]{lo,hi}` into (expanded characters, lo, hi).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let rest = rest.strip_prefix('{')?;
    let bounds = rest.strip_suffix('}')?;
    let (lo, hi) = bounds.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    if hi < lo {
        return None;
    }
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            for c in cs[i]..=cs[i + 2] {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

/// Weighted choice between strategies sharing an output type
/// (what `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<(u32, Rc<dyn Fn(&mut TestRng) -> T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Default for Union<T> {
    fn default() -> Self {
        Union {
            arms: Vec::new(),
            total: 0,
        }
    }
}

impl<T> Union<T> {
    pub fn empty() -> Union<T> {
        Union::default()
    }

    pub fn push(&mut self, weight: u32, arm: Rc<dyn Fn(&mut TestRng) -> T>) {
        self.total += weight as u64;
        self.arms.push((weight, arm));
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.total > 0, "empty prop_oneof!");
        let mut pick = rng.below(self.total);
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Weighted (or unweighted) choice between strategies: `prop_oneof![a, b]`
/// or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {{
        let mut union = $crate::strategy::Union::empty();
        $(
            let s = $strat;
            union.push(
                $weight as u32,
                ::std::rc::Rc::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }),
            );
        )+
        union
    }};
    ($($strat:expr),+ $(,)?) => {{
        let mut union = $crate::strategy::Union::empty();
        $(
            let s = $strat;
            union.push(
                1,
                ::std::rc::Rc::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }),
            );
        )+
        union
    }};
}

/// The case macro: each `#[test]` fn runs `cases` times over fresh inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])+
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run(|rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                let mut case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                case()
            });
        }
    )+};
}

/// Assert inside a `proptest!` body; failure fails the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}
