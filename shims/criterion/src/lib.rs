//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Mirrors the subset of the API the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `b.iter` — with a
//! plain median-of-samples wall-clock measurement. Like real criterion,
//! when the binary is run without `--bench` (as `cargo test` does for bench
//! targets) every benchmark body executes exactly once as a smoke test, so
//! the test suite stays fast.

#![allow(clippy::all)] // stand-in shim, not house code
use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

pub struct Criterion {
    measure: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measure: std::env::args().any(|a| a == "--bench"),
            sample_size: 30,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measure: self.measure,
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.measure, self.sample_size, f);
        self
    }
}

/// Names one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    measure: bool,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{name}", self.name);
        run_one(&label, self.measure, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.measure, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, measure: bool, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        measure,
        samples: Vec::new(),
    };
    if !measure {
        f(&mut b);
        return;
    }
    for _ in 0..sample_size {
        f(&mut b);
    }
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "{label:<56} median {median:>12.2?}  ({} samples)",
        b.samples.len()
    );
}

pub struct Bencher {
    measure: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        if !self.measure {
            black_box(routine());
            return;
        }
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
