//! Offline stand-in for serde_derive: derives that accept the `serde`
//! attribute namespace and emit stub trait impls. The workspace never
//! serializes derived types at runtime (forms persist through their own
//! stored-form encoding), so the stubs only need to type-check; calling one
//! surfaces a clear runtime error instead of silently doing nothing.

#![allow(clippy::all)] // stand-in shim, not house code
use proc_macro::{TokenStream, TokenTree};

/// The name of the struct/enum a derive was applied to.
fn item_name(input: &TokenStream) -> Option<String> {
    let mut saw_kind = false;
    for tree in input.clone() {
        match tree {
            TokenTree::Ident(id) => {
                let text = id.to_string();
                if saw_kind {
                    return Some(text);
                }
                if text == "struct" || text == "enum" {
                    saw_kind = true;
                }
            }
            _ => continue,
        }
    }
    None
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Some(name) = item_name(&input) else {
        return "compile_error!(\"serde shim: cannot find item name\");"
            .parse()
            .unwrap();
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::std::result::Result<S::Ok, S::Error> {{\n\
                 let _ = serializer;\n\
                 ::std::result::Result::Err(<S::Error as ::serde::ser::Error>::custom(\n\
                     \"serde shim: derived Serialize for {name} is a stub\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Some(name) = item_name(&input) else {
        return "compile_error!(\"serde shim: cannot find item name\");"
            .parse()
            .unwrap();
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                 -> ::std::result::Result<Self, D::Error> {{\n\
                 let _ = deserializer;\n\
                 ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\n\
                     \"serde shim: derived Deserialize for {name} is a stub\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
