//! Offline stand-in for [serde](https://crates.io/crates/serde).
//!
//! The workspace only *compiles against* serde (derives on form specs plus a
//! `#[serde(with = ...)]` adapter module); nothing serializes through it at
//! runtime — persistence uses the crate-local stored-form encoding. This shim
//! therefore provides the trait surface those items need to type-check:
//! `Serialize`/`Serializer`, `Deserialize`/`Deserializer`, the `ser::Error` /
//! `de::Error` constructor traits, and (behind the `derive` feature) stub
//! derive macros that accept `#[serde(...)]` attributes. Embedders who want
//! real serialization bring the real crates by restoring the registry
//! versions in `[workspace.dependencies]`.

#![allow(clippy::all)] // stand-in shim, not house code
use std::fmt::Display;

pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;

    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for i64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self)
    }
}

impl Serialize for u64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

pub trait Deserializer<'de>: Sized {
    type Error: de::Error;

    fn deserialize_string(self) -> Result<String, Self::Error>;
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}

pub mod ser {
    use super::Display;

    /// Error constructor every serializer error type must provide.
    pub trait Error: Sized {
        fn custom<T: Display>(msg: T) -> Self;
    }
}

pub mod de {
    use super::Display;

    /// Error constructor every deserializer error type must provide.
    pub trait Error: Sized {
        fn custom<T: Display>(msg: T) -> Self;
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
