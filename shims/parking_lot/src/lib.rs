//! Offline stand-in for [parking_lot](https://crates.io/crates/parking_lot).
//!
//! Thin wrappers over `std::sync` primitives exposing parking_lot's
//! poison-free API: `lock()` returns a guard directly, and a mutex poisoned
//! by a panicking holder is transparently recovered (parking_lot never
//! poisons at all).

#![allow(clippy::all)] // stand-in shim, not house code
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
