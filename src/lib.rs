//! # wow — Windows on the World
//!
//! Umbrella crate re-exporting the whole workspace: a reproduction of the
//! SIGMOD 1983 forms-over-views database interface. See the repository
//! README and `DESIGN.md` for architecture; start with [`wow_core::World`].

pub use wow_core as core;
pub use wow_forms as forms;
pub use wow_net as net;
pub use wow_obs as obs;
pub use wow_rel as rel;
pub use wow_storage as storage;
pub use wow_tui as tui;
pub use wow_views as views;
pub use wow_workload as workload;
