//! A ring-buffered span tracer.
//!
//! Each instrumented operation records one fixed-size [`Span`] — no
//! allocation on the hot path; the ring is preallocated and old spans are
//! overwritten. Tracing is double-gated:
//!
//! * the `trace` cargo feature compiles the instrumentation in or out
//!   entirely (benches that want a provably-zero-cost build disable it);
//! * at runtime an atomic flag ([`Tracer::set_enabled`]) turns recording on
//!   or off — while off, a started span costs one relaxed atomic load.
//!
//! The ring is guarded by a mutex whose critical section is a slot write;
//! the tracer never calls back into the system under the lock, so recording
//! from *any* code path — including the lock manager — cannot deadlock
//! (exercised by the concurrency tests).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The instrumented operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Op {
    /// Compiling a default form from a schema.
    FormCompile = 0,
    /// Opening a window (cursor construction + form compile + analyze).
    BrowseOpen,
    /// Fetching one screenful into a browse cursor.
    BrowsePage,
    /// Executing a physical plan.
    QueryExec,
    /// Patching a window in place from a view delta.
    DeltaRefresh,
    /// Re-running a window's view query.
    FullRefresh,
    /// One lock-manager acquire call.
    LockAcquire,
    /// Appending one WAL record.
    WalAppend,
    /// Composing + diffing one screen frame.
    TuiRedraw,
    /// One through-window commit (edit/insert/delete).
    Commit,
    /// Partitioning work into chunks and dispatching it to the pool.
    ParScatter,
    /// Parallel read-only compute phase of a refresh fan-out.
    ParCompute,
    /// Sequential apply phase splicing parallel results into cursors.
    ParApply,
    /// Accepting one network connection (handshake included).
    NetAccept,
    /// Handling one wire-protocol request end to end (decode → execute →
    /// response enqueued).
    NetRequest,
    /// Building and enqueueing one `WindowRefreshed` push frame.
    NetPush,
    /// Evaluating compiled predicates/projections over one column batch.
    VecEval,
}

impl Op {
    /// Every operation, in declaration order (indexes the registry's
    /// histogram table).
    pub const ALL: [Op; 17] = [
        Op::FormCompile,
        Op::BrowseOpen,
        Op::BrowsePage,
        Op::QueryExec,
        Op::DeltaRefresh,
        Op::FullRefresh,
        Op::LockAcquire,
        Op::WalAppend,
        Op::TuiRedraw,
        Op::Commit,
        Op::ParScatter,
        Op::ParCompute,
        Op::ParApply,
        Op::NetAccept,
        Op::NetRequest,
        Op::NetPush,
        Op::VecEval,
    ];

    /// Stable snake_case name (metric keys, system-table rows, JSON).
    pub fn name(self) -> &'static str {
        match self {
            Op::FormCompile => "form_compile",
            Op::BrowseOpen => "browse_open",
            Op::BrowsePage => "browse_page",
            Op::QueryExec => "query_exec",
            Op::DeltaRefresh => "delta_refresh",
            Op::FullRefresh => "full_refresh",
            Op::LockAcquire => "lock_acquire",
            Op::WalAppend => "wal_append",
            Op::TuiRedraw => "tui_redraw",
            Op::Commit => "commit",
            Op::ParScatter => "par_scatter",
            Op::ParCompute => "par_compute",
            Op::ParApply => "par_apply",
            Op::NetAccept => "net_accept",
            Op::NetRequest => "net_request",
            Op::NetPush => "net_push",
            Op::VecEval => "vec_eval",
        }
    }
}

/// One recorded span. Fixed-size by construction: labels are the [`Op`]
/// enum, the free-form payload is a single integer argument (rows touched,
/// bytes appended, outcome code — whatever the site finds useful).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Monotonic sequence number (global across ring wraps).
    pub seq: u64,
    /// What ran.
    pub op: Op,
    /// Start time, microseconds since the tracer was created.
    pub start_us: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Site-specific argument.
    pub arg: u64,
}

struct Ring {
    buf: Vec<Span>,
    /// Next slot to write.
    head: usize,
    /// Live spans (≤ capacity).
    len: usize,
}

/// The tracer: a runtime-switchable, fixed-capacity span ring.
pub struct Tracer {
    enabled: AtomicBool,
    seq: AtomicU64,
    epoch: Instant,
    ring: Mutex<Ring>,
    capacity: usize,
}

/// Default ring capacity (fixed-size spans; ~256 KiB).
pub const DEFAULT_CAPACITY: usize = 4096;

static TRACER: OnceLock<Tracer> = OnceLock::new();

/// The process-global tracer.
pub fn tracer() -> &'static Tracer {
    TRACER.get_or_init(|| Tracer::new(DEFAULT_CAPACITY))
}

impl Tracer {
    /// A tracer with its ring preallocated and recording disabled.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity.max(1)),
                head: 0,
                len: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Turn recording on or off. Spans started while disabled stay
    /// unrecorded even if tracing is enabled before they finish.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[inline]
    pub fn enabled(&self) -> bool {
        cfg!(feature = "trace") && self.enabled.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans recorded since creation (including ones the ring has since
    /// overwritten).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Start a span. When tracing is off this is one atomic load and the
    /// returned guard does nothing on drop.
    #[inline]
    pub fn start(&'static self, op: Op) -> SpanGuard {
        if self.enabled() {
            SpanGuard {
                tracer: Some(self),
                op,
                start: Instant::now(),
                arg: 0,
            }
        } else {
            SpanGuard {
                tracer: None,
                op,
                start: self.epoch,
                arg: 0,
            }
        }
    }

    /// Record an instantaneous event (zero-duration span).
    #[inline]
    pub fn event(&self, op: Op, arg: u64) {
        if self.enabled() {
            self.record(op, Instant::now(), 0, arg);
        }
    }

    /// Record a finished span. The only lock taken is the ring's own; no
    /// other code runs under it.
    pub fn record(&self, op: Op, end: Instant, dur_ns: u64, arg: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let since_epoch = end.duration_since(self.epoch).as_micros() as u64;
        let start_us = since_epoch.saturating_sub(dur_ns / 1_000);
        let span = Span {
            seq,
            op,
            start_us,
            dur_ns,
            arg,
        };
        let mut ring = self.ring.lock().expect("tracer ring poisoned");
        if ring.buf.len() < self.capacity {
            ring.buf.push(span);
            ring.head = ring.buf.len() % self.capacity;
            ring.len = ring.buf.len();
        } else {
            let head = ring.head;
            ring.buf[head] = span;
            ring.head = (head + 1) % self.capacity;
            ring.len = self.capacity;
        }
        crate::metrics::metrics().record(op, dur_ns);
    }

    /// The live spans, oldest first.
    pub fn snapshot(&self) -> Vec<Span> {
        let ring = self.ring.lock().expect("tracer ring poisoned");
        let mut out = Vec::with_capacity(ring.len);
        if ring.len < self.capacity {
            out.extend_from_slice(&ring.buf[..ring.len]);
        } else {
            out.extend_from_slice(&ring.buf[ring.head..]);
            out.extend_from_slice(&ring.buf[..ring.head]);
        }
        out
    }

    /// Drop every recorded span (the sequence counter keeps counting).
    pub fn clear(&self) {
        let mut ring = self.ring.lock().expect("tracer ring poisoned");
        ring.buf.clear();
        ring.head = 0;
        ring.len = 0;
    }
}

/// Times an operation from [`Tracer::start`] to drop (or an explicit
/// [`SpanGuard::finish`]).
pub struct SpanGuard {
    tracer: Option<&'static Tracer>,
    op: Op,
    start: Instant,
    arg: u64,
}

impl SpanGuard {
    /// Attach the site-specific argument.
    #[inline]
    pub fn arg(&mut self, v: u64) {
        self.arg = v;
    }

    /// Finish explicitly (drop does the same).
    #[inline]
    pub fn finish(self) {}

    /// Abandon the span without recording it (the operation turned out not
    /// to happen — e.g. a delta apply that fell back to a full refresh).
    #[inline]
    pub fn cancel(mut self) {
        self.tracer = None;
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(t) = self.tracer.take() {
            let dur = self.start.elapsed().as_nanos() as u64;
            t.record(self.op, Instant::now(), dur, self.arg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(8);
        t.set_enabled(false);
        t.event(Op::Commit, 1);
        assert!(t.snapshot().is_empty());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn ring_wraps_keeping_latest() {
        let t = Tracer::new(4);
        t.set_enabled(true);
        for i in 0..10u64 {
            t.record(Op::QueryExec, Instant::now(), i, i);
        }
        let spans = t.snapshot();
        assert_eq!(spans.len(), 4);
        let seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest-first, latest kept");
        assert_eq!(t.recorded(), 10);
    }

    #[test]
    fn clear_empties_the_ring() {
        let t = Tracer::new(4);
        t.set_enabled(true);
        t.event(Op::WalAppend, 0);
        assert_eq!(t.snapshot().len(), 1);
        t.clear();
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn op_names_are_stable() {
        for op in Op::ALL {
            assert!(!op.name().is_empty());
        }
        assert_eq!(Op::BrowseOpen.name(), "browse_open");
        assert_eq!(Op::ParScatter.name(), "par_scatter");
        assert_eq!(Op::NetPush.name(), "net_push");
        assert_eq!(Op::VecEval.name(), "vec_eval");
        assert_eq!(Op::ALL.len(), 17);
    }

    #[test]
    fn global_guard_roundtrip() {
        let t = tracer();
        let before = t.recorded();
        t.set_enabled(true);
        {
            let mut g = t.start(Op::FormCompile);
            g.arg(7);
        }
        t.set_enabled(false);
        assert!(t.recorded() > before);
        let spans = t.snapshot();
        let mine = spans
            .iter()
            .rev()
            .find(|s| s.op == Op::FormCompile && s.arg == 7);
        assert!(mine.is_some(), "span with arg recorded");
    }
}
