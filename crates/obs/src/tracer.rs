//! A ring-buffered, causally linked span tracer.
//!
//! Each instrumented operation records one fixed-size [`Span`] — no
//! allocation on the hot path; the ring is preallocated and old spans are
//! overwritten (counted in [`Tracer::dropped`]). Spans carry
//! `trace_id`/`span_id`/`parent_id`, so everything recorded under one
//! request context assembles into a single tree (see [`crate::context`]).
//! Tracing is double-gated:
//!
//! * the `trace` cargo feature compiles the instrumentation in or out
//!   entirely (benches that want a provably-zero-cost build disable it);
//! * at runtime an atomic flag ([`Tracer::set_enabled`]) turns recording on
//!   or off — while off, a started span costs one relaxed atomic load.
//!
//! When enabled, [`Tracer::start`] eagerly allocates the span's id and
//! installs the span's context thread-locally for the guard's lifetime, so
//! nested guards parent to each other automatically. Span ids come from a
//! counter separate from [`Tracer::recorded`]: a guard that is
//! [`SpanGuard::cancel`]led consumed an id but never counts as recorded.
//!
//! The ring is guarded by a mutex whose critical section is a slot write;
//! the tracer never calls back into the system under the lock, so recording
//! from *any* code path — including the lock manager — cannot deadlock
//! (exercised by the concurrency tests). Root spans (`parent_id == 0`)
//! slower than the configured threshold are additionally copied into a
//! bounded slow-query log ([`Tracer::slow_snapshot`]).

use crate::context::{current_context, install_context, ContextGuard, TraceContext};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The instrumented operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Op {
    /// Compiling a default form from a schema.
    FormCompile = 0,
    /// Opening a window (cursor construction + form compile + analyze).
    BrowseOpen,
    /// Fetching one screenful into a browse cursor.
    BrowsePage,
    /// Executing a physical plan.
    QueryExec,
    /// Patching a window in place from a view delta.
    DeltaRefresh,
    /// Re-running a window's view query.
    FullRefresh,
    /// One lock-manager acquire call.
    LockAcquire,
    /// Appending one WAL record.
    WalAppend,
    /// Composing + diffing one screen frame.
    TuiRedraw,
    /// One through-window commit (edit/insert/delete).
    Commit,
    /// Partitioning work into chunks and dispatching it to the pool.
    ParScatter,
    /// Parallel read-only compute phase of a refresh fan-out.
    ParCompute,
    /// Sequential apply phase splicing parallel results into cursors.
    ParApply,
    /// Accepting one network connection (handshake included).
    NetAccept,
    /// Handling one wire-protocol request end to end (decode → execute →
    /// response enqueued).
    NetRequest,
    /// Building and enqueueing one `WindowRefreshed` push frame.
    NetPush,
    /// Evaluating compiled predicates/projections over one column batch.
    VecEval,
    /// One streaming executor operator's lifetime (scan, filter, project,
    /// join, sort, aggregate, limit); `arg` carries its rows-out.
    ExecOp,
    /// Forcing the WAL to stable storage (one fsync).
    WalFsync,
    /// Writing one durable checkpoint (snapshot + WAL rotation).
    Checkpoint,
    /// Recovering a durable database (analysis + committed-tail replay);
    /// `arg` carries the number of replayed operations.
    Recovery,
}

impl Op {
    /// Every operation, in declaration order (indexes the registry's
    /// histogram table).
    pub const ALL: [Op; 21] = [
        Op::FormCompile,
        Op::BrowseOpen,
        Op::BrowsePage,
        Op::QueryExec,
        Op::DeltaRefresh,
        Op::FullRefresh,
        Op::LockAcquire,
        Op::WalAppend,
        Op::TuiRedraw,
        Op::Commit,
        Op::ParScatter,
        Op::ParCompute,
        Op::ParApply,
        Op::NetAccept,
        Op::NetRequest,
        Op::NetPush,
        Op::VecEval,
        Op::ExecOp,
        Op::WalFsync,
        Op::Checkpoint,
        Op::Recovery,
    ];

    /// Stable snake_case name (metric keys, system-table rows, JSON).
    pub fn name(self) -> &'static str {
        match self {
            Op::FormCompile => "form_compile",
            Op::BrowseOpen => "browse_open",
            Op::BrowsePage => "browse_page",
            Op::QueryExec => "query_exec",
            Op::DeltaRefresh => "delta_refresh",
            Op::FullRefresh => "full_refresh",
            Op::LockAcquire => "lock_acquire",
            Op::WalAppend => "wal_append",
            Op::TuiRedraw => "tui_redraw",
            Op::Commit => "commit",
            Op::ParScatter => "par_scatter",
            Op::ParCompute => "par_compute",
            Op::ParApply => "par_apply",
            Op::NetAccept => "net_accept",
            Op::NetRequest => "net_request",
            Op::NetPush => "net_push",
            Op::VecEval => "vec_eval",
            Op::ExecOp => "exec_op",
            Op::WalFsync => "wal_fsync",
            Op::Checkpoint => "checkpoint",
            Op::Recovery => "recovery",
        }
    }
}

/// One recorded span. Fixed-size by construction: labels are the [`Op`]
/// enum, the free-form payload is a single integer argument (rows touched,
/// bytes appended, outcome code — whatever the site finds useful).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Monotonic record sequence number (global across ring wraps).
    pub seq: u64,
    /// The trace this span belongs to (0 = never part of a trace).
    pub trace_id: u64,
    /// This span's id, unique within the process (0 only for legacy
    /// recordings that bypassed id allocation).
    pub span_id: u64,
    /// The span this one ran under (0 = a trace root).
    pub parent_id: u64,
    /// What ran.
    pub op: Op,
    /// Start time, microseconds since the tracer was created.
    pub start_us: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Site-specific argument.
    pub arg: u64,
}

struct Ring {
    buf: Vec<Span>,
    /// Next slot to write.
    head: usize,
    /// Live spans (≤ capacity).
    len: usize,
}

/// The tracer: a runtime-switchable, fixed-capacity span ring plus a
/// bounded slow-query log.
pub struct Tracer {
    enabled: AtomicBool,
    /// Spans actually recorded (drives [`Span::seq`]). Eagerly allocated
    /// span ids that were cancelled never advance this.
    recorded: AtomicU64,
    /// Span-id allocator (starts at 1; 0 means "no span").
    next_id: AtomicU64,
    /// Spans overwritten by ring wrap-around since creation.
    dropped: AtomicU64,
    /// Root spans slower than this land in the slow log (0 = off).
    slow_ns: AtomicU64,
    epoch: Instant,
    ring: Mutex<Ring>,
    slow: Mutex<Vec<Span>>,
    capacity: usize,
}

/// Default ring capacity (fixed-size spans; ~256 KiB).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Most recent slow root spans kept (oldest evicted beyond this).
pub const SLOW_LOG_CAPACITY: usize = 256;

static TRACER: OnceLock<Tracer> = OnceLock::new();

/// The process-global tracer.
pub fn tracer() -> &'static Tracer {
    TRACER.get_or_init(|| Tracer::new(DEFAULT_CAPACITY))
}

impl Tracer {
    /// A tracer with its ring preallocated and recording disabled.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            recorded: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            slow_ns: AtomicU64::new(0),
            epoch: Instant::now(),
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity.max(1)),
                head: 0,
                len: 0,
            }),
            slow: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// Turn recording on or off. Spans started while disabled stay
    /// unrecorded even if tracing is enabled before they finish.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[inline]
    pub fn enabled(&self) -> bool {
        cfg!(feature = "trace") && self.enabled.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans recorded since creation (including ones the ring has since
    /// overwritten). Cancelled guards do not count.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans the ring has overwritten (lost to wrap-around) since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Allocate a process-unique span id (never 0).
    #[inline]
    pub fn alloc_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Set the slow-query threshold: root spans (`parent_id == 0`) whose
    /// duration is at least this many nanoseconds are copied into the slow
    /// log. 0 disables the log.
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_ns.store(ns, Ordering::Relaxed);
    }

    /// The current slow-query threshold (0 = off).
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_ns.load(Ordering::Relaxed)
    }

    /// Start a span. When tracing is off this is one atomic load and the
    /// returned guard does nothing on drop. When on, the span's id is
    /// allocated eagerly, its parent is read from the thread's current
    /// [`TraceContext`] (a fresh trace is minted when there is none), and
    /// the span's own context is installed until the guard drops — so
    /// spans started inside it become its children.
    #[inline]
    pub fn start(&'static self, op: Op) -> SpanGuard {
        if self.enabled() {
            let span_id = self.alloc_span_id();
            let (trace_id, parent_id) = match current_context() {
                Some(c) => (c.trace_id, c.span_id),
                None => (crate::context::fresh_trace_id(), 0),
            };
            let ctx = install_context(Some(TraceContext { trace_id, span_id }));
            SpanGuard {
                tracer: Some(self),
                op,
                start: Instant::now(),
                arg: 0,
                trace_id,
                span_id,
                parent_id,
                _ctx: Some(ctx),
            }
        } else {
            SpanGuard {
                tracer: None,
                op,
                start: self.epoch,
                arg: 0,
                trace_id: 0,
                span_id: 0,
                parent_id: 0,
                _ctx: None,
            }
        }
    }

    /// Record an instantaneous event (zero-duration span), parented to the
    /// thread's current context.
    #[inline]
    pub fn event(&self, op: Op, arg: u64) {
        if self.enabled() {
            let span_id = self.alloc_span_id();
            let (trace_id, parent_id) = match current_context() {
                Some(c) => (c.trace_id, c.span_id),
                None => (crate::context::fresh_trace_id(), 0),
            };
            self.record_ids(op, trace_id, span_id, parent_id, Instant::now(), 0, arg);
        }
    }

    /// Record a finished span, deriving its trace linkage from the thread's
    /// current context (compatibility entry point; prefer [`Tracer::start`]
    /// guards or [`Tracer::record_child`]).
    pub fn record(&self, op: Op, end: Instant, dur_ns: u64, arg: u64) {
        let span_id = self.alloc_span_id();
        let (trace_id, parent_id) = match current_context() {
            Some(c) => (c.trace_id, c.span_id),
            None => (crate::context::fresh_trace_id(), 0),
        };
        self.record_ids(op, trace_id, span_id, parent_id, end, dur_ns, arg);
    }

    /// Record a finished span as a child of an explicit context (the
    /// cross-thread / deferred-recording entry point: executor operators
    /// captured their build-time context and report at exhaustion).
    /// Returns the recorded span's id.
    pub fn record_child(&self, op: Op, parent: Option<TraceContext>, dur_ns: u64, arg: u64) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let span_id = self.alloc_span_id();
        let (trace_id, parent_id) = match parent {
            Some(c) => (c.trace_id, c.span_id),
            None => (crate::context::fresh_trace_id(), 0),
        };
        self.record_ids(
            op,
            trace_id,
            span_id,
            parent_id,
            Instant::now(),
            dur_ns,
            arg,
        );
        span_id
    }

    /// Record a finished span under fully explicit ids — for callers that
    /// allocated the span id eagerly (via [`Tracer::alloc_span_id`]) so
    /// children could link to it before it was recorded. The executor's
    /// operator tree does this: each operator's span id is fixed at plan
    /// build time and recorded only when the operator is exhausted.
    pub fn record_at(
        &self,
        op: Op,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        dur_ns: u64,
        arg: u64,
    ) {
        if self.enabled() {
            self.record_ids(
                op,
                trace_id,
                span_id,
                parent_id,
                Instant::now(),
                dur_ns,
                arg,
            );
        }
    }

    /// Record a fully specified span. The only lock taken is the ring's
    /// own (and, for slow roots, the slow log's); no other code runs under
    /// either.
    #[allow(clippy::too_many_arguments)]
    fn record_ids(
        &self,
        op: Op,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        end: Instant,
        dur_ns: u64,
        arg: u64,
    ) {
        let seq = self.recorded.fetch_add(1, Ordering::Relaxed);
        let since_epoch = end.duration_since(self.epoch).as_micros() as u64;
        let start_us = since_epoch.saturating_sub(dur_ns / 1_000);
        let span = Span {
            seq,
            trace_id,
            span_id,
            parent_id,
            op,
            start_us,
            dur_ns,
            arg,
        };
        {
            let mut ring = self.ring.lock().expect("tracer ring poisoned");
            if ring.buf.len() < self.capacity {
                ring.buf.push(span);
                ring.head = ring.buf.len() % self.capacity;
                ring.len = ring.buf.len();
            } else {
                let head = ring.head;
                ring.buf[head] = span;
                ring.head = (head + 1) % self.capacity;
                ring.len = self.capacity;
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        let slow = self.slow_ns.load(Ordering::Relaxed);
        if slow > 0 && parent_id == 0 && dur_ns >= slow {
            let mut log = self.slow.lock().expect("slow log poisoned");
            if log.len() >= SLOW_LOG_CAPACITY {
                log.remove(0);
            }
            log.push(span);
        }
        crate::metrics::metrics().record(op, dur_ns);
    }

    /// The live spans, oldest first.
    pub fn snapshot(&self) -> Vec<Span> {
        let ring = self.ring.lock().expect("tracer ring poisoned");
        let mut out = Vec::with_capacity(ring.len);
        if ring.len < self.capacity {
            out.extend_from_slice(&ring.buf[..ring.len]);
        } else {
            out.extend_from_slice(&ring.buf[ring.head..]);
            out.extend_from_slice(&ring.buf[..ring.head]);
        }
        out
    }

    /// Every live span belonging to `trace_id`, oldest first.
    pub fn trace_spans(&self, trace_id: u64) -> Vec<Span> {
        self.snapshot()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect()
    }

    /// The slow-query log: root spans that exceeded the threshold, oldest
    /// first, at most [`SLOW_LOG_CAPACITY`] entries.
    pub fn slow_snapshot(&self) -> Vec<Span> {
        self.slow.lock().expect("slow log poisoned").clone()
    }

    /// Drop every recorded span and slow-log entry (the counters keep
    /// counting).
    pub fn clear(&self) {
        let mut ring = self.ring.lock().expect("tracer ring poisoned");
        ring.buf.clear();
        ring.head = 0;
        ring.len = 0;
        drop(ring);
        self.slow.lock().expect("slow log poisoned").clear();
    }
}

/// Resolve the slow-query threshold: the `WOW_SLOW_NS` environment
/// variable wins (so CI can force every root span into the log), then the
/// caller's configured value.
pub fn resolve_slow_threshold_ns(requested: u64) -> u64 {
    if let Ok(v) = std::env::var("WOW_SLOW_NS") {
        if let Ok(n) = v.trim().parse::<u64>() {
            return n;
        }
    }
    requested
}

/// Times an operation from [`Tracer::start`] to drop (or an explicit
/// [`SpanGuard::finish`]).
pub struct SpanGuard {
    tracer: Option<&'static Tracer>,
    op: Op,
    start: Instant,
    arg: u64,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    /// Keeps this span installed as the thread's current context; restored
    /// (after recording) when the guard drops.
    _ctx: Option<ContextGuard>,
}

impl SpanGuard {
    /// Attach the site-specific argument.
    #[inline]
    pub fn arg(&mut self, v: u64) {
        self.arg = v;
    }

    /// The context children of this span should use (`None` when the span
    /// is not being recorded). Hand this across thread or wire boundaries
    /// the thread-local cannot follow.
    #[inline]
    pub fn context(&self) -> Option<TraceContext> {
        self.tracer.map(|_| TraceContext {
            trace_id: self.trace_id,
            span_id: self.span_id,
        })
    }

    /// Finish explicitly (drop does the same).
    #[inline]
    pub fn finish(self) {}

    /// Abandon the span without recording it (the operation turned out not
    /// to happen — e.g. a delta apply that fell back to a full refresh).
    /// The eagerly allocated span id is discarded; [`Tracer::recorded`]
    /// does not advance.
    #[inline]
    pub fn cancel(mut self) {
        self.tracer = None;
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(t) = self.tracer.take() {
            let dur = self.start.elapsed().as_nanos() as u64;
            t.record_ids(
                self.op,
                self.trace_id,
                self.span_id,
                self.parent_id,
                Instant::now(),
                dur,
                self.arg,
            );
        }
        // `_ctx` drops after this body, restoring the previous context.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(8);
        t.set_enabled(false);
        t.event(Op::Commit, 1);
        assert!(t.snapshot().is_empty());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn ring_wraps_keeping_latest_and_counts_drops() {
        let t = Tracer::new(4);
        t.set_enabled(true);
        for i in 0..10u64 {
            t.record(Op::QueryExec, Instant::now(), i, i);
        }
        let spans = t.snapshot();
        assert_eq!(spans.len(), 4);
        let seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest-first, latest kept");
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.dropped(), 6, "overwritten spans are counted");
    }

    #[test]
    fn clear_empties_the_ring() {
        let t = Tracer::new(4);
        t.set_enabled(true);
        t.event(Op::WalAppend, 0);
        assert_eq!(t.snapshot().len(), 1);
        t.clear();
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn op_names_are_stable() {
        for op in Op::ALL {
            assert!(!op.name().is_empty());
        }
        assert_eq!(Op::BrowseOpen.name(), "browse_open");
        assert_eq!(Op::ParScatter.name(), "par_scatter");
        assert_eq!(Op::NetPush.name(), "net_push");
        assert_eq!(Op::VecEval.name(), "vec_eval");
        assert_eq!(Op::ExecOp.name(), "exec_op");
        assert_eq!(Op::ALL.len(), 21);
        assert_eq!(Op::WalFsync.name(), "wal_fsync");
        assert_eq!(Op::Recovery.name(), "recovery");
    }

    #[test]
    fn global_guard_roundtrip() {
        let t = tracer();
        let before = t.recorded();
        t.set_enabled(true);
        {
            let mut g = t.start(Op::FormCompile);
            g.arg(7);
        }
        t.set_enabled(false);
        assert!(t.recorded() > before);
        let spans = t.snapshot();
        let mine = spans
            .iter()
            .rev()
            .find(|s| s.op == Op::FormCompile && s.arg == 7)
            .copied();
        let mine = mine.expect("span with arg recorded");
        assert_ne!(mine.trace_id, 0, "root spans mint a trace");
        assert_ne!(mine.span_id, 0);
        assert_eq!(mine.parent_id, 0, "no surrounding context: a root");
    }

    /// A private tracer with a `'static` lifetime (required by `start`)
    /// that parallel tests cannot disable under each other.
    fn leaked(capacity: usize) -> &'static Tracer {
        let t = Box::leak(Box::new(Tracer::new(capacity)));
        t.set_enabled(true);
        t
    }

    #[test]
    fn nested_guards_form_a_tree() {
        let t = leaked(16);
        let ctx = TraceContext::mint();
        {
            let _g = install_context(Some(ctx));
            let outer = t.start(Op::Commit);
            let outer_id = outer.context().unwrap().span_id;
            {
                let inner = t.start(Op::QueryExec);
                let ic = inner.context().unwrap();
                assert_eq!(ic.trace_id, ctx.trace_id);
                assert_ne!(ic.span_id, outer_id);
            }
            drop(outer);
        }
        let spans = t.trace_spans(ctx.trace_id);
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.op == Op::Commit).unwrap();
        let inner = spans.iter().find(|s| s.op == Op::QueryExec).unwrap();
        assert_eq!(outer.parent_id, 0, "outer parents to the minted root");
        assert_eq!(inner.parent_id, outer.span_id, "inner parents to outer");
        // Inner finished (and recorded) first.
        assert!(inner.seq < outer.seq);
    }

    #[test]
    fn cancel_does_not_count_as_recorded() {
        let t = leaked(16);
        let before = t.recorded();
        {
            let mut g = t.start(Op::DeltaRefresh);
            g.arg(3);
            g.cancel();
        }
        assert_eq!(
            t.recorded(),
            before,
            "a cancelled guard's eagerly allocated id must not inflate recorded()"
        );
        // The context slot is restored even on cancel.
        assert_eq!(current_context(), None);
    }

    #[test]
    fn record_child_links_to_explicit_parent() {
        let t = leaked(16);
        let parent = TraceContext {
            trace_id: crate::context::fresh_trace_id(),
            span_id: 777,
        };
        let id = t.record_child(Op::ExecOp, Some(parent), 5, 9);
        assert_ne!(id, 0);
        let span = t
            .snapshot()
            .into_iter()
            .rev()
            .find(|s| s.span_id == id)
            .unwrap();
        assert_eq!(span.trace_id, parent.trace_id);
        assert_eq!(span.parent_id, 777);
        assert_eq!(span.arg, 9);
    }

    #[test]
    fn record_at_uses_preallocated_ids() {
        let t = leaked(16);
        let trace_id = crate::context::fresh_trace_id();
        let parent = t.alloc_span_id();
        let child = t.alloc_span_id();
        // Children can be recorded before (or without) their parent.
        t.record_at(Op::ExecOp, trace_id, child, parent, 42, 7);
        t.record_at(Op::ExecOp, trace_id, parent, 0, 99, 1);
        let spans = t.trace_spans(trace_id);
        assert_eq!(spans.len(), 2);
        let c = spans.iter().find(|s| s.span_id == child).unwrap();
        assert_eq!(c.parent_id, parent);
        assert_eq!(c.arg, 7);
        assert_eq!(c.dur_ns, 42);
    }

    #[test]
    fn slow_roots_land_in_the_slow_log() {
        let t = Tracer::new(16);
        t.set_enabled(true);
        t.set_slow_threshold_ns(1_000);
        // Root over threshold: logged.
        t.record_ids(Op::Commit, 1, 10, 0, Instant::now(), 5_000, 0);
        // Child over threshold: not a root, not logged.
        t.record_ids(Op::QueryExec, 1, 11, 10, Instant::now(), 5_000, 0);
        // Root under threshold: not logged.
        t.record_ids(Op::Commit, 2, 12, 0, Instant::now(), 10, 0);
        let slow = t.slow_snapshot();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].span_id, 10);
        t.clear();
        assert!(t.slow_snapshot().is_empty());
    }

    #[test]
    fn slow_log_is_bounded() {
        let t = Tracer::new(4);
        t.set_enabled(true);
        t.set_slow_threshold_ns(1);
        for i in 0..(SLOW_LOG_CAPACITY as u64 + 10) {
            t.record_ids(Op::Commit, i + 1, i + 1, 0, Instant::now(), 100, i);
        }
        let slow = t.slow_snapshot();
        assert_eq!(slow.len(), SLOW_LOG_CAPACITY);
        assert_eq!(slow.last().unwrap().arg, SLOW_LOG_CAPACITY as u64 + 9);
    }

    #[test]
    fn env_free_threshold_resolution_prefers_request() {
        if std::env::var("WOW_SLOW_NS").is_err() {
            assert_eq!(resolve_slow_threshold_ns(123), 123);
        }
    }
}
