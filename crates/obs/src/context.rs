//! Request-scoped trace contexts.
//!
//! A [`TraceContext`] names a position in a causal trace: which trace the
//! work belongs to (`trace_id`) and which span any child started under it
//! should parent to (`span_id`). The *current* context lives in a
//! thread-local slot; [`crate::Tracer::start`] reads it to fill a new
//! span's `trace_id`/`parent_id` and installs the new span's own context
//! for the guard's lifetime, so nested guards assemble into a tree with no
//! explicit plumbing.
//!
//! The context crosses boundaries the thread-local cannot see on its own:
//!
//! * **threads** — `wow-par` captures the submitter's context before
//!   spawning and installs it in every worker ([`install_context`]);
//! * **the wire** — `wow-net` encodes `(trace_id, span_id)` into a frame
//!   header extension and re-installs it server-side, so one client
//!   request becomes one connected tree across processes.
//!
//! A context is sixteen bytes and `Copy`; reading the current one is a
//! thread-local load. Nothing here takes a lock.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// A position in a causal trace: the trace id plus the span id that
/// children should parent to (`0` = no parent: children become roots of
/// the trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Which trace this work belongs to (never 0 for a minted context).
    pub trace_id: u64,
    /// The span children should cite as `parent_id` (0 = root).
    pub span_id: u64,
}

/// Trace ids are minted from a process-global counter; 0 is reserved to
/// mean "no trace".
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Mint a process-unique trace id (never 0).
pub fn fresh_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

impl TraceContext {
    /// A fresh root context: a new trace with no parent span. Spans started
    /// under it become roots of the new trace.
    pub fn mint() -> TraceContext {
        TraceContext {
            trace_id: fresh_trace_id(),
            span_id: 0,
        }
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The context spans started on this thread currently parent to.
pub fn current_context() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

/// Install `ctx` as this thread's current context until the returned guard
/// drops, which restores whatever was installed before. Guards must be
/// dropped in LIFO order (scope them; don't store them loose).
pub fn install_context(ctx: Option<TraceContext>) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(ctx));
    ContextGuard {
        prev,
        _not_send: PhantomData,
    }
}

/// RAII restore of the previously installed context. `!Send`: it must drop
/// on the thread that created it, or it would restore the wrong slot.
pub struct ContextGuard {
    prev: Option<TraceContext>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT.with(|c| c.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_unique_and_nonzero() {
        let a = fresh_trace_id();
        let b = fresh_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn install_nests_and_restores() {
        assert_eq!(current_context(), None);
        let outer = TraceContext::mint();
        {
            let _g1 = install_context(Some(outer));
            assert_eq!(current_context(), Some(outer));
            let inner = TraceContext {
                trace_id: outer.trace_id,
                span_id: 42,
            };
            {
                let _g2 = install_context(Some(inner));
                assert_eq!(current_context(), Some(inner));
            }
            assert_eq!(current_context(), Some(outer));
        }
        assert_eq!(current_context(), None);
    }

    #[test]
    fn context_does_not_leak_across_threads() {
        let _g = install_context(Some(TraceContext::mint()));
        std::thread::spawn(|| assert_eq!(current_context(), None))
            .join()
            .unwrap();
    }
}
