//! # wow-obs — a window on the system's own internals
//!
//! The paper's thesis is that every interaction with shared data goes
//! through a window on a view; this crate makes the system's *runtime
//! state* shared data too. It has three layers:
//!
//! * [`tracer`] — a ring-buffered span tracer with fixed-size records
//!   (zero-alloc hot path) and causal linkage: every span carries
//!   `trace_id`/`span_id`/`parent_id`, so one request assembles into one
//!   tree from wire decode to the last push frame. Root spans over a
//!   configurable threshold land in a bounded slow-query log.
//! * [`context`] — the request-scoped [`context::TraceContext`] that links
//!   spans across nesting, thread, and wire boundaries.
//! * [`histogram`] — HDR-style fixed-bucket latency histograms, one per
//!   traced operation, giving p50/p95/p99 instead of means.
//! * [`metrics`] — the unified [`metrics::MetricsRegistry`] that absorbs
//!   the formerly scattered counter structs (`PoolStats`, `WorldStats`,
//!   `StatsRegistry`) as named gauges behind one API, renderable as a
//!   Prometheus text dump ([`metrics::prometheus`]).
//!
//! `wow-core` exposes all of it as browsable **system tables**
//! (`__wow_metrics`, `__wow_spans`, `__wow_traces`, `__wow_windows`,
//! `__wow_locks`) through the standard `open_window` path, and `wow-net`
//! serves the Prometheus dump and per-trace span trees over admin
//! requests.
//!
//! Gating: the `trace` cargo feature (default on) compiles instrumentation
//! in; with the feature on, recording still costs one relaxed atomic load
//! until [`Tracer::set_enabled`] turns it on.

pub mod context;
pub mod histogram;
pub mod metrics;
pub mod tracer;

pub use context::{current_context, fresh_trace_id, install_context, ContextGuard, TraceContext};
pub use histogram::{Histogram, HistogramSnapshot};
pub use metrics::{metrics, prometheus, MetricsRegistry, MetricsSnapshot};
pub use tracer::{resolve_slow_threshold_ns, tracer, Op, Span, SpanGuard, Tracer};

/// Start a span on the global tracer (one atomic load when tracing is off).
#[inline]
pub fn span(op: Op) -> SpanGuard {
    tracer().start(op)
}

/// Record an instantaneous event on the global tracer.
#[inline]
pub fn event(op: Op, arg: u64) {
    tracer().event(op, arg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_helper_is_callable_when_disabled() {
        // Must not panic or record when tracing is off.
        tracer().set_enabled(false);
        let before = tracer().recorded();
        {
            let mut g = span(Op::TuiRedraw);
            g.arg(1);
        }
        event(Op::TuiRedraw, 2);
        assert_eq!(tracer().recorded(), before);
    }
}
