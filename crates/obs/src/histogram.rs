//! HDR-style latency histograms with fixed bucket layout.
//!
//! Values (nanoseconds) are binned into power-of-two groups of
//! [`SUB_BUCKETS`] linear sub-buckets each, giving a bounded relative error
//! of `1 / SUB_BUCKETS` (~3%) across the full `u64` range with a few KiB of
//! counts and **no allocation after construction** — recording is an index
//! computation plus an increment, cheap enough for the tracer's hot path.

/// Log2 of the linear sub-buckets per power-of-two group.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per group (relative error ≤ 1/32 ≈ 3.1%).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Power-of-two groups tracked; values at or above 2^(SUB_BITS + GROUPS - 1)
/// clamp into the last bucket (≈ 18 minutes in nanoseconds — far beyond any
/// latency this system produces).
const GROUPS: usize = 36;
/// Total bucket count.
const BUCKETS: usize = (GROUPS + 1) * SUB_BUCKETS as usize;

/// A fixed-bucket latency histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for a value: small values are exact, larger values keep
/// the top `SUB_BITS + 1` significant bits.
fn index_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // ≥ SUB_BITS
    let group = msb - SUB_BITS as u64 + 1;
    let sub = (v >> (msb - SUB_BITS as u64)) - SUB_BUCKETS;
    (((group * SUB_BUCKETS) + sub) as usize).min(BUCKETS - 1)
}

/// Upper bound (inclusive) of the values a bucket holds — what percentile
/// queries report, so they never under-state a latency.
fn bucket_high(idx: usize) -> u64 {
    let group = idx as u64 / SUB_BUCKETS;
    let sub = idx as u64 % SUB_BUCKETS;
    if group == 0 {
        return sub;
    }
    let shift = group - 1;
    ((SUB_BUCKETS + sub) << shift) + ((1u64 << shift) - 1)
}

/// A cheap, copyable summary of a histogram (what the metrics registry and
/// the bench JSON carry around).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Mean, in nanoseconds.
    pub mean_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Largest value recorded.
    pub max_ns: u64,
}

impl Histogram {
    /// An empty histogram (the only allocation it will ever make).
    pub fn new() -> Histogram {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value (nanoseconds).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest value recorded (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest value recorded.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound off by at most
    /// one bucket width (~3%). Exact `min`/`max` cap the ends.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                // The final bucket holds every clamped outlier; report the
                // exact max instead of its (too small) nominal bound.
                if idx == BUCKETS - 1 {
                    return self.max;
                }
                return bucket_high(idx).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram in.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Forget everything.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Copy out the summary percentiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            mean_ns: self.mean(),
            p50_ns: self.value_at_quantile(0.50),
            p95_ns: self.value_at_quantile(0.95),
            p99_ns: self.value_at_quantile(0.99),
            max_ns: self.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS - 1);
        // Every one of the small values got its own bucket.
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), SUB_BUCKETS - 1);
    }

    #[test]
    fn bucket_roundtrip_bounds_error() {
        for v in [
            1u64,
            31,
            32,
            33,
            100,
            1_000,
            12_345,
            1_000_000,
            123_456_789,
            9_876_543_210,
        ] {
            let idx = index_of(v);
            let high = bucket_high(idx);
            assert!(high >= v, "upper bound must cover the value ({v})");
            // Relative error of the reported bound ≤ 1/SUB_BUCKETS.
            assert!(
                (high - v) as f64 <= (v as f64 / SUB_BUCKETS as f64) + 1.0,
                "bucket too wide for {v}: high={high}"
            );
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1_000); // 1µs .. 10ms ramp
        }
        let p50 = h.value_at_quantile(0.50);
        let p95 = h.value_at_quantile(0.95);
        let p99 = h.value_at_quantile(0.99);
        assert!((4_800_000..=5_300_000).contains(&p50), "p50={p50}");
        assert!((9_200_000..=9_900_000).contains(&p95), "p95={p95}");
        assert!((9_700_000..=10_000_000).contains(&p99), "p99={p99}");
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(h.value_at_quantile(1.0), 10_000_000);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(100);
        b.record(200);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 100);
        assert_eq!(a.max(), 200);
        a.reset();
        assert_eq!(a.count(), 0);
        assert_eq!(a.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn merge_of_disjoint_bucket_ranges() {
        // `a` holds only tiny exact-bucket values, `b` only huge clamped
        // ones — no bucket overlaps, so the merge must be a pure union.
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=10u64 {
            a.record(v);
        }
        for v in [1_000_000_000u64, 2_000_000_000, u64::MAX] {
            b.record(v);
        }
        let (ca, cb) = (a.count(), b.count());
        a.merge(&b);
        assert_eq!(a.count(), ca + cb);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), u64::MAX);
        // Low quantiles come from a's range, the top from b's.
        assert!(a.value_at_quantile(0.5) <= 10);
        assert_eq!(a.value_at_quantile(1.0), u64::MAX);
        // Merging into an empty histogram is the identity.
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), a.count());
        assert_eq!(empty.min(), a.min());
        assert_eq!(empty.max(), a.max());
        assert_eq!(empty.value_at_quantile(0.95), a.value_at_quantile(0.95));
    }

    #[test]
    fn quantile_extremes_are_min_and_max_bounded() {
        let mut h = Histogram::new();
        for v in [7u64, 300, 12_345, 999_999] {
            h.record(v);
        }
        // q=0.0 must report a value covering the smallest recording
        // (bucket upper bound, never below min, never above max)...
        let q0 = h.value_at_quantile(0.0);
        assert!(q0 >= h.min() && q0 <= h.max(), "q0={q0}");
        // ...and q=1.0 is the exact max.
        assert_eq!(h.value_at_quantile(1.0), h.max());
        // Out-of-range quantiles clamp instead of panicking.
        assert_eq!(h.value_at_quantile(-3.0), q0);
        assert_eq!(h.value_at_quantile(42.0), h.max());
        // A single-value histogram answers every quantile with that value's
        // bucket, capped at the exact max.
        let mut one = Histogram::new();
        one.record(500);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(one.value_at_quantile(q), 500);
        }
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0, "empty min reports 0, not u64::MAX");
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn huge_values_clamp_instead_of_panicking() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.value_at_quantile(0.5), u64::MAX);
    }

    #[test]
    fn snapshot_carries_percentiles() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert!(s.p50_ns <= 1_100);
        assert_eq!(s.max_ns, 1_000_000);
        assert!(s.p99_ns <= 1_100, "outlier is past p99 of 100 samples");
    }
}
