//! The unified metrics registry.
//!
//! One process-global [`MetricsRegistry`] absorbs every counter surface the
//! system used to scatter across crates — the buffer pool's `PoolStats`,
//! the world's `WorldStats`, the optimizer's `StatsRegistry` row counts —
//! as named gauges, and owns one latency [`Histogram`] per traced [`Op`].
//! The `__wow_metrics` system table and the bench JSON both read the same
//! [`MetricsRegistry::snapshot`].
//!
//! Counters are written on cold paths (exports, syncs); the only hot-path
//! entry is [`MetricsRegistry::record`], called by the tracer with a
//! pre-computed duration — a mutex-guarded histogram increment.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::tracer::Op;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

struct Inner {
    counters: BTreeMap<String, u64>,
    hists: Vec<Histogram>,
}

/// Named counters/gauges plus per-operation latency histograms.
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

static METRICS: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-global registry.
pub fn metrics() -> &'static MetricsRegistry {
    METRICS.get_or_init(MetricsRegistry::new)
}

/// A point-in-time copy of the registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Per-operation latency summaries (only ops with ≥ 1 recording).
    pub ops: Vec<(Op, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Look up an operation's latency summary.
    pub fn op(&self, op: Op) -> Option<HistogramSnapshot> {
        self.ops.iter().find(|(o, _)| *o == op).map(|(_, s)| *s)
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry with one histogram per op preallocated.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                hists: Op::ALL.iter().map(|_| Histogram::new()).collect(),
            }),
        }
    }

    /// Add to a counter (creating it at zero).
    pub fn add(&self, name: &str, n: u64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Set a gauge — how the legacy stats structs are absorbed: their
    /// owners push current values through one of the `absorb_*` helpers
    /// (or `set` directly) and every consumer reads the registry.
    pub fn set(&self, name: &str, v: u64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.counters.insert(name.to_string(), v);
    }

    /// Record a latency for an op (nanoseconds). Called by the tracer.
    pub fn record(&self, op: Op, ns: u64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.hists[op as usize].record(ns);
    }

    /// Latency summary for one op.
    pub fn op_snapshot(&self, op: Op) -> HistogramSnapshot {
        let inner = self.inner.lock().expect("metrics poisoned");
        inner.hists[op as usize].snapshot()
    }

    /// Copy the whole registry out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            ops: Op::ALL
                .iter()
                .filter_map(|&op| {
                    let s = inner.hists[op as usize].snapshot();
                    (s.count > 0).then_some((op, s))
                })
                .collect(),
        }
    }

    /// Zero every counter and histogram (the warm-path measurement reset).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.counters.clear();
        for h in &mut inner.hists {
            h.reset();
        }
    }
}

/// Render a snapshot in the Prometheus text exposition format — the
/// metrics-export surface served over the wow-net admin request and dumped
/// by the bench tools. Gauge names are the registry's dotted names with
/// `.` mapped to `_` and a `wow_` prefix; per-op latencies become one
/// summary family with `op` labels.
pub fn prometheus(snap: &MetricsSnapshot) -> String {
    fn sanitize(name: &str) -> String {
        name.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect()
    }
    let mut out = String::new();
    out.push_str("# TYPE wow_gauge gauge\n");
    for (name, v) in &snap.counters {
        out.push_str(&format!("wow_{} {}\n", sanitize(name), v));
    }
    out.push_str("# TYPE wow_op_latency_ns summary\n");
    for (op, s) in &snap.ops {
        let name = op.name();
        for (q, v) in [("0.5", s.p50_ns), ("0.95", s.p95_ns), ("0.99", s.p99_ns)] {
            out.push_str(&format!(
                "wow_op_latency_ns{{op=\"{name}\",quantile=\"{q}\"}} {v}\n"
            ));
        }
        out.push_str(&format!(
            "wow_op_latency_ns_count{{op=\"{name}\"}} {}\n",
            s.count
        ));
        out.push_str(&format!(
            "wow_op_latency_ns_sum{{op=\"{name}\"}} {}\n",
            s.mean_ns.saturating_mul(s.count)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_set() {
        let m = MetricsRegistry::new();
        m.add("a.b", 2);
        m.add("a.b", 3);
        m.set("c.d", 7);
        let s = m.snapshot();
        assert_eq!(s.counter("a.b"), Some(5));
        assert_eq!(s.counter("c.d"), Some(7));
        assert_eq!(s.counter("nope"), None);
    }

    #[test]
    fn op_histograms_summarize() {
        let m = MetricsRegistry::new();
        for i in 1..=100u64 {
            m.record(Op::Commit, i * 1_000);
        }
        let s = m.snapshot();
        let c = s.op(Op::Commit).unwrap();
        assert_eq!(c.count, 100);
        assert!(c.p50_ns >= 45_000 && c.p50_ns <= 55_000, "{c:?}");
        assert!(s.op(Op::WalAppend).is_none(), "unrecorded ops are absent");
    }

    #[test]
    fn prometheus_renders_gauges_and_summaries() {
        let m = MetricsRegistry::new();
        m.set("pool.hits", 12);
        m.record(Op::Commit, 1_000);
        m.record(Op::Commit, 2_000);
        let text = prometheus(&m.snapshot());
        assert!(text.contains("# TYPE wow_gauge gauge"));
        assert!(text.contains("wow_pool_hits 12"));
        assert!(text.contains("wow_op_latency_ns{op=\"commit\",quantile=\"0.5\"}"));
        assert!(text.contains("wow_op_latency_ns_count{op=\"commit\"} 2"));
        // Every line is `name{labels} value` or a comment — no empty lines.
        assert!(text.lines().all(|l| !l.trim().is_empty()));
    }

    #[test]
    fn reset_clears_everything() {
        let m = MetricsRegistry::new();
        m.add("x", 1);
        m.record(Op::QueryExec, 10);
        m.reset();
        let s = m.snapshot();
        assert!(s.counters.is_empty());
        assert!(s.ops.is_empty());
    }
}
