//! Deterministic random numbers for reproducible workloads.
//!
//! A splitmix64-based generator: tiny, fast, and — unlike thread RNGs —
//! identical on every machine and every run, which is what a benchmark
//! harness wants. (The `rand` crate is used for its distributions in
//! [`crate::dist`]; this is the seed source.)

/// A deterministic 64-bit generator (splitmix64).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> DetRng {
        DetRng { state: seed }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        // Rejection-free bias is negligible for bench-scale n.
        self.next_u64() % n
    }

    /// Uniform in `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Pick an element of a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A lowercase ASCII identifier of `len` chars.
    pub fn word(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| (b'a' + self.below(26) as u8) as char)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = DetRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let x = r.range_i64(-5, 5);
            assert!((-5..=5).contains(&x));
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_covers_all_values() {
        let mut r = DetRng::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn words_are_lowercase_ascii() {
        let mut r = DetRng::new(4);
        let w = r.word(12);
        assert_eq!(w.len(), 12);
        assert!(w.chars().all(|c| c.is_ascii_lowercase()));
    }
}
