//! Reproducible streams of window operations.
//!
//! The concurrency/propagation experiments need "users doing things" —
//! these scripts are those users, deterministic per seed.

use crate::rng::DetRng;
use wow_core::error::{WowError, WowResult};
use wow_core::window_mgr::WinId;
use wow_core::world::World;

/// One user action against a window.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowOp {
    /// Advance one row.
    Next,
    /// Step back one row.
    Prev,
    /// Page forward.
    NextPage,
    /// Page backward.
    PrevPage,
    /// Edit the current row: overwrite field `field` with `text`, commit.
    Edit {
        /// Field index on the form.
        field: usize,
        /// New text.
        text: String,
    },
    /// Delete the current row.
    Delete,
    /// Apply a query-by-form restriction to one field, then return to
    /// browsing.
    Query {
        /// Field index.
        field: usize,
        /// QBF entry.
        entry: String,
    },
    /// Clear the active restriction.
    ClearQuery,
    /// Explicit refresh.
    Refresh,
}

/// Generate a browse-heavy mixed script. `edit_ratio` in `[0,1]` is the
/// fraction of operations that are edits of `edit_field` (set to a numeric,
/// writable field) with small integer texts.
pub fn mixed_script(
    rng: &mut DetRng,
    len: usize,
    edit_ratio: f64,
    edit_field: usize,
) -> Vec<WindowOp> {
    (0..len)
        .map(|_| {
            if rng.unit_f64() < edit_ratio {
                WindowOp::Edit {
                    field: edit_field,
                    text: rng.range_i64(1, 999).to_string(),
                }
            } else {
                match rng.below(4) {
                    0 => WindowOp::Next,
                    1 => WindowOp::Prev,
                    2 => WindowOp::NextPage,
                    _ => WindowOp::PrevPage,
                }
            }
        })
        .collect()
}

/// Execute one op against a window. Lock conflicts and deadlocks are
/// returned (the caller decides whether to retry); everything else that a
/// user could trigger by typing is absorbed into the window status, as the
/// real UI does.
pub fn apply(world: &mut World, win: WinId, op: &WindowOp) -> WowResult<()> {
    match op {
        WindowOp::Next => {
            world.browse_next(win)?;
        }
        WindowOp::Prev => {
            world.browse_prev(win)?;
        }
        WindowOp::NextPage => {
            world.browse_next_page(win)?;
        }
        WindowOp::PrevPage => {
            world.browse_prev_page(win)?;
        }
        WindowOp::Edit { field, text } => {
            world.enter_edit(win)?;
            world.window_mut(win)?.form.set_text(*field, text);
            match world.commit(win) {
                Ok(()) => {}
                Err(e @ (WowError::LockConflict { .. } | WowError::Deadlock { .. })) => {
                    world.cancel_mode(win)?;
                    return Err(e);
                }
                Err(other) => {
                    // Validation/uniqueness: the UI shows it and stays put.
                    world.set_status(win, &other.to_string());
                    world.cancel_mode(win)?;
                }
            }
        }
        WindowOp::Delete => match world.delete_current(win) {
            Ok(()) | Err(WowError::NoCurrentRow) => {}
            Err(e) => return Err(e),
        },
        WindowOp::Query { field, entry } => {
            world.enter_query(win)?;
            world.window_mut(win)?.form.set_text(*field, entry);
            match world.apply_query(win) {
                Ok(()) => {}
                Err(e) => {
                    world.set_status(win, &e.to_string());
                    world.cancel_mode(win)?;
                }
            }
        }
        WindowOp::ClearQuery => world.clear_query(win)?,
        WindowOp::Refresh => world.refresh_window(win)?,
    }
    Ok(())
}

/// Run a whole script, returning `(completed, lock_denials)`.
pub fn run_script(world: &mut World, win: WinId, ops: &[WindowOp]) -> WowResult<(u64, u64)> {
    let mut done = 0;
    let mut denied = 0;
    for op in ops {
        match apply(world, win, op) {
            Ok(()) => done += 1,
            Err(WowError::LockConflict { .. } | WowError::Deadlock { .. }) => denied += 1,
            Err(other) => return Err(other),
        }
    }
    Ok((done, denied))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suppliers::{build_world, SuppliersConfig};
    use wow_core::WorldConfig;

    fn world() -> World {
        build_world(
            WorldConfig::default(),
            &SuppliersConfig {
                suppliers: 20,
                parts: 20,
                shipments: 100,
                seed: 8,
            },
        )
    }

    #[test]
    fn scripts_are_deterministic() {
        let mut r1 = DetRng::new(5);
        let mut r2 = DetRng::new(5);
        assert_eq!(
            mixed_script(&mut r1, 50, 0.2, 3),
            mixed_script(&mut r2, 50, 0.2, 3)
        );
    }

    #[test]
    fn mixed_script_runs_to_completion() {
        let mut w = world();
        let s = w.open_session();
        let win = w.open_window(s, "shipments", None).unwrap();
        let mut rng = DetRng::new(6);
        let ops = mixed_script(&mut rng, 200, 0.1, 3); // edit qty
        let (done, denied) = run_script(&mut w, win, &ops).unwrap();
        assert_eq!(done, 200);
        assert_eq!(denied, 0, "single session never conflicts with itself");
        assert!(w.stats.commits > 0, "some edits committed");
    }

    #[test]
    fn query_and_clear_ops() {
        let mut w = world();
        let s = w.open_session();
        let win = w.open_window(s, "suppliers", None).unwrap();
        apply(
            &mut w,
            win,
            &WindowOp::Query {
                field: 2,
                entry: "london".into(),
            },
        )
        .unwrap();
        assert!(w.window(win).unwrap().qbf_pred.is_some());
        apply(&mut w, win, &WindowOp::ClearQuery).unwrap();
        assert!(w.window(win).unwrap().qbf_pred.is_none());
    }

    #[test]
    fn delete_op_tolerates_empty_cursor() {
        let mut w = world();
        let s = w.open_session();
        let win = w.open_window(s, "suppliers", None).unwrap();
        // Empty the window with an impossible query, then delete.
        apply(
            &mut w,
            win,
            &WindowOp::Query {
                field: 1,
                entry: "no-such-supplier".into(),
            },
        )
        .unwrap();
        apply(&mut w, win, &WindowOp::Delete).unwrap();
    }
}
