//! # wow-workload
//!
//! Synthetic data and operation streams standing in for the authors' test
//! database (which, like all 1983 artifacts, is unavailable — see
//! `DESIGN.md` for the substitution note).
//!
//! * [`rng`] — a tiny deterministic PCG-style generator so every bench run
//!   sees identical data.
//! * [`dist`] — uniform/Zipf value distributions (skew is what makes
//!   browse/propagation benchmarks honest).
//! * [`university`] — the registrar world: students, courses, enrollment.
//! * [`suppliers`] — the classic suppliers-parts-shipments world.
//! * [`script`] — reproducible streams of window operations (browse/edit/
//!   query mixes) for the concurrency and propagation experiments.
//! * [`netload`] — the same op streams driven over TCP by N concurrent
//!   `wow-net` clients, measuring request and commit→push latency.

pub mod dist;
pub mod netload;
pub mod rng;
pub mod script;
pub mod suppliers;
pub mod university;

pub use rng::DetRng;
