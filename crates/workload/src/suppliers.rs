//! The classic suppliers-parts-shipments world (Date's benchmark schema,
//! which 1983 readers would have recognized instantly).

use crate::rng::DetRng;
use wow_core::world::World;
use wow_core::WorldConfig;
use wow_rel::db::Database;
use wow_rel::value::Value;

/// Size knobs.
#[derive(Debug, Clone, Copy)]
pub struct SuppliersConfig {
    /// Number of suppliers.
    pub suppliers: usize,
    /// Number of parts.
    pub parts: usize,
    /// Number of shipments.
    pub shipments: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SuppliersConfig {
    fn default() -> Self {
        SuppliersConfig {
            suppliers: 100,
            parts: 200,
            shipments: 2000,
            seed: 0xCAFE,
        }
    }
}

const CITIES: &[&str] = &["london", "paris", "athens", "oslo", "madrid", "rome"];
const COLORS: &[&str] = &["red", "green", "blue", "black", "white"];

/// Create the schema and load synthetic data.
pub fn build(db: &mut Database, cfg: &SuppliersConfig) {
    db.run(
        "CREATE TABLE supplier (sno INT KEY, sname TEXT NOT NULL, city TEXT, status INT)
         CREATE TABLE part (pno INT KEY, pname TEXT NOT NULL, color TEXT, weight FLOAT)
         CREATE TABLE shipment (spid INT KEY, sno INT NOT NULL, pno INT NOT NULL, qty INT)
         CREATE INDEX ship_sno ON shipment (sno) USING HASH
         CREATE INDEX ship_pno ON shipment (pno)
         CREATE INDEX supplier_city ON supplier (city) USING HASH
         CREATE INDEX ship_qty ON shipment (qty)
         RANGE OF s IS supplier
         RANGE OF p IS part
         RANGE OF sp IS shipment",
    )
    .expect("schema");
    let mut rng = DetRng::new(cfg.seed);
    for sno in 0..cfg.suppliers {
        db.insert(
            "supplier",
            vec![
                Value::Int(sno as i64),
                Value::text(format!("supplier-{sno:04}")),
                Value::text(*rng.pick(CITIES)),
                Value::Int(rng.range_i64(10, 40)),
            ],
        )
        .expect("supplier row");
    }
    for pno in 0..cfg.parts {
        db.insert(
            "part",
            vec![
                Value::Int(pno as i64),
                Value::text(format!("part-{pno:04}")),
                Value::text(*rng.pick(COLORS)),
                Value::Float(rng.range_i64(10, 500) as f64 / 10.0),
            ],
        )
        .expect("part row");
    }
    for spid in 0..cfg.shipments {
        db.insert(
            "shipment",
            vec![
                Value::Int(spid as i64),
                Value::Int(rng.below(cfg.suppliers.max(1) as u64) as i64),
                Value::Int(rng.below(cfg.parts.max(1) as u64) as i64),
                Value::Int(rng.range_i64(1, 1000)),
            ],
        )
        .expect("shipment row");
    }
}

/// Standard inventory views.
pub fn define_views(world: &mut World) {
    world
        .define_view(
            "suppliers",
            "RANGE OF s IS supplier RETRIEVE (s.sno, s.sname, s.city, s.status)",
        )
        .expect("suppliers view");
    world
        .define_view(
            "parts",
            "RANGE OF p IS part RETRIEVE (p.pno, p.pname, p.color, p.weight)",
        )
        .expect("parts view");
    world
        .define_view(
            "shipments",
            "RANGE OF sp IS shipment RETRIEVE (sp.spid, sp.sno, sp.pno, sp.qty)",
        )
        .expect("shipments view");
    world
        .define_view(
            "london_suppliers",
            r#"RANGE OF s IS supplier RETRIEVE (s.sno, s.sname, s.status) WHERE s.city = "london""#,
        )
        .expect("london view");
    world
        .define_view(
            "shipment_detail",
            "RANGE OF s IS supplier RANGE OF sp IS shipment
             RETRIEVE (s.sname, sp.pno, sp.qty) WHERE s.sno = sp.sno",
        )
        .expect("detail view");
    world
        .define_view(
            "supplier_volume",
            "RANGE OF sp IS shipment
             RETRIEVE (sp.sno, total = SUM(sp.qty)) GROUP BY sp.sno",
        )
        .expect("volume view");
}

/// Build a populated world with the standard views.
pub fn build_world(world_cfg: WorldConfig, cfg: &SuppliersConfig) -> World {
    let mut world = World::new(world_cfg);
    build(world.db_mut(), cfg);
    define_views(&mut world);
    world
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_expected_counts() {
        let cfg = SuppliersConfig {
            suppliers: 10,
            parts: 20,
            shipments: 100,
            seed: 3,
        };
        let mut db = Database::in_memory();
        build(&mut db, &cfg);
        let n = db.run("RETRIEVE (n = COUNT(sp.spid))").unwrap();
        assert_eq!(n.tuples[0].values[0], Value::Int(100));
        // Foreign keys in range.
        let bad = db
            .run("RETRIEVE (n = COUNT(sp.spid)) WHERE sp.sno >= 10")
            .unwrap();
        assert_eq!(bad.tuples[0].values[0], Value::Int(0));
    }

    #[test]
    fn views_open_and_update() {
        let mut world = build_world(
            WorldConfig::default(),
            &SuppliersConfig {
                suppliers: 10,
                parts: 10,
                shipments: 50,
                seed: 4,
            },
        );
        let s = world.open_session();
        let win = world.open_window(s, "suppliers", None).unwrap();
        assert!(world.window(win).unwrap().is_updatable());
        let ro = world.open_window(s, "shipment_detail", None).unwrap();
        assert!(!world.window(ro).unwrap().is_updatable());
        // Edit through the suppliers window propagates into the detail.
        world.enter_edit(win).unwrap();
        world
            .window_mut(win)
            .unwrap()
            .form
            .set_text(1, "renamed-supplier");
        world.commit(win).unwrap();
        assert!(world.stats.windows_refreshed >= 1);
    }
}
