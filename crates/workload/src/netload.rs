//! Network load generation: N concurrent TCP clerks against one server.
//!
//! Three roles share a running [`wow_net::Server`]:
//!
//! * **browsers** replay deterministic browse scripts over the wire,
//!   producing request-latency samples under concurrency;
//! * one **editor** commits a stream of globally unique marker values
//!   into the first visible row;
//! * one **watcher** holds a window open and waits for the server's
//!   `WindowRefreshed` pushes. When a pushed screenful contains a marker
//!   the editor registered, the elapsed time since that commit is one
//!   **commit→push latency** sample — the paper's "the other clerk's
//!   screen updates under their eyes", measured.
//!
//! The watcher also asserts generation monotonicity on every push: the
//! client library filters non-increasing generations, so any regression
//! would surface as a missing sample, and an explicit check here turns it
//! into a hard failure.

use crate::script::WindowOp;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wow_core::error::{WowError, WowResult};
use wow_net::{Client, Push};

/// Knobs for one load run.
#[derive(Debug, Clone)]
pub struct NetLoadConfig {
    /// Total clients: 1 watcher + 1 editor + the rest browsers. Values
    /// below 2 are clamped to 2 (the measurement needs both roles).
    pub clients: usize,
    /// Browse operations per browser client.
    pub ops_per_client: usize,
    /// Marker commits the editor performs.
    pub commits: usize,
    /// The view every client opens.
    pub view: String,
    /// Field (column) index the editor writes markers into; must be an
    /// integer column on the first page.
    pub edit_field: usize,
    /// Pause between marker commits, milliseconds. Zero means commit
    /// back-to-back — latest-wins coalescing then collapses most pushes,
    /// which is correct but leaves few delivery samples; a small gap lets
    /// each push reach the watcher so `commit_push_ns` has one sample per
    /// commit.
    pub commit_gap_ms: u64,
    /// Script seed.
    pub seed: u64,
}

impl Default for NetLoadConfig {
    fn default() -> NetLoadConfig {
        NetLoadConfig {
            clients: 8,
            ops_per_client: 100,
            commits: 50,
            view: "emps".into(),
            edit_field: 1,
            commit_gap_ms: 2,
            seed: 42,
        }
    }
}

/// What a run measured.
#[derive(Debug, Default)]
pub struct NetLoadReport {
    /// Requests issued across all clients.
    pub requests: u64,
    /// Commits acknowledged by the server.
    pub commits: u64,
    /// Lock denials (conflict or deadlock) the clients absorbed.
    pub lock_denials: u64,
    /// Pushes the watcher received.
    pub pushes: u64,
    /// Per-request wall latencies, nanoseconds (all clients).
    pub request_ns: Vec<u64>,
    /// Commit→push delivery latencies, nanoseconds (watcher). Coalescing
    /// may legitimately drop intermediate markers; only delivered ones
    /// sample here.
    pub commit_push_ns: Vec<u64>,
    /// Spans in the editor's final commit trace, fetched over the
    /// admin `FetchTrace` request after the run (0 when the server's
    /// tracer is off).
    pub trace_spans: u64,
    /// Bytes of Prometheus text the admin `MetricsDump` request returned.
    pub metrics_bytes: u64,
}

impl NetLoadReport {
    /// Percentile (0–100) over a latency series; 0 when empty.
    pub fn percentile(mut series: Vec<u64>, p: f64) -> u64 {
        if series.is_empty() {
            return 0;
        }
        series.sort_unstable();
        let rank = ((p / 100.0) * (series.len() - 1) as f64).round() as usize;
        series[rank.min(series.len() - 1)]
    }
}

/// Mirror of [`crate::script::apply`] over the wire: identical op
/// semantics (lock denials returned, user-visible errors absorbed with a
/// cancel), so a remote replay and an embedded replay of the same ops
/// land in the same state.
pub fn apply_remote(c: &mut Client, win: u32, op: &WindowOp) -> WowResult<()> {
    match op {
        WindowOp::Next => {
            c.next(win)?;
        }
        WindowOp::Prev => {
            c.prev(win)?;
        }
        WindowOp::NextPage => {
            c.next_page(win)?;
        }
        WindowOp::PrevPage => {
            c.prev_page(win)?;
        }
        WindowOp::Edit { field, text } => {
            c.enter_edit(win)?;
            c.set_field(win, *field as u16, text)?;
            match c.commit(win) {
                Ok(_) => {}
                Err(e @ (WowError::LockConflict { .. } | WowError::Deadlock { .. })) => {
                    c.cancel_mode(win)?;
                    return Err(e);
                }
                Err(_) => {
                    // Validation/uniqueness: the embedded UI shows it in
                    // the status bar and stays put.
                    c.cancel_mode(win)?;
                }
            }
        }
        WindowOp::Delete => match c.delete_current(win) {
            Ok(_) | Err(WowError::NoCurrentRow) => {}
            Err(e) => return Err(e),
        },
        WindowOp::Query { field, entry } => {
            c.enter_query(win)?;
            c.set_field(win, *field as u16, entry)?;
            if c.commit(win).is_err() {
                c.cancel_mode(win)?;
            }
        }
        WindowOp::ClearQuery => {
            c.clear_query(win)?;
        }
        WindowOp::Refresh => {
            c.refresh(win)?;
        }
    }
    Ok(())
}

/// Run a whole script remotely, returning `(completed, lock_denials)` —
/// the wire twin of [`crate::script::run_script`].
pub fn run_script_remote(c: &mut Client, win: u32, ops: &[WindowOp]) -> WowResult<(u64, u64)> {
    let mut done = 0;
    let mut denied = 0;
    for op in ops {
        match apply_remote(c, win, op) {
            Ok(()) => done += 1,
            Err(WowError::LockConflict { .. } | WowError::Deadlock { .. }) => denied += 1,
            Err(other) => return Err(other),
        }
    }
    Ok((done, denied))
}

/// Drive a full load run against a serving address.
pub fn run(addr: SocketAddr, cfg: &NetLoadConfig) -> WowResult<NetLoadReport> {
    let clients = cfg.clients.max(2);
    let browsers = clients - 2;
    let pending: Arc<Mutex<HashMap<String, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let request_ns: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let push_ns: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let denials = Arc::new(AtomicU64::new(0));
    let commits_done = Arc::new(AtomicU64::new(0));
    let pushes_seen = Arc::new(AtomicU64::new(0));
    let editors_finished = Arc::new(AtomicBool::new(false));
    let trace_spans = Arc::new(AtomicU64::new(0));
    let metrics_bytes = Arc::new(AtomicU64::new(0));

    // Watcher: first in, so the editor's pushes always have a viewer.
    let watcher = {
        let (pending, push_ns, pushes_seen, stop, view) = (
            Arc::clone(&pending),
            Arc::clone(&push_ns),
            Arc::clone(&pushes_seen),
            Arc::clone(&editors_finished),
            cfg.view.clone(),
        );
        std::thread::spawn(move || -> WowResult<()> {
            let mut c = Client::connect(addr)?;
            let (win, _, _) = c.open_window(&view, false)?;
            let mut last_gen = 0u64;
            let mut grace: Option<Instant> = None;
            loop {
                if let Some(push) = c.wait_push(Duration::from_millis(20))? {
                    let Push::WindowRefreshed {
                        win: pwin,
                        generation,
                        screen,
                        ..
                    } = push;
                    if pwin != win {
                        continue;
                    }
                    assert!(
                        generation > last_gen,
                        "push generations must be monotonic: {generation} after {last_gen}"
                    );
                    last_gen = generation;
                    pushes_seen.fetch_add(1, Ordering::Relaxed);
                    let now = Instant::now();
                    let mut pending = pending.lock().expect("pending poisoned");
                    for row in &screen.rows {
                        for v in row {
                            if let Some(t0) = pending.remove(&v.to_string()) {
                                push_ns
                                    .lock()
                                    .expect("push_ns poisoned")
                                    .push(now.duration_since(t0).as_nanos() as u64);
                            }
                        }
                    }
                }
                if stop.load(Ordering::SeqCst) {
                    // Drain stragglers briefly, then leave.
                    let g = grace.get_or_insert_with(Instant::now);
                    let drained = pending.lock().expect("pending poisoned").is_empty();
                    if drained || g.elapsed() > Duration::from_millis(500) {
                        break;
                    }
                }
            }
            c.goodbye()
        })
    };

    // Editor: unique marker values into the first row's edit field.
    let editor = {
        let (pending, request_ns, denials, commits_done, view) = (
            Arc::clone(&pending),
            Arc::clone(&request_ns),
            Arc::clone(&denials),
            Arc::clone(&commits_done),
            cfg.view.clone(),
        );
        let (commits, field, seed, gap) =
            (cfg.commits, cfg.edit_field, cfg.seed, cfg.commit_gap_ms);
        let (trace_spans, metrics_bytes) = (Arc::clone(&trace_spans), Arc::clone(&metrics_bytes));
        std::thread::spawn(move || -> WowResult<()> {
            let mut c = Client::connect(addr)?;
            let (win, _, _) = c.open_window(&view, false)?;
            // Markers start away from plausible data values; seed keeps
            // concurrent runs in one process from colliding.
            let base = 1_000_000 + (seed % 1000) * 10_000;
            for i in 0..commits {
                let marker = (base + i as u64).to_string();
                let t = Instant::now();
                pending
                    .lock()
                    .expect("pending poisoned")
                    .insert(marker.clone(), t);
                let op = WindowOp::Edit {
                    field,
                    text: marker.clone(),
                };
                match apply_remote(&mut c, win, &op) {
                    Ok(()) => {
                        commits_done.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(WowError::LockConflict { .. } | WowError::Deadlock { .. }) => {
                        denials.fetch_add(1, Ordering::Relaxed);
                        pending.lock().expect("pending poisoned").remove(&marker);
                    }
                    Err(other) => return Err(other),
                }
                request_ns
                    .lock()
                    .expect("request_ns poisoned")
                    .push(t.elapsed().as_nanos() as u64);
                if gap > 0 {
                    std::thread::sleep(Duration::from_millis(gap));
                }
            }
            // Exercise the admin surface while the run's spans are still
            // in the server's ring: fetch the final commit's trace tree
            // and a Prometheus metrics dump over the same connection.
            let final_trace = c.last_trace_id();
            if final_trace != 0 {
                trace_spans.store(c.fetch_trace(final_trace)?.len() as u64, Ordering::Relaxed);
            }
            metrics_bytes.store(c.metrics_dump()?.len() as u64, Ordering::Relaxed);
            c.goodbye()
        })
    };

    // Browsers: deterministic pure-browse scripts, per-op latencies.
    let browser_handles: Vec<_> = (0..browsers)
        .map(|b| {
            let (request_ns, denials, view) = (
                Arc::clone(&request_ns),
                Arc::clone(&denials),
                cfg.view.clone(),
            );
            let (ops_n, seed) = (cfg.ops_per_client, cfg.seed);
            std::thread::spawn(move || -> WowResult<()> {
                let mut rng = crate::rng::DetRng::new(seed ^ (b as u64 + 1));
                let ops = crate::script::mixed_script(&mut rng, ops_n, 0.0, 0);
                let mut c = Client::connect(addr)?;
                let (win, _, _) = c.open_window(&view, false)?;
                let mut local = Vec::with_capacity(ops.len());
                for op in &ops {
                    let t = Instant::now();
                    match apply_remote(&mut c, win, op) {
                        Ok(()) => {}
                        Err(WowError::LockConflict { .. } | WowError::Deadlock { .. }) => {
                            denials.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => return Err(other),
                    }
                    local.push(t.elapsed().as_nanos() as u64);
                }
                request_ns
                    .lock()
                    .expect("request_ns poisoned")
                    .extend(local);
                c.goodbye()
            })
        })
        .collect();

    let mut first_err: Option<WowError> = None;
    let mut note = |r: std::thread::Result<WowResult<()>>| match r {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            if first_err.is_none() {
                first_err = Some(e);
            }
        }
        Err(p) => std::panic::resume_unwind(p),
    };
    note(editor.join());
    for h in browser_handles {
        note(h.join());
    }
    editors_finished.store(true, Ordering::SeqCst);
    note(watcher.join());
    if let Some(e) = first_err {
        return Err(e);
    }

    let request_ns = Arc::try_unwrap(request_ns)
        .expect("request_ns still shared")
        .into_inner()
        .expect("request_ns poisoned");
    let commit_push_ns = Arc::try_unwrap(push_ns)
        .expect("push_ns still shared")
        .into_inner()
        .expect("push_ns poisoned");
    Ok(NetLoadReport {
        requests: request_ns.len() as u64,
        commits: commits_done.load(Ordering::Relaxed),
        lock_denials: denials.load(Ordering::Relaxed),
        pushes: pushes_seen.load(Ordering::Relaxed),
        request_ns,
        commit_push_ns,
        trace_spans: trace_spans.load(Ordering::Relaxed),
        metrics_bytes: metrics_bytes.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wow_core::{World, WorldConfig};
    use wow_net::{Server, ServerConfig};

    fn emp_world(rows: usize) -> World {
        let mut world = World::new(WorldConfig::default());
        world
            .db_mut()
            .run("CREATE TABLE emp (name TEXT KEY, salary INT)")
            .unwrap();
        for i in 0..rows {
            world
                .db_mut()
                .run(&format!(
                    r#"APPEND TO emp (name = "e{i:03}", salary = {})"#,
                    100 + i
                ))
                .unwrap();
        }
        world
            .define_view("emps", "RANGE OF e IS emp RETRIEVE (e.name, e.salary)")
            .unwrap();
        world
    }

    #[test]
    fn load_run_measures_pushes() {
        let server = Server::start(emp_world(30), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let report = run(
            server.local_addr(),
            &NetLoadConfig {
                clients: 4,
                ops_per_client: 30,
                commits: 10,
                ..NetLoadConfig::default()
            },
        )
        .unwrap();
        server.shutdown();
        assert_eq!(report.commits, 10, "browse-only peers never block edits");
        assert!(report.pushes > 0, "the watcher must see pushed refreshes");
        assert!(
            !report.commit_push_ns.is_empty(),
            "delivered markers must produce latency samples"
        );
        assert!(report.requests >= 10 + 2 * 30);
        assert!(
            report.metrics_bytes > 0,
            "the editor's admin metrics dump must return Prometheus text"
        );
    }

    #[test]
    fn percentile_math() {
        assert_eq!(NetLoadReport::percentile(vec![], 95.0), 0);
        assert_eq!(NetLoadReport::percentile(vec![5], 50.0), 5);
        // Nearest-rank over 1..=100: p50 rounds rank 49.5 up to index 50.
        let series: Vec<u64> = (1..=100).collect();
        assert_eq!(NetLoadReport::percentile(series.clone(), 50.0), 51);
        assert_eq!(NetLoadReport::percentile(series.clone(), 99.0), 99);
        assert_eq!(NetLoadReport::percentile(series, 100.0), 100);
    }
}
