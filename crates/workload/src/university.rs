//! The registrar world: students, courses, enrollment.
//!
//! This is the workload the paper's motivation section implies — a campus
//! office with several clerks, each at a terminal, browsing and updating
//! overlapping slices of the same registration data.

use crate::dist::Zipf;
use crate::rng::DetRng;
use wow_core::world::World;
use wow_core::WorldConfig;
use wow_rel::db::Database;
use wow_rel::value::Value;

/// Size/shape knobs.
#[derive(Debug, Clone, Copy)]
pub struct UniversityConfig {
    /// Number of students.
    pub students: usize,
    /// Number of courses.
    pub courses: usize,
    /// Number of enrollment rows.
    pub enrollments: usize,
    /// Zipf exponent for course popularity (0 = uniform).
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UniversityConfig {
    fn default() -> Self {
        UniversityConfig {
            students: 1000,
            courses: 100,
            enrollments: 5000,
            zipf_s: 1.0,
            seed: 0x5EED,
        }
    }
}

const DEPTS: &[&str] = &["math", "cs", "physics", "history", "music", "bio"];
const GRADES: &[&str] = &["A", "B", "C", "D", "F", "I"];

/// Create the schema and load synthetic data into `db`.
pub fn build(db: &mut Database, cfg: &UniversityConfig) {
    db.run(
        "CREATE TABLE student (sid INT KEY, sname TEXT NOT NULL, year INT, gpa FLOAT)
         CREATE TABLE course (cno INT KEY, title TEXT NOT NULL, dept TEXT, credits INT)
         CREATE TABLE enroll (eid INT KEY, sid INT NOT NULL, cno INT NOT NULL, grade TEXT)
         CREATE INDEX enroll_sid ON enroll (sid) USING HASH
         CREATE INDEX enroll_cno ON enroll (cno)
         CREATE INDEX student_gpa ON student (gpa)
         RANGE OF s IS student
         RANGE OF c IS course
         RANGE OF en IS enroll",
    )
    .expect("schema");
    let mut rng = DetRng::new(cfg.seed);
    for sid in 0..cfg.students {
        let name = format!("{} {}", cap(&rng.word(6)), cap(&rng.word(8)));
        let year = rng.range_i64(1, 4);
        let gpa = (rng.unit_f64() * 3.0 + 1.0 * 1.0).min(4.0);
        db.insert(
            "student",
            vec![
                Value::Int(sid as i64),
                Value::text(name),
                Value::Int(year),
                Value::Float((gpa * 100.0).round() / 100.0),
            ],
        )
        .expect("student row");
    }
    for cno in 0..cfg.courses {
        let title = format!("{} {}", cap(&rng.word(7)), 100 + rng.range_i64(0, 399));
        db.insert(
            "course",
            vec![
                Value::Int(cno as i64),
                Value::text(title),
                Value::text(*rng.pick(DEPTS)),
                Value::Int(rng.range_i64(1, 4)),
            ],
        )
        .expect("course row");
    }
    let popularity = Zipf::new(cfg.courses.max(1), cfg.zipf_s);
    for eid in 0..cfg.enrollments {
        let sid = rng.below(cfg.students.max(1) as u64) as i64;
        let cno = popularity.sample(&mut rng) as i64;
        db.insert(
            "enroll",
            vec![
                Value::Int(eid as i64),
                Value::Int(sid),
                Value::Int(cno),
                Value::text(*rng.pick(GRADES)),
            ],
        )
        .expect("enroll row");
    }
}

fn cap(word: &str) -> String {
    let mut cs = word.chars();
    match cs.next() {
        Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

/// The registrar's standard views.
pub fn define_views(world: &mut World) {
    world
        .define_view(
            "students",
            "RANGE OF s IS student RETRIEVE (s.sid, s.sname, s.year, s.gpa)",
        )
        .expect("students view");
    world
        .define_view(
            "seniors",
            "RANGE OF s IS student RETRIEVE (s.sid, s.sname, s.gpa) WHERE s.year = 4",
        )
        .expect("seniors view");
    world
        .define_view(
            "honor_roll",
            "RANGE OF s IS student RETRIEVE (s.sid, s.sname, s.gpa) WHERE s.gpa >= 3.5",
        )
        .expect("honor_roll view");
    world
        .define_view(
            "courses",
            "RANGE OF c IS course RETRIEVE (c.cno, c.title, c.dept, c.credits)",
        )
        .expect("courses view");
    world
        .define_view(
            "transcript",
            "RANGE OF s IS student RANGE OF en IS enroll
             RETRIEVE (s.sname, en.cno, en.grade) WHERE s.sid = en.sid",
        )
        .expect("transcript view");
    world
        .define_view(
            "dept_load",
            "RANGE OF c IS course RANGE OF en IS enroll
             RETRIEVE (c.dept, n = COUNT(en.eid)) WHERE en.cno = c.cno GROUP BY c.dept",
        )
        .expect("dept_load view");
}

/// Build a populated world with the standard views.
pub fn build_world(world_cfg: WorldConfig, cfg: &UniversityConfig) -> World {
    let mut world = World::new(world_cfg);
    build(world.db_mut(), cfg);
    define_views(&mut world);
    world
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_counts_match() {
        let cfg = UniversityConfig {
            students: 50,
            courses: 10,
            enrollments: 200,
            zipf_s: 1.0,
            seed: 1,
        };
        let mut db = Database::in_memory();
        build(&mut db, &cfg);
        let n = db.run("RETRIEVE (n = COUNT(s.sid))").unwrap();
        assert_eq!(n.tuples[0].values[0], Value::Int(50));
        let n = db.run("RETRIEVE (n = COUNT(en.eid))").unwrap();
        assert_eq!(n.tuples[0].values[0], Value::Int(200));
        // Every enrollment refers to a real student and course.
        let orphans = db
            .run("RETRIEVE (n = COUNT(en.eid)) WHERE en.sid >= 50")
            .unwrap();
        assert_eq!(orphans.tuples[0].values[0], Value::Int(0));
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = UniversityConfig {
            students: 20,
            courses: 5,
            enrollments: 30,
            zipf_s: 0.5,
            seed: 99,
        };
        let run = |cfg: &UniversityConfig| {
            let mut db = Database::in_memory();
            build(&mut db, cfg);
            db.run("RETRIEVE (s.sname) SORT BY s.sid")
                .unwrap()
                .tuples
                .iter()
                .map(|t| t.values[0].to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn zipf_skews_enrollment() {
        let cfg = UniversityConfig {
            students: 100,
            courses: 50,
            enrollments: 2000,
            zipf_s: 1.2,
            seed: 5,
        };
        let mut db = Database::in_memory();
        build(&mut db, &cfg);
        let top = db
            .run("RETRIEVE (n = COUNT(en.eid)) WHERE en.cno < 5")
            .unwrap();
        let Value::Int(head) = top.tuples[0].values[0] else {
            panic!()
        };
        assert!(head > 2000 / 10, "top-5 courses should be hot: {head}");
    }

    #[test]
    fn world_views_open() {
        let cfg = UniversityConfig {
            students: 30,
            courses: 8,
            enrollments: 60,
            zipf_s: 0.0,
            seed: 2,
        };
        let mut world = build_world(WorldConfig::default(), &cfg);
        let s = world.open_session();
        for v in [
            "students",
            "seniors",
            "honor_roll",
            "courses",
            "transcript",
            "dept_load",
        ] {
            let win = world.open_window(s, v, None).unwrap();
            // Every view renders without panicking.
            world.render_snapshot();
            world.close_window(win).unwrap();
        }
    }
}
