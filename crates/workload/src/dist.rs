//! Value distributions.

use crate::rng::DetRng;

/// A Zipf(s) sampler over ranks `0..n` (rank 0 most popular).
///
/// Uses the inverse-CDF over a precomputed table — exact, deterministic,
/// and fast enough for data generation. Skewed access is what separates a
/// real browse/propagation benchmark from a uniform toy.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `n` ranks with exponent `s` (s=0 is
    /// uniform; s=1 is the classic web-ish skew).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0);
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against FP drift at the top.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Sample a rank.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is degenerate.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Sample a selectivity-controlled subset: a predicate value such that
/// roughly `selectivity * n` of `n` uniform values in `[0, n)` fall below
/// it. Used by the crossover sweeps (Figure 3).
pub fn threshold_for_selectivity(n: u64, selectivity: f64) -> i64 {
    ((n as f64) * selectivity.clamp(0.0, 1.0)).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_zipf_is_flat() {
        let z = Zipf::new(10, 0.0);
        let mut rng = DetRng::new(11);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!((*max as f64) < (*min as f64) * 1.3, "flat-ish: {counts:?}");
    }

    #[test]
    fn skewed_zipf_front_loads() {
        let z = Zipf::new(100, 1.0);
        let mut rng = DetRng::new(12);
        let mut head = 0usize;
        let total = 20_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1 over 100 ranks, the top 10 ranks carry ~56% of the mass.
        assert!(head as f64 > total as f64 * 0.45, "head got {head}/{total}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(7, 0.8);
        let mut rng = DetRng::new(13);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
        assert_eq!(z.len(), 7);
        assert!(!z.is_empty());
    }

    #[test]
    fn threshold_math() {
        assert_eq!(threshold_for_selectivity(1000, 0.1), 100);
        assert_eq!(threshold_for_selectivity(1000, 0.0), 0);
        assert_eq!(threshold_for_selectivity(1000, 1.0), 1000);
        assert_eq!(threshold_for_selectivity(1000, 7.0), 1000, "clamped");
    }
}
