//! # wow-forms
//!
//! The forms package of *Windows on the World*: the layer that turns a
//! relation or view schema into an interactive, validated data-entry
//! surface.
//!
//! * [`spec`] — the form description: fields with captions, widths,
//!   types, writability, enumerated domains. Serializable (forms were
//!   stored in the database in 1983; we store them as data too).
//! * [`compiler`] — the **form compiler**: a default form from any schema,
//!   mechanically (Table 1 measures it).
//! * [`mod@format`] — value ↔ display-text conversions per type.
//! * [`validate`] — per-field and whole-form validation.
//! * [`layout`] — caption/field geometry inside a window.
//! * [`binding`] — the live form: text editors, focus ring, fill/collect.
//! * [`qbf`] — **query by form**: synthesizing a predicate from what the
//!   user typed into the fields (Table 4 measures it against hand-written
//!   QUEL).

pub mod binding;
pub mod compiler;
pub mod error;
pub mod format;
pub mod layout;
pub mod qbf;
pub mod spec;
pub mod validate;

pub use binding::FormInstance;
pub use compiler::compile_form;
pub use error::{FormError, FormResult};
pub use spec::{FieldSpec, FormSpec};
