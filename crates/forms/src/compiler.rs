//! The form compiler: a default form from any schema, mechanically.
//!
//! This is the paper's first contribution claim — a window onto any
//! relation without a designer in the loop — and Table 1 measures its cost
//! as schemas grow.

use crate::format::default_width;
use crate::spec::{default_caption, FieldSpec, FormSpec};
use wow_rel::schema::Schema;

/// Per-column overrides a designer may layer on the compiled default.
#[derive(Debug, Clone, Default)]
pub struct FieldOverride {
    /// Replace the caption.
    pub caption: Option<String>,
    /// Replace the width.
    pub width: Option<u16>,
    /// Force read-only.
    pub read_only: Option<bool>,
    /// Restrict to an enumerated domain.
    pub domain: Option<Vec<String>>,
    /// Attach help text.
    pub help: Option<String>,
}

/// Compile the default form for a schema.
///
/// * Captions derive from column names (`dept_id` → `Dept id`).
/// * Widths come from the type defaults.
/// * `NOT NULL` columns become required fields.
/// * `writable[i] == false` marks a field read-only (computed view columns,
///   key columns during edit — the caller decides).
pub fn compile_form(name: &str, title: &str, schema: &Schema, writable: &[bool]) -> FormSpec {
    let mut span = wow_obs::span(wow_obs::Op::FormCompile);
    span.arg(schema.len() as u64);
    assert_eq!(
        writable.len(),
        schema.len(),
        "one writability flag per column"
    );
    let fields = schema
        .columns
        .iter()
        .zip(writable)
        .map(|(col, &w)| FieldSpec {
            name: col.name.clone(),
            caption: default_caption(&col.name),
            ty: col.ty,
            width: default_width(col.ty),
            read_only: !w,
            required: !col.nullable,
            domain: Vec::new(),
            help: String::new(),
        })
        .collect();
    FormSpec {
        name: name.to_string(),
        title: title.to_string(),
        fields,
    }
}

/// Compile with every column writable.
pub fn compile_form_all_writable(name: &str, title: &str, schema: &Schema) -> FormSpec {
    compile_form(name, title, schema, &vec![true; schema.len()])
}

/// Apply designer overrides to a compiled form (unknown names are ignored —
/// a stored override file must not break when the schema gains columns).
pub fn apply_overrides(spec: &mut FormSpec, overrides: &[(String, FieldOverride)]) {
    for (name, ov) in overrides {
        let Some(i) = spec.field_index(name) else {
            continue;
        };
        let f = &mut spec.fields[i];
        if let Some(c) = &ov.caption {
            f.caption = c.clone();
        }
        if let Some(w) = ov.width {
            f.width = w;
        }
        if let Some(r) = ov.read_only {
            f.read_only = r;
        }
        if let Some(d) = &ov.domain {
            f.domain = d.clone();
        }
        if let Some(h) = &ov.help {
            f.help = h.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wow_rel::schema::Column;
    use wow_rel::types::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::not_null("name", DataType::Text),
            Column::new("dept_id", DataType::Int),
            Column::new("hired", DataType::Date),
            Column::new("active", DataType::Bool),
        ])
    }

    #[test]
    fn compiles_defaults() {
        let form = compile_form("emp", "Employees", &schema(), &[true, true, true, false]);
        assert_eq!(form.fields.len(), 4);
        assert_eq!(form.fields[0].caption, "Name");
        assert!(form.fields[0].required, "NOT NULL becomes required");
        assert_eq!(form.fields[1].caption, "Dept id");
        assert_eq!(form.fields[2].width, 10);
        assert!(form.fields[3].read_only);
    }

    #[test]
    fn qualified_names_get_bare_captions() {
        let s = schema().qualified("e");
        let form = compile_form_all_writable("emp", "t", &s);
        assert_eq!(form.fields[0].name, "e.name");
        assert_eq!(form.fields[0].caption, "Name");
    }

    #[test]
    fn overrides_apply_and_ignore_unknowns() {
        let mut form = compile_form_all_writable("emp", "t", &schema());
        apply_overrides(
            &mut form,
            &[
                (
                    "dept_id".to_string(),
                    FieldOverride {
                        caption: Some("Department".into()),
                        width: Some(6),
                        domain: Some(vec!["1".into(), "2".into()]),
                        ..Default::default()
                    },
                ),
                ("ghost".to_string(), FieldOverride::default()),
            ],
        );
        let f = &form.fields[1];
        assert_eq!(f.caption, "Department");
        assert_eq!(f.width, 6);
        assert_eq!(f.domain, vec!["1", "2"]);
    }

    #[test]
    #[should_panic(expected = "one writability flag")]
    fn writable_mask_must_match() {
        compile_form("emp", "t", &schema(), &[true]);
    }
}
