//! Form layout: caption/editor geometry inside a window interior.

use crate::spec::FormSpec;
use wow_tui::geom::Rect;

/// Where one field's caption and editor land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldLayout {
    /// Caption position (one row).
    pub caption: Rect,
    /// Editor position (one row).
    pub editor: Rect,
}

/// The computed layout of a form within an area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormLayout {
    /// Per-field geometry, index-aligned with the spec's fields.
    pub fields: Vec<FieldLayout>,
    /// Number of fields that fit (`fields.len()` may exceed the area; the
    /// binding layer scrolls by whole fields).
    pub visible: usize,
}

/// Lay out one field per row: `Caption: [editor        ]`.
///
/// `scroll` is the index of the first visible field (fields above it are
/// off-screen). The caption column is as wide as the widest caption plus a
/// separating colon and space.
pub fn layout_form(spec: &FormSpec, area: Rect, scroll: usize) -> FormLayout {
    let caption_w = spec.caption_width() + 2; // ": "
    let mut fields = Vec::with_capacity(spec.fields.len());
    let rows_available = area.h as usize;
    let mut visible = 0;
    for (i, f) in spec.fields.iter().enumerate() {
        if i < scroll || visible >= rows_available {
            // Off-screen: record an empty rect so indexes stay aligned.
            fields.push(FieldLayout {
                caption: Rect::new(area.x, area.bottom(), 0, 0),
                editor: Rect::new(area.x, area.bottom(), 0, 0),
            });
            continue;
        }
        let y = area.y + visible as i32;
        let editor_w = f.width.min(area.w.saturating_sub(caption_w)).max(1);
        fields.push(FieldLayout {
            caption: Rect::new(area.x, y, caption_w.min(area.w), 1),
            editor: Rect::new(area.x + caption_w as i32, y, editor_w, 1),
        });
        visible += 1;
    }
    FormLayout { fields, visible }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FieldSpec;
    use wow_rel::types::DataType;

    fn spec(n: usize) -> FormSpec {
        FormSpec {
            name: "t".into(),
            title: "t".into(),
            fields: (0..n)
                .map(|i| FieldSpec::new(format!("field_{i}"), DataType::Text, 12))
                .collect(),
        }
    }

    #[test]
    fn one_field_per_row() {
        let s = spec(3);
        let l = layout_form(&s, Rect::new(1, 1, 40, 10), 0);
        assert_eq!(l.visible, 3);
        assert_eq!(l.fields[0].caption.y, 1);
        assert_eq!(l.fields[1].caption.y, 2);
        assert_eq!(l.fields[2].editor.y, 3);
        // Editors start after the caption column.
        let cap_w = s.caption_width() + 2;
        assert_eq!(l.fields[0].editor.x, 1 + cap_w as i32);
    }

    #[test]
    fn scrolling_hides_leading_fields() {
        let s = spec(5);
        let l = layout_form(&s, Rect::new(0, 0, 40, 2), 2);
        assert!(l.fields[0].editor.is_empty());
        assert!(l.fields[1].editor.is_empty());
        assert_eq!(l.fields[2].caption.y, 0);
        assert_eq!(l.fields[3].caption.y, 1);
        assert!(l.fields[4].editor.is_empty(), "beyond the viewport");
        assert_eq!(l.visible, 2);
    }

    #[test]
    fn narrow_areas_shrink_editors() {
        let s = spec(1);
        let l = layout_form(&s, Rect::new(0, 0, 12, 2), 0);
        assert!(l.fields[0].editor.w >= 1);
        assert!(l.fields[0].editor.right() <= 13);
    }

    #[test]
    fn empty_form_lays_out_empty() {
        let s = spec(0);
        let l = layout_form(&s, Rect::new(0, 0, 10, 5), 0);
        assert!(l.fields.is_empty());
        assert_eq!(l.visible, 0);
    }
}
