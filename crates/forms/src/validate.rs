//! Field and form validation.

use crate::error::{FormError, FormResult};
use crate::format;
use crate::spec::{FieldSpec, FormSpec};
use wow_rel::value::Value;

/// Validate one field's entered text, producing its value.
///
/// Checks, in order: read-only fields must be untouched by callers (that is
/// enforced by the binding layer, not here), required fields must be
/// non-empty, the text must parse as the field type, and enumerated domains
/// must contain the value.
pub fn validate_field(spec: &FieldSpec, text: &str) -> FormResult<Value> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        if spec.required {
            return Err(FormError::Validation {
                field: spec.name.clone(),
                message: "a value is required".into(),
            });
        }
        return Ok(Value::Null);
    }
    let value = format::parse(trimmed, spec.ty).map_err(|message| FormError::Validation {
        field: spec.name.clone(),
        message,
    })?;
    if !spec.domain.is_empty() {
        let shown = format::display(&value);
        if !spec.domain.iter().any(|d| d == &shown) {
            return Err(FormError::Validation {
                field: spec.name.clone(),
                message: format!("must be one of: {}", spec.domain.join(", ")),
            });
        }
    }
    Ok(value)
}

/// Validate a whole form's entered texts (one per field, in order),
/// producing the value row. Fails on the first offending field so the
/// binding layer can focus it.
pub fn validate_form(spec: &FormSpec, texts: &[String]) -> FormResult<Vec<Value>> {
    if texts.len() != spec.fields.len() {
        return Err(FormError::Validation {
            field: spec.name.clone(),
            message: format!(
                "form has {} fields but {} values were supplied",
                spec.fields.len(),
                texts.len()
            ),
        });
    }
    spec.fields
        .iter()
        .zip(texts)
        .map(|(f, t)| validate_field(f, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wow_rel::types::DataType;

    fn field(ty: DataType) -> FieldSpec {
        FieldSpec::new("f", ty, 10)
    }

    #[test]
    fn empty_optional_is_null() {
        assert_eq!(
            validate_field(&field(DataType::Int), "  ").unwrap(),
            Value::Null
        );
    }

    #[test]
    fn empty_required_fails() {
        let mut f = field(DataType::Text);
        f.required = true;
        let err = validate_field(&f, "").unwrap_err();
        assert!(err.to_string().contains("required"));
    }

    #[test]
    fn type_errors_carry_hints() {
        let err = validate_field(&field(DataType::Date), "05/23/1983").unwrap_err();
        assert!(err.to_string().contains("YYYY-MM-DD"));
    }

    #[test]
    fn domain_enforced() {
        let mut f = field(DataType::Text);
        f.domain = vec!["toy".into(), "shoe".into()];
        assert_eq!(validate_field(&f, "toy").unwrap(), Value::text("toy"));
        let err = validate_field(&f, "candy").unwrap_err();
        assert!(err.to_string().contains("one of"));
    }

    #[test]
    fn domain_on_ints_compares_display_form() {
        let mut f = field(DataType::Int);
        f.domain = vec!["1".into(), "2".into()];
        assert_eq!(validate_field(&f, "2").unwrap(), Value::Int(2));
        assert!(validate_field(&f, "3").is_err());
    }

    #[test]
    fn whole_form_validates_in_order() {
        let spec = FormSpec {
            name: "t".into(),
            title: "t".into(),
            fields: vec![field(DataType::Int), {
                let mut f = field(DataType::Text);
                f.required = true;
                f
            }],
        };
        let vals = validate_form(&spec, &["5".to_string(), "hi".to_string()]).unwrap();
        assert_eq!(vals, vec![Value::Int(5), Value::text("hi")]);
        assert!(validate_form(&spec, &["5".to_string(), "".to_string()]).is_err());
        assert!(validate_form(&spec, &["5".to_string()]).is_err());
    }
}
