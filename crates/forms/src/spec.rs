//! Form specifications.

use serde::{Deserialize, Serialize};
use wow_rel::types::DataType;

// DataType is foreign; mirror it for serde without forcing serde into
// wow-rel's public surface. Only the serde derive references these adapters,
// so they look dead when building against the offline serde shim's stub
// derives.
#[allow(dead_code)]
mod dt_serde {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use wow_rel::types::DataType;

    pub fn serialize<S: Serializer>(dt: &DataType, s: S) -> Result<S::Ok, S::Error> {
        dt.keyword().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<DataType, D::Error> {
        let word = String::deserialize(d)?;
        DataType::from_keyword(&word)
            .ok_or_else(|| serde::de::Error::custom(format!("unknown type {word}")))
    }
}

/// One field of a form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// The bound column name (view/table column).
    pub name: String,
    /// Caption shown next to the field.
    pub caption: String,
    /// Data type (drives parsing, validation, and alignment).
    #[serde(with = "dt_serde")]
    pub ty: DataType,
    /// Editor width in cells.
    pub width: u16,
    /// Whether the field can be edited (computed view columns cannot).
    pub read_only: bool,
    /// Whether a value is required (NOT NULL columns).
    pub required: bool,
    /// Optional enumerated domain: the only values accepted.
    #[serde(default)]
    pub domain: Vec<String>,
    /// One-line help shown in the status bar when the field has focus.
    #[serde(default)]
    pub help: String,
}

impl FieldSpec {
    /// A plain writable field.
    pub fn new(name: impl Into<String>, ty: DataType, width: u16) -> FieldSpec {
        let name = name.into();
        FieldSpec {
            caption: default_caption(&name),
            name,
            ty,
            width,
            read_only: false,
            required: false,
            domain: Vec::new(),
            help: String::new(),
        }
    }
}

/// Turn a column name into a human caption: `dept_id` → `Dept id`.
pub fn default_caption(name: &str) -> String {
    let bare = name.rsplit('.').next().unwrap_or(name);
    let spaced = bare.replace('_', " ");
    let mut chars = spaced.chars();
    match chars.next() {
        None => String::new(),
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
    }
}

/// A complete form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FormSpec {
    /// Form name (usually the view it binds to).
    pub name: String,
    /// Window title.
    pub title: String,
    /// Fields in tab order.
    pub fields: Vec<FieldSpec>,
}

impl FormSpec {
    /// Index of a field by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The widest caption, in characters (layout uses this).
    pub fn caption_width(&self) -> u16 {
        self.fields
            .iter()
            .map(|f| f.caption.chars().count() as u16)
            .max()
            .unwrap_or(0)
    }

    /// Serialize to the stored-form format.
    pub fn to_stored(&self) -> String {
        stored::encode(self)
    }
}

// Forms were stored *in the database* in 1983; this tiny line-oriented
// stable encoding is what we persist. (The Serialize/Deserialize derives
// remain useful to embedders who bring their own format.)
mod stored {
    use super::FormSpec;

    /// A compact, line-oriented stable text encoding of a form spec.
    pub fn encode(spec: &FormSpec) -> String {
        let mut out = String::new();
        out.push_str(&format!("form {}\n", spec.name));
        out.push_str(&format!("title {}\n", spec.title));
        for f in &spec.fields {
            out.push_str(&format!(
                "field {}|{}|{}|{}|{}|{}|{}|{}\n",
                f.name,
                f.caption,
                f.ty.keyword(),
                f.width,
                f.read_only as u8,
                f.required as u8,
                f.domain.join(","),
                f.help,
            ));
        }
        out
    }
}

impl FormSpec {
    /// Parse the stored-form format produced by [`FormSpec::to_stored`].
    pub fn from_stored(text: &str) -> Option<FormSpec> {
        let mut name = None;
        let mut title = None;
        let mut fields = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("form ") {
                name = Some(rest.to_string());
            } else if let Some(rest) = line.strip_prefix("title ") {
                title = Some(rest.to_string());
            } else if let Some(rest) = line.strip_prefix("field ") {
                let parts: Vec<&str> = rest.splitn(8, '|').collect();
                if parts.len() != 8 {
                    return None;
                }
                fields.push(FieldSpec {
                    name: parts[0].to_string(),
                    caption: parts[1].to_string(),
                    ty: DataType::from_keyword(parts[2])?,
                    width: parts[3].parse().ok()?,
                    read_only: parts[4] == "1",
                    required: parts[5] == "1",
                    domain: if parts[6].is_empty() {
                        Vec::new()
                    } else {
                        parts[6].split(',').map(|s| s.to_string()).collect()
                    },
                    help: parts[7].to_string(),
                });
            }
        }
        Some(FormSpec {
            name: name?,
            title: title?,
            fields,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FormSpec {
        FormSpec {
            name: "emp".into(),
            title: "Employees".into(),
            fields: vec![
                FieldSpec::new("name", DataType::Text, 20),
                FieldSpec {
                    required: true,
                    domain: vec!["toy".into(), "shoe".into()],
                    help: "the department".into(),
                    ..FieldSpec::new("dept", DataType::Text, 10)
                },
                FieldSpec {
                    read_only: true,
                    ..FieldSpec::new("salary", DataType::Int, 10)
                },
            ],
        }
    }

    #[test]
    fn captions_default_nicely() {
        assert_eq!(default_caption("dept_id"), "Dept id");
        assert_eq!(default_caption("e.start_date"), "Start date");
        assert_eq!(default_caption("x"), "X");
        assert_eq!(default_caption(""), "");
    }

    #[test]
    fn field_index_and_caption_width() {
        let s = spec();
        assert_eq!(s.field_index("dept"), Some(1));
        assert_eq!(s.field_index("nope"), None);
        assert_eq!(s.caption_width(), 6); // "Salary"
    }

    #[test]
    fn stored_round_trip() {
        let s = spec();
        let text = s.to_stored();
        let back = FormSpec::from_stored(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn stored_rejects_garbage() {
        assert!(FormSpec::from_stored("nonsense").is_none());
        assert!(FormSpec::from_stored("form x\ntitle t\nfield broken|only|three").is_none());
    }
}
