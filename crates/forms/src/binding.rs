//! The live form: editors, focus, fill/collect, rendering.

use crate::error::FormResult;
use crate::format;
use crate::layout::layout_form;
use crate::spec::FormSpec;
use crate::validate::validate_form;
use wow_rel::value::Value;
use wow_tui::buffer::ScreenBuffer;
use wow_tui::cell::Style;
use wow_tui::event::Key;
use wow_tui::geom::{Point, Rect};
use wow_tui::widget::{Response, TextField, Widget};

/// A form bound to live editors — what actually sits inside a window.
#[derive(Debug, Clone)]
pub struct FormInstance {
    /// The specification.
    pub spec: FormSpec,
    editors: Vec<TextField>,
    focused: usize,
    scroll: usize,
    /// A sticky user-facing message (validation error, hint).
    pub message: String,
}

impl FormInstance {
    /// A blank instance of a form.
    pub fn new(spec: FormSpec) -> FormInstance {
        let editors = spec.fields.iter().map(|_| TextField::new()).collect();
        let focused = spec.fields.iter().position(|f| !f.read_only).unwrap_or(0);
        FormInstance {
            spec,
            editors,
            focused,
            scroll: 0,
            message: String::new(),
        }
    }

    /// The focused field index.
    pub fn focused(&self) -> usize {
        self.focused
    }

    /// Focus a field by index (clamped).
    pub fn focus(&mut self, i: usize) {
        if !self.spec.fields.is_empty() {
            self.focused = i.min(self.spec.fields.len() - 1);
        }
    }

    /// Focus a field by name.
    pub fn focus_field(&mut self, name: &str) -> bool {
        match self.spec.field_index(name) {
            Some(i) => {
                self.focused = i;
                true
            }
            None => false,
        }
    }

    /// Current entered texts, in field order.
    pub fn texts(&self) -> Vec<String> {
        self.editors.iter().map(|e| e.value()).collect()
    }

    /// The text of one field.
    pub fn text(&self, i: usize) -> String {
        self.editors[i].value()
    }

    /// Overwrite one field's text.
    pub fn set_text(&mut self, i: usize, text: &str) {
        self.editors[i].set_value(text);
    }

    /// Fill every field from a value row (display formatting applied).
    pub fn fill(&mut self, values: &[Value]) {
        for (e, v) in self.editors.iter_mut().zip(values) {
            e.set_value(&format::display(v));
        }
    }

    /// Clear every field.
    pub fn clear(&mut self) {
        for e in &mut self.editors {
            e.set_value("");
        }
        self.message.clear();
    }

    /// Validate and collect the entered values.
    pub fn values(&self) -> FormResult<Vec<Value>> {
        validate_form(&self.spec, &self.texts())
    }

    /// Which fields differ from `original` (by display text) — the dirty
    /// set an edit commit writes back.
    pub fn dirty_fields(&self, original: &[Value]) -> Vec<usize> {
        self.editors
            .iter()
            .enumerate()
            .zip(original)
            .filter(|((_, e), v)| e.value() != format::display(v))
            .map(|((i, _), _)| i)
            .collect()
    }

    fn next_focusable(&self, from: usize, forward: bool) -> usize {
        let n = self.spec.fields.len();
        if n == 0 {
            return 0;
        }
        let mut i = from;
        for _ in 0..n {
            i = if forward {
                (i + 1) % n
            } else {
                (i + n - 1) % n
            };
            if !self.spec.fields[i].read_only {
                return i;
            }
        }
        from
    }

    /// Route a key: Tab/Shift-Tab move focus (skipping read-only fields);
    /// anything else goes to the focused editor unless it is read-only.
    pub fn handle_key(&mut self, key: Key) -> Response {
        match key {
            Key::Tab | Key::Down => {
                self.focused = self.next_focusable(self.focused, true);
                Response::Consumed
            }
            Key::BackTab | Key::Up => {
                self.focused = self.next_focusable(self.focused, false);
                Response::Consumed
            }
            other => {
                if self
                    .spec
                    .fields
                    .get(self.focused)
                    .is_some_and(|f| f.read_only)
                {
                    // Read-only fields still let Enter/Esc bubble.
                    return match other {
                        Key::Enter => Response::Submit,
                        Key::Esc => Response::Cancel,
                        _ => Response::Ignored,
                    };
                }
                self.editors[self.focused].handle_key(other)
            }
        }
    }

    /// Render the form (captions + editors) into `area`. `active` controls
    /// whether the focused field shows its cursor.
    pub fn render(&mut self, buf: &mut ScreenBuffer, area: Rect, active: bool) {
        if area.is_empty() || self.spec.fields.is_empty() {
            return;
        }
        // Keep the focused field visible.
        let rows = area.h as usize;
        if self.focused < self.scroll {
            self.scroll = self.focused;
        } else if rows > 0 && self.focused >= self.scroll + rows {
            self.scroll = self.focused + 1 - rows;
        }
        let layout = layout_form(&self.spec, area, self.scroll);
        for (i, (f, pos)) in self.spec.fields.iter().zip(&layout.fields).enumerate() {
            if pos.caption.is_empty() && pos.editor.is_empty() {
                continue;
            }
            let caption_style = if f.required {
                Style::plain().bold()
            } else {
                Style::plain()
            };
            let caption = format!("{}:", f.caption);
            buf.draw_text(
                Point::new(pos.caption.x, pos.caption.y),
                &caption,
                caption_style,
                pos.caption,
            );
            let focused = active && i == self.focused;
            if f.read_only {
                // Read-only: plain text, reverse-video when focused.
                let style = if focused {
                    Style::plain().reverse()
                } else {
                    Style::plain()
                };
                buf.draw_text(
                    Point::new(pos.editor.x, pos.editor.y),
                    &self.editors[i].value(),
                    style,
                    pos.editor,
                );
            } else {
                self.editors[i].render(buf, pos.editor, focused);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile_form;
    use wow_rel::schema::{Column, Schema};
    use wow_rel::types::DataType;
    use wow_tui::event::parse_script;
    use wow_tui::geom::Size;

    fn form() -> FormInstance {
        let schema = Schema::new(vec![
            Column::not_null("name", DataType::Text),
            Column::new("salary", DataType::Int),
            Column::new("hired", DataType::Date),
        ]);
        let spec = compile_form("emp", "Employee", &schema, &[true, true, false]);
        FormInstance::new(spec)
    }

    fn send(f: &mut FormInstance, script: &str) {
        for k in parse_script(script) {
            f.handle_key(k);
        }
    }

    #[test]
    fn typing_fills_focused_field() {
        let mut f = form();
        send(&mut f, "alice<tab>120");
        assert_eq!(f.texts(), vec!["alice", "120", ""]);
    }

    #[test]
    fn tab_skips_read_only_fields() {
        let mut f = form();
        assert_eq!(f.focused(), 0);
        send(&mut f, "<tab>");
        assert_eq!(f.focused(), 1);
        send(&mut f, "<tab>");
        assert_eq!(f.focused(), 0, "hired is read-only, wrap to name");
        send(&mut f, "<backtab>");
        assert_eq!(f.focused(), 1);
    }

    #[test]
    fn read_only_field_rejects_typing() {
        let mut f = form();
        f.focus(2);
        send(&mut f, "1999-01-01");
        assert_eq!(f.text(2), "");
        assert_eq!(f.handle_key(Key::Enter), Response::Submit);
    }

    #[test]
    fn fill_and_collect_round_trip() {
        let mut f = form();
        f.fill(&[Value::text("bob"), Value::Int(90), Value::Date(4890)]);
        assert_eq!(f.texts(), vec!["bob", "90", "1983-05-23"]);
        let vals = f.values().unwrap();
        assert_eq!(
            vals,
            vec![Value::text("bob"), Value::Int(90), Value::Date(4890)]
        );
    }

    #[test]
    fn validation_errors_surface() {
        let mut f = form();
        send(&mut f, "<tab>not_a_number");
        assert!(f.values().is_err());
        // Required name empty also fails.
        let mut f = form();
        send(&mut f, "<tab>5");
        assert!(f.values().is_err());
    }

    #[test]
    fn dirty_fields_detected() {
        let mut f = form();
        let original = vec![Value::text("bob"), Value::Int(90), Value::Date(4890)];
        f.fill(&original);
        assert!(f.dirty_fields(&original).is_empty());
        send(&mut f, "X"); // edit name
        assert_eq!(f.dirty_fields(&original), vec![0]);
        f.focus(1);
        send(&mut f, "<backspace>");
        assert_eq!(f.dirty_fields(&original), vec![0, 1]);
    }

    #[test]
    fn renders_captions_and_values() {
        let mut f = form();
        f.fill(&[Value::text("bob"), Value::Int(90), Value::Null]);
        let mut buf = ScreenBuffer::new(Size::new(30, 5));
        f.render(&mut buf, Rect::new(0, 0, 30, 5), true);
        let rows = buf.to_strings();
        assert!(rows[0].starts_with("Name:"), "{rows:?}");
        assert!(rows[0].contains("bob"));
        assert!(rows[1].contains("90"));
        assert!(rows[2].starts_with("Hired:"));
    }

    #[test]
    fn scrolls_to_keep_focus_visible() {
        let schema = Schema::new(
            (0..10)
                .map(|i| Column::new(format!("f{i}"), DataType::Text))
                .collect(),
        );
        let spec = compile_form("big", "Big", &schema, &vec![true; 10]);
        let mut f = FormInstance::new(spec);
        f.focus(8);
        let mut buf = ScreenBuffer::new(Size::new(30, 4));
        f.render(&mut buf, Rect::new(0, 0, 30, 4), true);
        let rows = buf.to_strings();
        assert!(
            rows.iter().any(|r| r.contains("F8:")),
            "focused field visible: {rows:?}"
        );
        assert!(!rows.iter().any(|r| r.contains("F0:")));
    }

    #[test]
    fn clear_resets() {
        let mut f = form();
        f.fill(&[Value::text("x"), Value::Int(1), Value::Null]);
        f.message = "oops".into();
        f.clear();
        assert_eq!(f.texts(), vec!["", "", ""]);
        assert!(f.message.is_empty());
    }
}
