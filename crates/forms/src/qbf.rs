//! Query by form: synthesizing a predicate from filled-in fields.
//!
//! The user types restrictions directly into a blank form; each non-empty
//! field contributes one conjunct (Table 4 measures the synthesis against
//! hand-written QUEL):
//!
//! | entry            | meaning                          |
//! |------------------|----------------------------------|
//! | `smith`          | equality                         |
//! | `>100`, `<=5`    | comparison                       |
//! | `!=toy`          | inequality                       |
//! | `100..200`       | inclusive range                  |
//! | `Sm*`, `b?b`     | pattern match (text fields)      |
//! | `null` / `!null` | is-null / is-not-null            |

use crate::error::{FormError, FormResult};
use crate::format;
use crate::spec::{FieldSpec, FormSpec};
use wow_rel::expr::{BinOp, Expr, UnOp};
use wow_rel::types::DataType;
use wow_rel::value::Value;

/// Parse one field's query entry into a predicate over `ColumnRef(name)`.
/// Empty entries contribute nothing (`Ok(None)`).
pub fn field_predicate(spec: &FieldSpec, entry: &str) -> FormResult<Option<Expr>> {
    let text = entry.trim();
    if text.is_empty() {
        return Ok(None);
    }
    let col = || Expr::ColumnRef(spec.name.clone());
    let bad = |message: String| FormError::BadQuery {
        field: spec.name.clone(),
        message,
    };
    // Null tests.
    if text.eq_ignore_ascii_case("null") {
        return Ok(Some(Expr::IsNull(Box::new(col()))));
    }
    if text.eq_ignore_ascii_case("!null") {
        return Ok(Some(Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(Expr::IsNull(Box::new(col()))),
        }));
    }
    // Comparison prefixes (two-char forms first).
    for (prefix, op) in [
        (">=", BinOp::Ge),
        ("<=", BinOp::Le),
        ("!=", BinOp::Ne),
        (">", BinOp::Gt),
        ("<", BinOp::Lt),
        ("=", BinOp::Eq),
    ] {
        if let Some(rest) = text.strip_prefix(prefix) {
            let v = parse_operand(spec, rest.trim()).map_err(bad)?;
            return Ok(Some(Expr::Binary {
                op,
                left: Box::new(col()),
                right: Box::new(Expr::Literal(v)),
            }));
        }
    }
    // Inclusive range `lo..hi`.
    if let Some((lo, hi)) = text.split_once("..") {
        if !lo.is_empty() && !hi.is_empty() {
            let lo = parse_operand(spec, lo.trim()).map_err(&bad)?;
            let hi = parse_operand(spec, hi.trim()).map_err(&bad)?;
            let lower = Expr::Binary {
                op: BinOp::Ge,
                left: Box::new(col()),
                right: Box::new(Expr::Literal(lo)),
            };
            let upper = Expr::Binary {
                op: BinOp::Le,
                left: Box::new(col()),
                right: Box::new(Expr::Literal(hi)),
            };
            return Ok(Some(Expr::and(lower, upper)));
        }
    }
    // Patterns (text fields only).
    if spec.ty == DataType::Text && (text.contains('*') || text.contains('?')) {
        return Ok(Some(Expr::Like {
            expr: Box::new(col()),
            pattern: text.to_string(),
        }));
    }
    // Plain equality.
    let v = parse_operand(spec, text).map_err(bad)?;
    Ok(Some(Expr::Binary {
        op: BinOp::Eq,
        left: Box::new(col()),
        right: Box::new(Expr::Literal(v)),
    }))
}

fn parse_operand(spec: &FieldSpec, text: &str) -> Result<Value, String> {
    if text.is_empty() {
        return Err(format!(
            "missing value after operator ({})",
            format::type_hint(spec.ty)
        ));
    }
    format::parse(text, spec.ty)
}

/// Synthesize the whole form's predicate: the conjunction of every
/// non-empty field entry. `Ok(None)` means "no restriction".
pub fn form_predicate(spec: &FormSpec, entries: &[String]) -> FormResult<Option<Expr>> {
    if entries.len() != spec.fields.len() {
        return Err(FormError::BadQuery {
            field: spec.name.clone(),
            message: format!(
                "form has {} fields but {} entries were supplied",
                spec.fields.len(),
                entries.len()
            ),
        });
    }
    let mut conjuncts = Vec::new();
    for (f, e) in spec.fields.iter().zip(entries) {
        if let Some(p) = field_predicate(f, e)? {
            conjuncts.push(p);
        }
    }
    if conjuncts.is_empty() {
        return Ok(None);
    }
    Ok(Some(Expr::conjunction(conjuncts)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(ty: DataType) -> FieldSpec {
        FieldSpec::new("fld", ty, 10)
    }

    fn pred(ty: DataType, entry: &str) -> String {
        field_predicate(&f(ty), entry).unwrap().unwrap().to_string()
    }

    #[test]
    fn empty_is_none() {
        assert!(field_predicate(&f(DataType::Int), "  ").unwrap().is_none());
    }

    #[test]
    fn equality_default() {
        assert_eq!(pred(DataType::Int, "42"), "(fld = 42)");
        assert_eq!(pred(DataType::Text, "smith"), "(fld = \"smith\")");
        assert_eq!(pred(DataType::Bool, "yes"), "(fld = true)");
        assert_eq!(pred(DataType::Date, "1983-05-23"), "(fld = 1983-05-23)");
    }

    #[test]
    fn comparisons() {
        assert_eq!(pred(DataType::Int, ">100"), "(fld > 100)");
        assert_eq!(pred(DataType::Int, ">= 100"), "(fld >= 100)");
        assert_eq!(pred(DataType::Int, "<=5"), "(fld <= 5)");
        assert_eq!(pred(DataType::Text, "!=toy"), "(fld != \"toy\")");
        assert_eq!(pred(DataType::Int, "=7"), "(fld = 7)");
    }

    #[test]
    fn ranges() {
        assert_eq!(
            pred(DataType::Int, "100..200"),
            "((fld >= 100) AND (fld <= 200))"
        );
        assert_eq!(
            pred(DataType::Date, "1983-01-01..1983-12-31"),
            "((fld >= 1983-01-01) AND (fld <= 1983-12-31))"
        );
    }

    #[test]
    fn patterns_only_on_text() {
        assert_eq!(pred(DataType::Text, "Sm*"), "(fld LIKE \"Sm*\")");
        assert_eq!(pred(DataType::Text, "b?b"), "(fld LIKE \"b?b\")");
        // On an int field, `*` is just a parse error.
        assert!(field_predicate(&f(DataType::Int), "4*").is_err());
    }

    #[test]
    fn null_tests() {
        assert_eq!(pred(DataType::Text, "null"), "(fld IS NULL)");
        assert_eq!(pred(DataType::Text, "NULL"), "(fld IS NULL)");
        assert_eq!(pred(DataType::Text, "!null"), "(NOT (fld IS NULL))");
    }

    #[test]
    fn bad_entries_error_with_field_name() {
        let err = field_predicate(&f(DataType::Int), ">abc").unwrap_err();
        assert!(err.to_string().starts_with("fld:"));
        let err = field_predicate(&f(DataType::Int), ">").unwrap_err();
        assert!(err.to_string().contains("missing value"));
    }

    #[test]
    fn form_level_conjunction() {
        let spec = FormSpec {
            name: "emp".into(),
            title: "t".into(),
            fields: vec![
                FieldSpec::new("name", DataType::Text, 10),
                FieldSpec::new("salary", DataType::Int, 10),
                FieldSpec::new("dept", DataType::Text, 10),
            ],
        };
        let p = form_predicate(
            &spec,
            &["Sm*".to_string(), ">100".to_string(), String::new()],
        )
        .unwrap()
        .unwrap();
        assert_eq!(p.to_string(), "((name LIKE \"Sm*\") AND (salary > 100))");
        // All blank → no restriction.
        assert!(form_predicate(&spec, &vec![String::new(); 3])
            .unwrap()
            .is_none());
        // Arity mismatch errors.
        assert!(form_predicate(&spec, &[String::new()]).is_err());
    }
}
