//! Value ↔ display-text conversion.

use wow_rel::types::DataType;
use wow_rel::value::Value;

/// Format a value for display in a field or grid cell.
pub fn display(v: &Value) -> String {
    v.to_string()
}

/// Format a value into a fixed-width cell: numeric types right-align,
/// everything else left-aligns; overlong text is truncated with a `…`
/// marker in the final cell.
pub fn display_cell(v: &Value, ty: DataType, width: u16) -> String {
    let width = width as usize;
    if width == 0 {
        return String::new();
    }
    let text = display(v);
    let len = text.chars().count();
    if len > width {
        let mut out: String = text.chars().take(width.saturating_sub(1)).collect();
        out.push('…');
        return out;
    }
    let pad = width - len;
    if ty.is_numeric() {
        format!("{}{}", " ".repeat(pad), text)
    } else {
        format!("{}{}", text, " ".repeat(pad))
    }
}

/// Parse user-entered text as a value of the field's type (empty → NULL).
pub fn parse(input: &str, ty: DataType) -> Result<Value, String> {
    Value::parse_as(input, ty).map_err(|_| type_hint(ty).to_string())
}

/// A user-facing hint about what a field of this type accepts.
pub fn type_hint(ty: DataType) -> &'static str {
    match ty {
        DataType::Int => "expected a whole number",
        DataType::Float => "expected a number",
        DataType::Text => "expected text",
        DataType::Bool => "expected yes/no",
        DataType::Date => "expected a date (YYYY-MM-DD)",
    }
}

/// Default field width for a type (the compiler's choice).
pub fn default_width(ty: DataType) -> u16 {
    match ty {
        DataType::Int => 10,
        DataType::Float => 12,
        DataType::Text => 20,
        DataType::Bool => 5,
        DataType::Date => 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_cell_alignment() {
        assert_eq!(display_cell(&Value::Int(42), DataType::Int, 6), "    42");
        assert_eq!(
            display_cell(&Value::text("ab"), DataType::Text, 6),
            "ab    "
        );
        assert_eq!(
            display_cell(&Value::Float(1.5), DataType::Float, 6),
            "   1.5"
        );
    }

    #[test]
    fn display_cell_truncates_with_marker() {
        assert_eq!(
            display_cell(&Value::text("abcdefgh"), DataType::Text, 5),
            "abcd…"
        );
        assert_eq!(display_cell(&Value::text("ab"), DataType::Text, 0), "");
    }

    #[test]
    fn null_displays_blank() {
        assert_eq!(display_cell(&Value::Null, DataType::Int, 4), "    ");
    }

    #[test]
    fn parse_round_trips_by_type() {
        assert_eq!(parse("7", DataType::Int), Ok(Value::Int(7)));
        assert_eq!(parse("", DataType::Int), Ok(Value::Null));
        assert_eq!(parse("1983-05-23", DataType::Date), Ok(Value::Date(4890)));
        assert_eq!(
            parse("x", DataType::Int).unwrap_err(),
            "expected a whole number"
        );
        assert_eq!(
            parse("maybe", DataType::Bool).unwrap_err(),
            "expected yes/no"
        );
    }

    #[test]
    fn default_widths_sane() {
        assert_eq!(default_width(DataType::Date), 10);
        assert!(default_width(DataType::Text) >= 10);
    }
}
