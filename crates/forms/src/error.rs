//! Errors of the forms layer.

use std::fmt;
use wow_rel::RelError;

/// Result alias for the forms layer.
pub type FormResult<T> = Result<T, FormError>;

/// Errors raised by form compilation, validation, and QBF synthesis.
#[derive(Debug)]
pub enum FormError {
    /// Underlying relational error.
    Rel(RelError),
    /// A named field does not exist on the form.
    NoSuchField(String),
    /// A field's text failed validation. The message is user-facing — it
    /// lands in the window's status bar.
    Validation {
        /// Field name.
        field: String,
        /// User-facing message.
        message: String,
    },
    /// A QBF entry could not be understood.
    BadQuery {
        /// Field name.
        field: String,
        /// User-facing message.
        message: String,
    },
}

impl fmt::Display for FormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormError::Rel(e) => write!(f, "relational engine: {e}"),
            FormError::NoSuchField(n) => write!(f, "no such field: {n}"),
            FormError::Validation { field, message } => {
                write!(f, "{field}: {message}")
            }
            FormError::BadQuery { field, message } => {
                write!(f, "{field}: {message}")
            }
        }
    }
}

impl std::error::Error for FormError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormError::Rel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for FormError {
    fn from(e: RelError) -> Self {
        FormError::Rel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_user_facing() {
        let e = FormError::Validation {
            field: "salary".into(),
            message: "expected a whole number".into(),
        };
        assert_eq!(e.to_string(), "salary: expected a whole number");
    }

    #[test]
    fn rel_conversion() {
        let e: FormError = RelError::NoSuchColumn("x".into()).into();
        assert!(matches!(e, FormError::Rel(_)));
    }
}
