//! End-to-end server tests: many clients, pushes, shutdown hygiene.

use std::time::Duration;
use wow_core::{World, WorldConfig, WowError};
use wow_net::{Client, PushKind, Server, ServerConfig};

/// A world with one employee table and a view over it.
fn seed_world(rows: usize) -> World {
    let mut world = World::new(WorldConfig::default());
    world
        .db_mut()
        .run("CREATE TABLE emp (name TEXT KEY, salary INT)")
        .unwrap();
    for i in 0..rows {
        world
            .db_mut()
            .run(&format!(
                r#"APPEND TO emp (name = "e{i:03}", salary = {})"#,
                100 + i
            ))
            .unwrap();
    }
    world
        .define_view("emps", "RANGE OF e IS emp RETRIEVE (e.name, e.salary)")
        .unwrap();
    world
}

/// Count this process's live threads (Linux: /proc/self/status).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
}

#[test]
fn eight_clients_smoke_and_clean_shutdown() {
    let threads_before = thread_count();
    let server = Server::start(seed_world(64), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let workers: Vec<_> = (0..8)
        .map(|k| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let (win, updatable, screen) = c.open_window("emps", false).unwrap();
                assert!(updatable);
                assert!(!screen.rows.is_empty());
                for _ in 0..3 {
                    c.next(win).unwrap();
                }
                // Walk to a client-specific row, then edit its salary.
                for _ in 0..k {
                    c.next(win).unwrap();
                }
                c.enter_edit(win).unwrap();
                c.set_field(win, 1, &(500 + k).to_string()).unwrap();
                match c.commit(win) {
                    Ok(_) => {}
                    Err(WowError::LockConflict { .. } | WowError::Deadlock { .. }) => {
                        c.cancel_mode(win).unwrap();
                    }
                    Err(other) => panic!("commit failed: {other}"),
                }
                c.close_window(win).unwrap();
                c.goodbye().unwrap();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let world = server.shutdown();
    assert!(
        world.session_ids().is_empty(),
        "disconnects must close their sessions"
    );
    // Every server thread must be joined: accept, and reader+writer per
    // connection. Allow a few scheduler ticks for kernel bookkeeping.
    if let Some(before) = threads_before {
        let mut after = thread_count().unwrap();
        for _ in 0..50 {
            if after <= before {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
            after = thread_count().unwrap();
        }
        assert!(
            after <= before,
            "leaked threads: {before} before, {after} after shutdown"
        );
    }
}

#[test]
fn remote_commit_pushes_refreshed_screenful() {
    let server = Server::start(seed_world(10), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut watcher = Client::connect(addr).unwrap();
    let (wwin, _, before) = watcher.open_window("emps", false).unwrap();
    assert_eq!(before.rows[0][1].to_string(), "100");

    let mut editor = Client::connect(addr).unwrap();
    let (ewin, _, _) = editor.open_window("emps", false).unwrap();
    editor.enter_edit(ewin).unwrap();
    editor.set_field(ewin, 1, "777").unwrap();
    editor.commit(ewin).unwrap();

    let push = watcher
        .wait_push(Duration::from_secs(5))
        .unwrap()
        .expect("watcher must receive a push for the remote commit");
    let wow_net::Push::WindowRefreshed {
        win,
        kind,
        generation,
        screen,
    } = push;
    assert_eq!(win, wwin);
    assert!(matches!(kind, PushKind::Delta | PushKind::Full));
    assert!(generation > 1, "refresh must advance the generation");
    assert_eq!(
        screen.rows[0][1].to_string(),
        "777",
        "pushed screenful must carry the post-commit rows"
    );
    editor.goodbye().unwrap();
    watcher.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn foreign_windows_are_invisible() {
    let server = Server::start(seed_world(4), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut a = Client::connect(addr).unwrap();
    let (win, _, _) = a.open_window("emps", false).unwrap();
    let mut b = Client::connect(addr).unwrap();
    match b.screen(win) {
        Err(WowError::NoSuchWindow(w)) => assert_eq!(w, win),
        other => panic!("foreign window access must look nonexistent, got {other:?}"),
    }
    a.goodbye().unwrap();
    b.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn garbage_bytes_get_error_then_hangup() {
    use std::io::{Read, Write};
    let server = Server::start(seed_world(2), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .unwrap();
    // The server answers with one protocol-error frame, then closes.
    let mut buf = Vec::new();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.read_to_end(&mut buf).unwrap();
    assert!(
        buf.starts_with(&wow_net::MAGIC),
        "reply must be a framed error"
    );
    let frame = wow_net::wire::read_frame(&mut buf.as_slice()).unwrap();
    match wow_net::Response::decode(&frame.payload).unwrap() {
        wow_net::Response::Error(e) => assert_eq!(e.code, wow_net::error_code::PROTOCOL),
        other => panic!("expected protocol error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped() {
    let cfg = ServerConfig {
        idle_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let server = Server::start(seed_world(2), "127.0.0.1:0", cfg).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.ping().unwrap();
    std::thread::sleep(Duration::from_millis(600));
    // The server hung up; the next call fails with a transport error.
    assert!(matches!(c.ping(), Err(WowError::Net(_))));
    server.shutdown();
}

#[test]
fn typed_errors_survive_the_wire() {
    // Frame encode/decode for every error shape is unit-tested in proto;
    // this exercises the full path against a live server with the one
    // error a single client can provoke deterministically.
    let server = Server::start(seed_world(6), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut b = Client::connect(server.local_addr()).unwrap();
    let (bwin, _, _) = b.open_window("emps", false).unwrap();
    b.enter_query(bwin).unwrap();
    b.set_field(bwin, 0, "no-such-employee").unwrap();
    let after = b.commit(bwin).unwrap();
    assert!(after.rows.is_empty(), "the query matches nothing");
    match b.delete_current(bwin) {
        Err(WowError::NoCurrentRow) => {}
        other => panic!("expected typed NoCurrentRow over the wire, got {other:?}"),
    }
    b.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn wow_connections_system_view_lists_live_clients() {
    let server = Server::start(seed_world(4), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    a.ping().unwrap();
    let (win, _, screen) = b.open_window("__wow_connections", false).unwrap();
    assert!(
        screen.rows.len() >= 2,
        "both live connections must be listed, got {}",
        screen.rows.len()
    );
    b.close_window(win).unwrap();
    a.goodbye().unwrap();
    b.goodbye().unwrap();
    server.shutdown();
}
