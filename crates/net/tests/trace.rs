//! End-to-end causal tracing: one remote commit must produce exactly one
//! connected trace tree spanning request decode, the commit, the view
//! re-queries (down to individual executor operators), and the
//! `WindowRefreshed` push frames fanned out to every other client.
//!
//! Kept in its own test binary: it turns the process-global tracer on, and
//! sharing a binary with other tests would interleave their spans into the
//! ring while this one asserts on its contents.

use std::time::Duration;
use wow_core::{World, WorldConfig};
use wow_net::{Client, Server, ServerConfig};

fn seed_world(rows: usize) -> World {
    // Full re-query propagation: every affected window refresh runs the
    // view query through the executor, so the commit's trace reaches the
    // operator spans deterministically.
    let mut world = World::new(WorldConfig {
        delta_propagation: false,
        ..WorldConfig::default()
    });
    world
        .db_mut()
        .run("CREATE TABLE emp (name TEXT KEY, salary INT)")
        .unwrap();
    for i in 0..rows {
        world
            .db_mut()
            .run(&format!(
                r#"APPEND TO emp (name = "e{i:03}", salary = {})"#,
                100 + i
            ))
            .unwrap();
    }
    world
        .define_view("emps", "RANGE OF e IS emp RETRIEVE (e.name, e.salary)")
        .unwrap();
    // A self-join view is not updatable, so its window gets a streamed
    // cursor — a refresh re-runs the view query through the executor,
    // pulling operator spans into the commit's trace.
    world
        .define_view(
            "pay_join",
            "RANGE OF a IS emp RANGE OF b IS emp \
             RETRIEVE (a.name, b.salary) WHERE a.name = b.name",
        )
        .unwrap();
    world
}

#[test]
fn one_commit_yields_one_connected_trace_tree() {
    let server = Server::start(seed_world(12), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut editor = Client::connect(addr).unwrap();
    let mut watcher_b = Client::connect(addr).unwrap();
    let mut watcher_c = Client::connect(addr).unwrap();
    assert!(
        editor.version() >= 2,
        "handshake must negotiate the traced protocol"
    );
    let (ewin, _, _) = editor.open_window("emps", false).unwrap();
    let (_bwin, _, _) = watcher_b.open_window("emps", false).unwrap();
    let (_cwin, _, _) = watcher_c.open_window("pay_join", false).unwrap();

    wow_obs::tracer().set_enabled(true);
    editor.enter_edit(ewin).unwrap();
    editor.set_field(ewin, 1, "999").unwrap();
    editor.commit(ewin).unwrap();
    let commit_trace = editor.last_trace_id();
    assert_ne!(commit_trace, 0, "v2 clients mint a trace per request");

    // Both other clients observe the commit through pushes.
    watcher_b
        .wait_push(Duration::from_secs(5))
        .unwrap()
        .expect("watcher B push");
    watcher_c
        .wait_push(Duration::from_secs(5))
        .unwrap()
        .expect("watcher C push");

    let spans = editor.fetch_trace(commit_trace).unwrap();
    wow_obs::tracer().set_enabled(false);

    assert!(
        spans.len() >= 5,
        "commit trace must span request, commit, query, operators, pushes: {spans:?}"
    );
    for s in &spans {
        assert_eq!(s.trace_id, commit_trace, "single trace id throughout");
    }
    // Exactly one root: the request span itself (the client sent parent 0).
    let roots: Vec<_> = spans.iter().filter(|s| s.parent_id == 0).collect();
    assert_eq!(roots.len(), 1, "one connected tree, got roots {roots:?}");
    assert_eq!(roots[0].op, "net_request");
    // Every non-root span's parent resolves within the same trace: the
    // tree is connected from request decode to the last push.
    for s in &spans {
        if s.parent_id != 0 {
            assert!(
                spans.iter().any(|p| p.span_id == s.parent_id),
                "dangling parent for {s:?}"
            );
        }
    }
    let ops: Vec<&str> = spans.iter().map(|s| s.op.as_str()).collect();
    for expected in ["commit", "query_exec", "exec_op"] {
        assert!(
            ops.contains(&expected),
            "trace must reach {expected}: {ops:?}"
        );
    }
    let pushes = ops.iter().filter(|o| **o == "net_push").count();
    assert!(
        pushes >= 2,
        "both watchers' push frames must be spans of the commit trace, got {pushes}"
    );

    editor.goodbye().unwrap();
    watcher_b.goodbye().unwrap();
    watcher_c.goodbye().unwrap();
    server.shutdown();
}
