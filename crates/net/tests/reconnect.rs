//! Crash and restart survival over the wire: graceful drain + reconnect,
//! and the real thing — `kill -9` of a `wow-serve` process mid-session,
//! restart from the same world directory, client resumes, and the window
//! contents equal a never-crashed control run.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use wow_core::{World, WorldConfig};
use wow_net::{Client, ReconnectPolicy, Screenful, Server, ServerConfig};
use wow_storage::fault::SplitMix64;

const VIEW_SRC: &str = "RANGE OF e IS emp RETRIEVE (e.name, e.salary)";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wow-net-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A reconnect policy tuned for tests: fast, many attempts, deterministic.
fn test_policy() -> ReconnectPolicy {
    ReconnectPolicy {
        max_attempts: 20,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(100),
        seed: 42,
    }
}

#[test]
fn backoff_schedule_is_deterministic_and_capped() {
    let policy = ReconnectPolicy {
        max_attempts: 10,
        base: Duration::from_millis(10),
        cap: Duration::from_millis(200),
        seed: 7,
    };
    let mut a = SplitMix64::new(policy.seed);
    let mut b = SplitMix64::new(policy.seed);
    for attempt in 0..12 {
        let da = policy.delay(attempt, &mut a);
        let db = policy.delay(attempt, &mut b);
        // Same seed, same schedule.
        assert_eq!(da, db, "attempt {attempt}");
        // Equal jitter around the capped exponential: the delay lives in
        // [exp/2, exp].
        let exp = (policy.base * 2u32.saturating_pow(attempt)).min(policy.cap);
        assert!(
            da >= exp / 2 && da <= exp,
            "attempt {attempt}: {da:?} vs {exp:?}"
        );
    }
    // Different seeds diverge somewhere (jitter is real).
    let mut c = SplitMix64::new(99);
    let diverges = (0..12)
        .any(|i| policy.delay(i, &mut c) != policy.delay(i, &mut SplitMix64::new(policy.seed)));
    assert!(diverges);
}

#[test]
fn reconnect_fails_cleanly_when_nobody_answers() {
    // Bind then immediately drop a listener so the port is (very likely)
    // dead, then watch the client give up after max_attempts.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let server = Server::start(
        World::new(WorldConfig::default()),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let policy = ReconnectPolicy {
        max_attempts: 3,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(4),
        seed: 1,
    };
    let err = client.reconnect_to(addr, &policy).unwrap_err();
    assert!(format!("{err}").contains("reconnect"), "{err}");
    server.shutdown();
}

#[test]
fn graceful_drain_then_reconnect_resumes_windows() {
    let dir = tmp_dir("drain");
    let world = World::open_durable(WorldConfig::default(), &dir).unwrap();
    let server = Server::start(world, "127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .quel("CREATE TABLE emp (name TEXT KEY, salary INT)")
        .unwrap();
    for i in 0..10 {
        client
            .quel(&format!(
                r#"APPEND TO emp (name = "e{i}", salary = {})"#,
                100 + i
            ))
            .unwrap();
    }
    client.define_view("emps", VIEW_SRC).unwrap();
    let (win, _, screen_before) = client.open_window("emps", false).unwrap();
    assert_eq!(screen_before.rows.len().min(10), screen_before.rows.len());

    // Drain: checkpoints the durable world, then the process would exit.
    let world = server.drain().unwrap();
    drop(world);

    // Restart from disk on a fresh port — recovery replays nothing (the
    // drain checkpointed) but the table must be fully there.
    let world2 = World::open_durable(WorldConfig::default(), &dir).unwrap();
    assert_eq!(world2.db().recovery_report().unwrap().replayed_ops, 0);
    let server2 = Server::start(world2, "127.0.0.1:0", ServerConfig::default()).unwrap();

    let report = client
        .reconnect_to(server2.local_addr(), &test_policy())
        .unwrap();
    assert_eq!(report.windows.len(), 1);
    let reopened = &report.windows[0];
    assert_eq!(reopened.old_win, win);
    assert_eq!(
        reopened.screen.rows, screen_before.rows,
        "window contents survive a drain + restart"
    );
    let new_win = report.remap(win).unwrap();

    // The resumed session is fully live: browse and write again.
    client.next(new_win).unwrap();
    client
        .quel(r#"APPEND TO emp (name = "post", salary = 1)"#)
        .unwrap();
    client.goodbye().unwrap();
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// kill -9 torture: a real server process, really killed.
// ---------------------------------------------------------------------------

struct Serve {
    child: Child,
    addr: String,
}

/// Spawn `wow-serve <dir>` and wait for its "listening" line.
fn spawn_serve(dir: &PathBuf) -> Serve {
    let mut child = Command::new(env!("CARGO_BIN_EXE_wow-serve"))
        .arg(dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn wow-serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let line = lines
        .next()
        .expect("wow-serve printed nothing")
        .expect("read wow-serve stdout");
    let addr = line
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected banner: {line}"))
        .to_string();
    Serve { child, addr }
}

/// The shared workload, phase one: schema, rows, a view, a window.
fn phase_one(client: &mut Client) -> (u32, Screenful) {
    client
        .quel("CREATE TABLE emp (name TEXT KEY, salary INT)")
        .unwrap();
    for i in 0..8 {
        client
            .quel(&format!(
                r#"APPEND TO emp (name = "e{i}", salary = {})"#,
                100 + i
            ))
            .unwrap();
    }
    client.define_view("emps", VIEW_SRC).unwrap();
    let (win, updatable, screen) = client.open_window("emps", false).unwrap();
    assert!(updatable);
    (win, screen)
}

/// Phase two, after the crash (or not, for the control): more writes,
/// then the final refreshed screen.
fn phase_two(client: &mut Client, win: u32) -> Screenful {
    for i in 8..12 {
        client
            .quel(&format!(
                r#"APPEND TO emp (name = "e{i}", salary = {})"#,
                100 + i
            ))
            .unwrap();
    }
    client.quel("RANGE OF emp IS emp").unwrap();
    client
        .quel(r#"REPLACE emp (salary = 999) WHERE emp.name = "e0""#)
        .unwrap();
    client.refresh(win).unwrap();
    client.screen(win).unwrap()
}

#[test]
fn kill_nine_mid_session_loses_no_committed_write() {
    // Control: the same workload against a server that never crashes.
    let control_dir = tmp_dir("kill9-control");
    let control_screen = {
        let world = World::open_durable(WorldConfig::default(), &control_dir).unwrap();
        let server = Server::start(world, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let (win, _) = phase_one(&mut client);
        let screen = phase_two(&mut client, win);
        client.goodbye().unwrap();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&control_dir);
        screen
    };

    // Crash run: phase one against a real wow-serve process, then SIGKILL.
    let dir = tmp_dir("kill9");
    let serve = spawn_serve(&dir);
    let mut client = Client::connect(&serve.addr).unwrap();
    let (win, _) = phase_one(&mut client);
    let mut child = serve.child;
    child.kill().expect("SIGKILL wow-serve");
    child.wait().expect("reap wow-serve");

    // The committed writes must all be on disk: open the world directly
    // first — this is the acceptance check for `World::open_durable`
    // after `kill -9`, zero lost committed writes.
    {
        let mut world = World::open_durable(WorldConfig::default(), &dir).unwrap();
        let rows = world
            .db_mut()
            .run("RANGE OF e IS emp RETRIEVE (e.name)")
            .unwrap();
        assert_eq!(
            rows.tuples.len(),
            8,
            "all eight committed inserts recovered"
        );
    }

    // Restart the server process from the same directory (new port), let
    // the client reconnect, and finish the workload.
    let serve2 = spawn_serve(&dir);
    let report = client.reconnect_to(&*serve2.addr, &test_policy()).unwrap();
    let new_win = report.remap(win).expect("window re-opened");
    assert_eq!(
        report.windows[0].screen.rows.len(),
        8.min(report.windows[0].screen.rows.len())
    );
    let screen = phase_two(&mut client, new_win);

    assert_eq!(
        screen.rows, control_screen.rows,
        "post-crash window contents equal the never-crashed control"
    );
    assert_eq!(screen.columns, control_screen.columns);

    // Graceful drain this time: ask over stdin, wait for the goodbye.
    client.goodbye().unwrap();
    let mut child2 = serve2.child;
    child2
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(b"quit\n")
        .unwrap();
    let status = child2.wait().expect("wow-serve exits after quit");
    assert!(status.success(), "drain exit status: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
