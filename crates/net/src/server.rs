//! The window server: many TCP clerks, one shared [`World`].
//!
//! ## Threading model
//!
//! One accept thread, plus **two threads per connection**: a reader that
//! decodes requests and executes them against the world, and a writer that
//! drains that connection's outbox. Responses and pushes both travel
//! through the outbox so a single thread owns the socket's write half and
//! frames can never interleave.
//!
//! Lock order, everywhere: **world → connection map → outbox**. The
//! `__wow_connections` provider runs under the world lock (`sys_sync`) and
//! takes the map then each outbox; request handling takes the world then
//! the map to route pushes — both follow the order, so no cycle exists.
//!
//! ## Push consistency
//!
//! A commit and the pushes it causes are produced under **one** world-lock
//! critical section: the handler executes the request, drains the world's
//! refresh events, and builds every pushed screenful before releasing the
//! lock. A pushed `WindowRefreshed` is therefore always a complete
//! post-commit state — no push can ever mix rows from before and after a
//! commit, because nothing else can touch the world between the commit and
//! the snapshot.
//!
//! Outboxes are bounded. A slow consumer coalesces: a queued push for a
//! window is *replaced* by a newer-generation push for the same window
//! (latest wins), and when the queue is still full the oldest push is
//! dropped. Responses are never dropped. Generations are monotonic per
//! window, so a client that ignores non-increasing generations can never
//! regress, no matter what was coalesced away.

use crate::proto::{ErrorFrame, Push, PushKind, Request, Response, Screenful, TraceSpan};
use crate::wire::{self, FrameKind, ReadError, MIN_VERSION, VERSION};
use std::collections::{BTreeMap, VecDeque};
use std::io::BufReader;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use wow_core::{ConnectionInfo, RefreshKind, SessionId, WinId, World, WowError, WowResult};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Disconnect a connection with no traffic for this long. `Ping`
    /// counts as traffic — clients keepalive with it.
    pub idle_timeout: Duration,
    /// How often blocked reads wake up to check shutdown/idle state.
    pub poll_interval: Duration,
    /// Outbox bound per connection; beyond it the oldest *push* is
    /// dropped (responses are never dropped).
    pub outbox_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            idle_timeout: Duration::from_secs(300),
            poll_interval: Duration::from_millis(50),
            outbox_capacity: 64,
        }
    }
}

/// What the writer thread sends next.
enum OutMsg {
    /// Answer to one request; never dropped, never coalesced.
    Response {
        /// Echoed request id.
        req_id: u64,
        /// Encoded `Response`.
        payload: Vec<u8>,
    },
    /// A `WindowRefreshed`; subject to coalescing and the queue bound.
    Push {
        /// The refreshed window (coalescing key).
        win: u32,
        /// Refresh generation (latest wins).
        generation: u64,
        /// The `(trace_id, span_id)` of the `NetPush` span that routed
        /// this screenful — stamped on the frame for v2 clients so the
        /// push joins the originating commit's trace tree.
        trace: Option<(u64, u64)>,
        /// Encoded `Push`.
        payload: Vec<u8>,
    },
}

/// Per-connection shared state.
struct Conn {
    id: u64,
    peer: String,
    session: Mutex<Option<SessionId>>,
    /// Protocol version negotiated in the `Hello` exchange; frames carry
    /// trace prefixes only when this reaches 2.
    version: AtomicU8,
    outbox: Mutex<VecDeque<OutMsg>>,
    wake: Condvar,
    closing: AtomicBool,
    requests: AtomicU64,
    pushes: AtomicU64,
    coalesced: AtomicU64,
    started: Instant,
}

impl Conn {
    /// Queue a message and wake the writer. Pushes coalesce per window
    /// (newest generation wins) and respect the queue bound.
    fn enqueue(&self, msg: OutMsg, capacity: usize) {
        let mut q = self.outbox.lock().expect("outbox poisoned");
        match msg {
            OutMsg::Response { .. } => q.push_back(msg),
            OutMsg::Push {
                win,
                generation,
                trace,
                payload,
            } => {
                let existing = q.iter_mut().find_map(|m| match m {
                    OutMsg::Push {
                        win: w,
                        generation: g,
                        trace: t,
                        payload: p,
                    } if *w == win => Some((g, t, p)),
                    _ => None,
                });
                if let Some((g, t, p)) = existing {
                    // Same window already queued: keep whichever screenful
                    // is newer, count the one that lost.
                    if generation > *g {
                        *g = generation;
                        *t = trace;
                        *p = payload;
                    }
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    wow_obs::metrics().add("net.coalesced", 1);
                } else {
                    if q.len() >= capacity {
                        // Full: sacrifice the oldest push (a stale screen a
                        // newer push will supersede), never a response.
                        if let Some(i) = q.iter().position(|m| matches!(m, OutMsg::Push { .. })) {
                            q.remove(i);
                            wow_obs::metrics().add("net.push_dropped", 1);
                        }
                    }
                    q.push_back(OutMsg::Push {
                        win,
                        generation,
                        trace,
                        payload,
                    });
                }
            }
        }
        drop(q);
        self.wake.notify_one();
    }

    fn start_closing(&self) {
        self.closing.store(true, Ordering::SeqCst);
        self.wake.notify_one();
    }

    fn info(&self) -> ConnectionInfo {
        let session = self.session.lock().expect("session poisoned");
        let state = if self.closing.load(Ordering::SeqCst) {
            "closing"
        } else if session.is_none() {
            "handshake"
        } else {
            "active"
        };
        ConnectionInfo {
            conn: self.id,
            session: session.map(|s| s.0).unwrap_or(0),
            peer: self.peer.clone(),
            state: state.to_string(),
            requests: self.requests.load(Ordering::Relaxed),
            pushes: self.pushes.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            queued: self.outbox.lock().expect("outbox poisoned").len() as u64,
            age_ms: self.started.elapsed().as_millis() as u64,
        }
    }
}

type ConnMap = Arc<Mutex<BTreeMap<u64, Arc<Conn>>>>;

/// State shared by every server thread.
struct Shared {
    world: Mutex<Option<World>>,
    conns: ConnMap,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A running window server. Dropping it without calling
/// [`Server::shutdown`] leaks the listener thread; tests and the examples
/// always shut down.
pub struct Server {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Take ownership of a world and serve it on `addr` (use port 0 for an
    /// ephemeral port; read it back with [`Server::local_addr`]).
    pub fn start(mut world: World, addr: &str, cfg: ServerConfig) -> WowResult<Server> {
        let listener = TcpListener::bind(addr).map_err(net_err("bind"))?;
        let local = listener.local_addr().map_err(net_err("local_addr"))?;
        let conns: ConnMap = Arc::new(Mutex::new(BTreeMap::new()));
        // The world logs refresh events for the push router, and its
        // `__wow_connections` system view reads live connection state. The
        // provider captures only the connection map — not the world — so
        // there is no ownership cycle to break on shutdown.
        world.enable_refresh_events(true);
        let conns_for_sys = Arc::clone(&conns);
        world.set_connections_provider(Some(Box::new(move || {
            let map = conns_for_sys.lock().expect("conns poisoned");
            map.values().map(|c| c.info()).collect()
        })));
        let shared = Arc::new(Shared {
            world: Mutex::new(Some(world)),
            conns,
            cfg,
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(1),
            threads: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("wow-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(net_err("spawn accept"))?;
        Ok(Server {
            shared,
            addr: local,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// How many connections are currently open.
    pub fn connection_count(&self) -> usize {
        self.shared.conns.lock().expect("conns poisoned").len()
    }

    /// Stop accepting, drain in-flight requests and outboxes, join every
    /// thread, and hand the world back. In-flight requests complete
    /// (handlers are synchronous in the reader threads); queued pushes and
    /// responses are flushed before sockets close.
    pub fn shutdown(mut self) -> World {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Ask every connection to wind down: readers notice the flag at
        // their next poll tick, writers drain and exit.
        {
            let conns = self.shared.conns.lock().expect("conns poisoned");
            for conn in conns.values() {
                conn.start_closing();
            }
        }
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .shared
            .threads
            .lock()
            .expect("threads poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        wow_obs::metrics().set("net.connections", 0);
        let mut world = self
            .shared
            .world
            .lock()
            .expect("world poisoned")
            .take()
            .expect("world already taken");
        // Return the world to ordinary embeddable shape.
        world.set_connections_provider(None);
        world.enable_refresh_events(false);
        world
    }

    /// Graceful drain for durable worlds: shut down exactly like
    /// [`Server::shutdown`], then take a durable checkpoint so the next
    /// `open_durable` replays an empty log instead of the whole epoch's
    /// WAL. On a world that was never opened durably the checkpoint step
    /// is skipped — draining an in-memory world is just a shutdown.
    ///
    /// The checkpoint happens *after* every connection has fully wound
    /// down, so it cannot race an in-flight commit and the snapshot is the
    /// true final state of the served world.
    pub fn drain(self) -> WowResult<World> {
        let mut world = self.shutdown();
        if world.db().durable_dir().is_some() {
            world.checkpoint_durable()?;
        }
        Ok(world)
    }
}

/// Build a `WowError::Net` from an io error with a phase label.
fn net_err(phase: &'static str) -> impl Fn(std::io::Error) -> WowError {
    move |e| WowError::Net(format!("{phase}: {e}"))
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(x) => x,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Frames are small and latency-sensitive; without this, responses
        // sit in Nagle's buffer waiting on the client's delayed ACK and
        // every request costs a 40 ms multiple.
        stream.set_nodelay(true).ok();
        let _span = wow_obs::span(wow_obs::Op::NetAccept);
        let id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
        let conn = Arc::new(Conn {
            id,
            peer: peer.to_string(),
            session: Mutex::new(None),
            version: AtomicU8::new(MIN_VERSION),
            outbox: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            closing: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            pushes: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            started: Instant::now(),
        });
        let n = {
            let mut conns = shared.conns.lock().expect("conns poisoned");
            conns.insert(id, Arc::clone(&conn));
            conns.len()
        };
        wow_obs::metrics().set("net.connections", n as u64);
        wow_obs::metrics().add("net.accepts", 1);
        let wstream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                shared.conns.lock().expect("conns poisoned").remove(&id);
                continue;
            }
        };
        let (rs, rc) = (Arc::clone(&shared), Arc::clone(&conn));
        let reader = std::thread::Builder::new()
            .name(format!("wow-net-r{id}"))
            .spawn(move || reader_loop(stream, rs, rc));
        let (ws, wc) = (Arc::clone(&shared), Arc::clone(&conn));
        let writer = std::thread::Builder::new()
            .name(format!("wow-net-w{id}"))
            .spawn(move || writer_loop(wstream, ws, wc));
        let mut threads = shared.threads.lock().expect("threads poisoned");
        threads.extend(reader.into_iter().chain(writer));
    }
}

/// Drain the outbox onto the socket until the connection is closing and
/// the queue is empty.
fn writer_loop(stream: TcpStream, shared: Arc<Shared>, conn: Arc<Conn>) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    loop {
        let msg = {
            let mut q = conn.outbox.lock().expect("outbox poisoned");
            loop {
                if let Some(m) = q.pop_front() {
                    break Some(m);
                }
                if conn.closing.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = conn
                    .wake
                    .wait_timeout(q, shared.cfg.poll_interval)
                    .expect("outbox poisoned");
                q = guard;
            }
        };
        let Some(msg) = msg else { break };
        let (kind, req_id, trace, payload) = match &msg {
            OutMsg::Response { req_id, payload } => (FrameKind::Response, *req_id, None, payload),
            OutMsg::Push { payload, trace, .. } => (FrameKind::Push, 0, *trace, payload),
        };
        // Trace prefixes only after both sides negotiated version 2; a v1
        // client must keep receiving byte-identical v1 frames.
        let trace = (conn.version.load(Ordering::Relaxed) >= 2)
            .then_some(trace)
            .flatten();
        if wire::write_frame_traced(&mut stream, kind, req_id, trace, payload).is_err() {
            // The peer stopped reading; abort both directions so the
            // reader unblocks too.
            conn.start_closing();
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        if matches!(msg, OutMsg::Push { .. }) {
            conn.pushes.fetch_add(1, Ordering::Relaxed);
            wow_obs::metrics().add("net.pushes", 1);
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
}

/// Read and execute requests until the peer hangs up, the idle timeout
/// fires, or the server shuts down.
fn reader_loop(stream: TcpStream, shared: Arc<Shared>, conn: Arc<Conn>) {
    let _ = stream.set_read_timeout(Some(shared.cfg.poll_interval));
    let mut reader = BufReader::new(stream);
    let mut last_activity = Instant::now();
    loop {
        if conn.closing.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let frame = match wire::read_frame(&mut reader) {
            Ok(f) => f,
            Err(e) if e.is_timeout() => {
                if last_activity.elapsed() > shared.cfg.idle_timeout {
                    break;
                }
                continue;
            }
            Err(ReadError::Wire(w)) => {
                // A malformed frame means the stream is unframeable from
                // here on: report once and hang up.
                conn.enqueue(
                    OutMsg::Response {
                        req_id: 0,
                        payload: Response::Error(ErrorFrame::protocol(w.to_string())).encode(),
                    },
                    shared.cfg.outbox_capacity,
                );
                break;
            }
            Err(_) => break,
        };
        last_activity = Instant::now();
        if frame.kind != FrameKind::Request {
            conn.enqueue(
                OutMsg::Response {
                    req_id: frame.req_id,
                    payload: Response::Error(ErrorFrame::protocol("clients send request frames"))
                        .encode(),
                },
                shared.cfg.outbox_capacity,
            );
            break;
        }
        conn.requests.fetch_add(1, Ordering::Relaxed);
        wow_obs::metrics().add("net.requests", 1);
        let goodbye = {
            // Adopt the client's trace context (v2 frames) or mint a fresh
            // trace, so everything this request does — executor operators,
            // worker-pool scans, pushes to *other* clients — joins one tree
            // rooted at this NetRequest span.
            let ctx = frame
                .trace
                .map(|(trace_id, span_id)| wow_obs::TraceContext { trace_id, span_id })
                .unwrap_or_else(wow_obs::TraceContext::mint);
            let _trace = wow_obs::install_context(Some(ctx));
            let _span = wow_obs::span(wow_obs::Op::NetRequest);
            handle_frame(&shared, &conn, frame.req_id, &frame.payload)
        };
        if goodbye {
            break;
        }
    }
    // Wind down: release the session (its locks and windows) and flush the
    // writer out.
    let session = conn.session.lock().expect("session poisoned").take();
    if let Some(sess) = session {
        let mut world = shared.world.lock().expect("world poisoned");
        if let Some(world) = world.as_mut() {
            let _ = world.close_session(sess);
        }
    }
    conn.start_closing();
    let n = {
        let mut conns = shared.conns.lock().expect("conns poisoned");
        conns.remove(&conn.id);
        conns.len()
    };
    wow_obs::metrics().set("net.connections", n as u64);
}

/// Decode, execute, respond, and route pushes for one request frame.
/// Returns true when the connection said goodbye.
fn handle_frame(shared: &Arc<Shared>, conn: &Arc<Conn>, req_id: u64, payload: &[u8]) -> bool {
    let req = match Request::decode(payload) {
        Ok(r) => r,
        Err(e) => {
            conn.enqueue(
                OutMsg::Response {
                    req_id,
                    payload: Response::Error(ErrorFrame::protocol(e.to_string())).encode(),
                },
                shared.cfg.outbox_capacity,
            );
            return false;
        }
    };
    let goodbye = matches!(req, Request::Goodbye);
    let resp = execute(shared, conn, &req);
    conn.enqueue(
        OutMsg::Response {
            req_id,
            payload: resp.encode(),
        },
        shared.cfg.outbox_capacity,
    );
    if goodbye {
        conn.start_closing();
    }
    goodbye
}

/// Execute one request under the world lock. Pushes caused by the request
/// are built and routed inside the same critical section — that single
/// fact is the consistency guarantee (see the module docs).
fn execute(shared: &Arc<Shared>, conn: &Arc<Conn>, req: &Request) -> Response {
    // Handshake is special: it runs before a session exists.
    if let Request::Hello { version } = req {
        if *version < MIN_VERSION {
            return Response::Error(ErrorFrame::protocol(format!(
                "client speaks protocol {version}, server speaks {MIN_VERSION}..={VERSION}"
            )));
        }
        // Settle on the newest version both sides understand; a newer
        // client downgrades to us, an older one keeps its own version.
        let negotiated = (*version).min(VERSION);
        // Lock order is world → session; check-then-set is race-free here
        // because only this connection's single reader thread says hello.
        if conn.session.lock().expect("session poisoned").is_some() {
            return Response::Error(ErrorFrame::protocol("already said hello"));
        }
        let mut world = shared.world.lock().expect("world poisoned");
        let Some(world) = world.as_mut() else {
            return Response::Error(ErrorFrame::protocol("server is shutting down"));
        };
        let sess = world.open_session();
        *conn.session.lock().expect("session poisoned") = Some(sess);
        conn.version.store(negotiated, Ordering::SeqCst);
        return Response::HelloOk {
            session: sess.0,
            version: negotiated,
        };
    }
    if matches!(req, Request::Ping) {
        return Response::Pong;
    }
    if matches!(req, Request::Goodbye) {
        return Response::Bye;
    }
    // Admin requests need no session: they read observability state, not
    // the clerk's windows.
    if matches!(req, Request::MetricsDump) {
        // Refresh the world-derived gauges so the dump is current, then
        // render the registry.
        let mut world = shared.world.lock().expect("world poisoned");
        if let Some(world) = world.as_mut() {
            world.export_metrics();
        }
        drop(world);
        return Response::Metrics {
            text: wow_obs::prometheus(&wow_obs::metrics().snapshot()),
        };
    }
    if let Request::FetchTrace { trace_id } = req {
        let spans = wow_obs::tracer()
            .trace_spans(*trace_id)
            .into_iter()
            .map(|s| TraceSpan {
                trace_id: s.trace_id,
                span_id: s.span_id,
                parent_id: s.parent_id,
                op: s.op.name().to_string(),
                start_us: s.start_us,
                dur_ns: s.dur_ns,
                arg: s.arg,
            })
            .collect();
        return Response::Trace { spans };
    }
    let Some(sess) = *conn.session.lock().expect("session poisoned") else {
        return Response::Error(ErrorFrame::protocol("say hello first"));
    };
    let mut world_guard = shared.world.lock().expect("world poisoned");
    let Some(world) = world_guard.as_mut() else {
        return Response::Error(ErrorFrame::protocol("server is shutting down"));
    };
    // A session may only operate on its own windows; a foreign window id
    // is indistinguishable from a nonexistent one.
    if let Some(win) = req.target_window() {
        match world.window(win) {
            Ok(w) if w.session != sess => {
                return Response::Error(ErrorFrame::from_wow(&WowError::NoSuchWindow(win.0)))
            }
            Err(e) => return Response::Error(ErrorFrame::from_wow(&e)),
            Ok(_) => {}
        }
    }
    let result = run_request(world, sess, req);
    // Route refresh events to their owners while still holding the world
    // lock: every pushed screenful is a pure post-request state.
    let events = world.take_refresh_events();
    if !events.is_empty() {
        route_pushes(shared, world, conn, &result, events);
    }
    match result {
        Ok(resp) => resp,
        Err(e) => Response::Error(ErrorFrame::from_wow(&e)),
    }
}

/// The request → world-call table.
fn run_request(world: &mut World, sess: SessionId, req: &Request) -> WowResult<Response> {
    let screen = |world: &World, win: WinId, moved: bool| -> WowResult<Response> {
        let w = world.window(win)?;
        Ok(Response::Screen {
            win: win.0,
            generation: w.generation,
            moved,
            screen: screenful_of(world, win)?,
        })
    };
    match req {
        Request::Hello { .. }
        | Request::Ping
        | Request::Goodbye
        | Request::MetricsDump
        | Request::FetchTrace { .. } => {
            unreachable!("handled before dispatch")
        }
        Request::DefineView { name, src } => {
            world.define_view(name, src)?;
            Ok(Response::Ack)
        }
        Request::OpenWindow { view, grid } => {
            let style = if *grid {
                wow_core::WindowStyle::Grid
            } else {
                wow_core::WindowStyle::Form
            };
            let win = world.open_window_styled(sess, view, None, style)?;
            let w = world.window(win)?;
            Ok(Response::WindowOpened {
                win: win.0,
                updatable: w.is_updatable(),
                generation: w.generation,
                screen: screenful_of(world, win)?,
            })
        }
        Request::CloseWindow { win } => {
            world.close_window(WinId(*win))?;
            Ok(Response::Ack)
        }
        Request::BrowseNext { win } => {
            let moved = world.browse_next(WinId(*win))?;
            screen(world, WinId(*win), moved)
        }
        Request::BrowsePrev { win } => {
            let moved = world.browse_prev(WinId(*win))?;
            screen(world, WinId(*win), moved)
        }
        Request::PageNext { win } => {
            let moved = world.browse_next_page(WinId(*win))?;
            screen(world, WinId(*win), moved)
        }
        Request::PagePrev { win } => {
            let moved = world.browse_prev_page(WinId(*win))?;
            screen(world, WinId(*win), moved)
        }
        Request::EnterEdit { win } => {
            world.enter_edit(WinId(*win))?;
            screen(world, WinId(*win), false)
        }
        Request::EnterInsert { win } => {
            world.enter_insert(WinId(*win))?;
            screen(world, WinId(*win), false)
        }
        Request::EnterQuery { win } => {
            world.enter_query(WinId(*win))?;
            screen(world, WinId(*win), false)
        }
        Request::SetField { win, field, text } => {
            let w = world.window_mut(WinId(*win))?;
            let nfields = w.form.spec.fields.len();
            if *field as usize >= nfields {
                return Err(WowError::Net(format!(
                    "field {field} out of range (form has {nfields})"
                )));
            }
            w.form.set_text(*field as usize, text);
            Ok(Response::Ack)
        }
        Request::Commit { win } => {
            world.commit(WinId(*win))?;
            screen(world, WinId(*win), false)
        }
        Request::CancelMode { win } => {
            world.cancel_mode(WinId(*win))?;
            screen(world, WinId(*win), false)
        }
        Request::ClearQuery { win } => {
            world.clear_query(WinId(*win))?;
            screen(world, WinId(*win), false)
        }
        Request::DeleteCurrent { win } => {
            world.delete_current(WinId(*win))?;
            screen(world, WinId(*win), false)
        }
        Request::Undo => {
            world.undo_last(sess)?;
            Ok(Response::Ack)
        }
        Request::Refresh { win } => {
            world.refresh_window(WinId(*win))?;
            screen(world, WinId(*win), false)
        }
        Request::Quel { src } => {
            let rows = world.db_mut().run(src).map_err(WowError::from)?;
            // Raw QUEL bypasses the per-window commit path, so windows get
            // no deltas; if the statement could have written, re-run every
            // window's query so remote viewers see the change.
            if quel_writes(src) {
                world.refresh_all_windows()?;
            }
            Ok(Response::Rows {
                columns: rows.schema.columns.iter().map(|c| c.name.clone()).collect(),
                rows: rows.tuples.into_iter().map(|t| t.values).collect(),
            })
        }
        Request::GetScreen { win } => screen(world, WinId(*win), false),
    }
}

/// Whether a QUEL program can change stored data (conservative keyword
/// scan; false positives only cost a refresh).
fn quel_writes(src: &str) -> bool {
    let upper = src.to_ascii_uppercase();
    ["APPEND", "REPLACE", "DELETE", "CREATE", "DESTROY", "DROP"]
        .iter()
        .any(|kw| upper.contains(kw))
}

/// Deliver refresh events as `WindowRefreshed` pushes to the connections
/// whose sessions own the refreshed windows. Runs under the world lock.
fn route_pushes(
    shared: &Arc<Shared>,
    world: &World,
    origin: &Arc<Conn>,
    result: &WowResult<Response>,
    events: Vec<wow_core::RefreshEvent>,
) {
    // The response already carries the target window's screen when the
    // request succeeded with a Screen — don't also push it.
    let carried: Option<WinId> = match result {
        Ok(Response::Screen { win, .. }) | Ok(Response::WindowOpened { win, .. }) => {
            Some(WinId(*win))
        }
        _ => None,
    };
    let conns = shared.conns.lock().expect("conns poisoned");
    for ev in events {
        // The NetPush span parents to the NetRequest (installed by the
        // reader loop) that caused this refresh; its context is stamped on
        // the outgoing frame so the receiving client can cite the same
        // tree. One span per delivered screenful.
        let mut span = wow_obs::span(wow_obs::Op::NetPush);
        span.arg(ev.win.0 as u64);
        let push_ctx = span.context();
        let target = conns
            .values()
            .find(|c| *c.session.lock().expect("session poisoned") == Some(ev.session));
        let Some(target) = target else { continue };
        if target.id == origin.id && carried == Some(ev.win) {
            continue;
        }
        let Ok(screen) = screenful_of(world, ev.win) else {
            continue;
        };
        let kind = match ev.kind {
            RefreshKind::Delta => PushKind::Delta,
            _ => PushKind::Full,
        };
        let payload = Push::WindowRefreshed {
            win: ev.win.0,
            kind,
            generation: ev.generation,
            screen,
        }
        .encode();
        target.enqueue(
            OutMsg::Push {
                win: ev.win.0,
                generation: ev.generation,
                trace: push_ctx.map(|c| (c.trace_id, c.span_id)),
                payload,
            },
            shared.cfg.outbox_capacity,
        );
    }
}

/// Snapshot a window's visible state. Public because it is the server's
/// single source of truth for what a remote clerk sees — the N-client
/// equivalence suite reuses it to render the single-process replay into
/// the same comparison currency.
pub fn screenful_of(world: &World, win: WinId) -> WowResult<Screenful> {
    let w = world.window(win)?;
    Ok(Screenful {
        columns: w.schema.columns.iter().map(|c| c.name.clone()).collect(),
        rows: w
            .cursor
            .page_rows()
            .into_iter()
            .map(|(_, t)| t.values)
            .collect(),
        current: w
            .cursor
            .current_row()
            .map(|_| w.cursor.pos_in_page() as u16),
        position: w.cursor.position().map(|p| p as u64),
        total: w.cursor.known_len().map(|n| n as u64),
        mode: w.mode.name().to_string(),
        stale: w.stale,
    })
}
