//! Framing and payload primitives.
//!
//! Every message on the wire is one length-prefixed frame:
//!
//! ```text
//! offset  size  field
//!      0     4  magic           b"WOWP"
//!      4     1  protocol version (1 or 2)
//!      5     1  frame kind       (0 request, 1 response, 2 push)
//!      6     1  flags            (v1: must be 0; v2: bit0 = trace prefix)
//!      7     1  reserved         (must be 0)
//!      8     8  request id, LE   (echoed in the response; 0 for pushes)
//!     16     4  payload length, LE  (≤ MAX_PAYLOAD)
//!     20     n  payload
//! ```
//!
//! Version 2 adds causal-trace propagation: when header byte 6 has
//! [`FLAG_TRACE`] set, the first [`TRACE_PREFIX_LEN`] payload bytes are a
//! trace context — `trace_id` then parent `span_id`, both `u64` LE — which
//! the reader strips into [`Frame::trace`]. A v1 frame is byte-identical
//! to what this crate always produced, and [`write_frame`] still emits it,
//! so an old peer never sees a byte it cannot parse unless it negotiated
//! version 2 in the `Hello` exchange.
//!
//! All integers are little-endian. The decoder is written to survive a
//! hostile peer: every read is bounds-checked, payload lengths are capped
//! at [`MAX_PAYLOAD`] *before* any allocation, string lengths are checked
//! against the bytes actually remaining, and a payload with trailing bytes
//! after its message is rejected. Garbage therefore produces a
//! [`WireError`], never a panic or an unbounded allocation — exercised by
//! the mutation tests in `proto`.

use std::io::{Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"WOWP";

/// Newest protocol version this build speaks. Version 2 adds the optional
/// per-frame trace prefix; the `Hello` exchange negotiates down to the
/// highest version both sides support.
pub const VERSION: u8 = 2;

/// Oldest protocol version this build still accepts.
pub const MIN_VERSION: u8 = 1;

/// Fixed frame-header size.
pub const HEADER_LEN: usize = 20;

/// Header flag (byte 6, v2 only): the payload starts with a trace prefix.
pub const FLAG_TRACE: u8 = 1;

/// Size of the v2 trace prefix: `trace_id` + parent `span_id`, `u64` LE.
pub const TRACE_PREFIX_LEN: usize = 16;

/// Hard cap on a frame payload. Larger lengths are rejected before any
/// buffer is allocated; honest payloads (screenfuls, QUEL results) are
/// kilobytes.
pub const MAX_PAYLOAD: usize = 4 << 20;

/// What kind of frame this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server, carries a request id the response will echo.
    Request = 0,
    /// Server → client, answers exactly one request.
    Response = 1,
    /// Server → client, unsolicited (`WindowRefreshed`); request id 0.
    Push = 2,
}

impl FrameKind {
    fn from_u8(b: u8) -> Result<FrameKind, WireError> {
        match b {
            0 => Ok(FrameKind::Request),
            1 => Ok(FrameKind::Response),
            2 => Ok(FrameKind::Push),
            other => Err(WireError::BadKind(other)),
        }
    }
}

/// One decoded frame: header fields plus the raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Request / response / push.
    pub kind: FrameKind,
    /// Request id (0 for pushes).
    pub req_id: u64,
    /// Trace context carried by a v2 frame: `(trace_id, parent_span_id)`.
    /// `None` for v1 frames and v2 frames without [`FLAG_TRACE`].
    pub trace: Option<(u64, u64)>,
    /// The message payload (decode with `proto`), trace prefix stripped.
    pub payload: Vec<u8>,
}

/// A malformed frame or payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Reserved header bytes were non-zero.
    BadReserved,
    /// Payload length exceeded [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload ended before the message did.
    Truncated {
        /// Bytes the decoder needed.
        wanted: usize,
        /// Bytes that were left.
        got: usize,
    },
    /// A message or value tag the decoder does not know.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Bytes remained after the message was fully decoded.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => {
                write!(
                    f,
                    "protocol version {v} (this build speaks {MIN_VERSION}..={VERSION})"
                )
            }
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadReserved => write!(f, "reserved header bytes set"),
            WireError::Oversized(n) => {
                write!(f, "payload of {n} bytes exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::Truncated { wanted, got } => {
                write!(f, "truncated payload: wanted {wanted} bytes, {got} left")
            }
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for wow_core::WowError {
    fn from(e: WireError) -> Self {
        wow_core::WowError::Net(e.to_string())
    }
}

/// A frame-read failure: transport errors (timeouts, resets, EOF) are kept
/// apart from protocol violations so the server can treat a timeout as
/// "poll again" but a violation as "hang up".
#[derive(Debug)]
pub enum ReadError {
    /// The underlying socket failed; `WouldBlock`/`TimedOut` mean the read
    /// timeout elapsed with no frame started.
    Io(std::io::Error),
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// A frame started but its remaining bytes never arrived: the peer
    /// stalled mid-frame past the retry budget. Unlike a timeout before
    /// the first byte (poll again), the stream is now mid-frame and
    /// unrecoverable — hang up.
    Stalled,
    /// The bytes received were not a valid frame.
    Wire(WireError),
}

impl ReadError {
    /// Whether this is a read-timeout (no data yet — poll again).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ReadError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "read failed: {e}"),
            ReadError::Eof => write!(f, "connection closed"),
            ReadError::Stalled => write!(f, "peer stalled mid-frame"),
            ReadError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl From<ReadError> for wow_core::WowError {
    fn from(e: ReadError) -> Self {
        wow_core::WowError::Net(e.to_string())
    }
}

/// Write one v1 frame — byte-identical to every earlier release, safe to
/// send before version negotiation completes or to a v1 peer.
pub fn write_frame(
    w: &mut impl Write,
    kind: FrameKind,
    req_id: u64,
    payload: &[u8],
) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4] = MIN_VERSION;
    header[5] = kind as u8;
    header[8..16].copy_from_slice(&req_id.to_le_bytes());
    header[16..20].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Write one frame carrying a trace context `(trace_id, parent_span_id)`.
/// With a trace this emits a v2 frame with [`FLAG_TRACE`] and the 16-byte
/// prefix; without one it falls back to the plain v1 encoding, so callers
/// can use it unconditionally once version 2 is negotiated.
pub fn write_frame_traced(
    w: &mut impl Write,
    kind: FrameKind,
    req_id: u64,
    trace: Option<(u64, u64)>,
    payload: &[u8],
) -> std::io::Result<()> {
    let Some((trace_id, parent_id)) = trace else {
        return write_frame(w, kind, req_id, payload);
    };
    debug_assert!(payload.len() + TRACE_PREFIX_LEN <= MAX_PAYLOAD);
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4] = VERSION;
    header[5] = kind as u8;
    header[6] = FLAG_TRACE;
    header[8..16].copy_from_slice(&req_id.to_le_bytes());
    let len = (payload.len() + TRACE_PREFIX_LEN) as u32;
    header[16..20].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&trace_id.to_le_bytes())?;
    w.write_all(&parent_id.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Distinguishes a clean EOF *between* frames (peer hung
/// up) from one *inside* a frame (truncation).
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ReadError> {
    let mut header = [0u8; HEADER_LEN];
    // First byte separately: EOF here is a clean close, not an error.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(ReadError::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    header[0] = first[0];
    read_exact(r, &mut header[1..])?;
    if header[0..4] != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&header[0..4]);
        return Err(ReadError::Wire(WireError::BadMagic(m)));
    }
    let version = header[4];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(ReadError::Wire(WireError::BadVersion(version)));
    }
    let kind = FrameKind::from_u8(header[5]).map_err(ReadError::Wire)?;
    // v1 reserves both bytes; v2 turns byte 6 into a flags field but every
    // undefined bit must still be zero so future flags fail loudly.
    let flags = header[6];
    let known = if version >= 2 { FLAG_TRACE } else { 0 };
    if flags & !known != 0 || header[7] != 0 {
        return Err(ReadError::Wire(WireError::BadReserved));
    }
    let req_id = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
    if len as usize > MAX_PAYLOAD {
        return Err(ReadError::Wire(WireError::Oversized(len)));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact(r, &mut payload)?;
    let trace = if flags & FLAG_TRACE != 0 {
        if payload.len() < TRACE_PREFIX_LEN {
            return Err(ReadError::Wire(WireError::Truncated {
                wanted: TRACE_PREFIX_LEN,
                got: payload.len(),
            }));
        }
        let trace_id = u64::from_le_bytes(payload[0..8].try_into().expect("8"));
        let parent_id = u64::from_le_bytes(payload[8..16].try_into().expect("8"));
        payload.drain(0..TRACE_PREFIX_LEN);
        Some((trace_id, parent_id))
    } else {
        None
    };
    Ok(Frame {
        kind,
        req_id,
        trace,
        payload,
    })
}

/// `read_exact` that maps an early EOF to a truncation error (the frame
/// header promised more bytes than arrived). A read timeout here means we
/// are *mid-frame* — discarding the partial bytes would desynchronise the
/// stream — so timeouts are retried; a peer that stalls past the retry
/// budget gets [`ReadError::Stalled`] and the caller hangs up.
fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ReadError> {
    let mut filled = 0;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(ReadError::Wire(WireError::Truncated {
                    wanted: buf.len(),
                    got: filled,
                }))
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                stalls += 1;
                if stalls > 200 {
                    return Err(ReadError::Stalled);
                }
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    Ok(())
}

// -- Payload primitives -------------------------------------------------------

/// Append-only payload builder.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    pub fn new() -> PayloadWriter {
        PayloadWriter::default()
    }

    /// Finish and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append one tagged [`Value`](wow_rel::value::Value).
    pub fn value(&mut self, v: &wow_rel::value::Value) {
        use wow_rel::value::Value;
        match v {
            Value::Null => self.u8(0),
            Value::Int(i) => {
                self.u8(1);
                self.i64(*i);
            }
            Value::Float(f) => {
                self.u8(2);
                self.f64(*f);
            }
            Value::Text(s) => {
                self.u8(3);
                self.str(s);
            }
            Value::Bool(b) => {
                self.u8(4);
                self.bool(*b);
            }
            Value::Date(d) => {
                self.u8(5);
                self.i64(*d as i64);
            }
        }
    }

    /// Append a row: a `u16` arity then each value.
    pub fn row(&mut self, values: &[wow_rel::value::Value]) {
        self.u16(values.len() as u16);
        for v in values {
            self.value(v);
        }
    }
}

/// Bounds-checked payload reader.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> PayloadReader<'a> {
        PayloadReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless every byte was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                wanted: n,
                got: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8"),
        )))
    }

    /// Read a bool byte (anything non-zero is true).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    /// Read a length-prefixed string. The length is validated against the
    /// bytes actually remaining *before* any copy, so a hostile length
    /// cannot trigger a large allocation.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::Truncated {
                wanted: len,
                got: self.remaining(),
            });
        }
        std::str::from_utf8(self.take(len)?)
            .map(str::to_string)
            .map_err(|_| WireError::BadUtf8)
    }

    /// Read one tagged value.
    pub fn value(&mut self) -> Result<wow_rel::value::Value, WireError> {
        use wow_rel::value::Value;
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Float(self.f64()?)),
            3 => Ok(Value::Text(self.str()?)),
            4 => Ok(Value::Bool(self.bool()?)),
            5 => Ok(Value::Date(self.i64()? as i32)),
            tag => Err(WireError::BadTag { what: "value", tag }),
        }
    }

    /// Read a row written by [`PayloadWriter::row`].
    pub fn row(&mut self) -> Result<Vec<wow_rel::value::Value>, WireError> {
        let n = self.u16()? as usize;
        // Each value is at least one tag byte; reject arities the payload
        // cannot possibly hold before reserving anything.
        if n > self.remaining() {
            return Err(WireError::Truncated {
                wanted: n,
                got: self.remaining(),
            });
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(self.value()?);
        }
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wow_rel::value::Value;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, 42, b"hello").unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame.kind, FrameKind::Request);
        assert_eq!(frame.req_id, 42);
        assert_eq!(frame.trace, None);
        assert_eq!(frame.payload, b"hello");
        assert_eq!(buf[4], MIN_VERSION, "plain frames stay v1 on the wire");
    }

    #[test]
    fn traced_frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame_traced(&mut buf, FrameKind::Push, 7, Some((0xAB, 0xCD)), b"body").unwrap();
        assert_eq!(buf[4], VERSION);
        assert_eq!(buf[6], FLAG_TRACE);
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame.kind, FrameKind::Push);
        assert_eq!(frame.req_id, 7);
        assert_eq!(frame.trace, Some((0xAB, 0xCD)));
        assert_eq!(frame.payload, b"body", "prefix is stripped from payload");
    }

    #[test]
    fn traceless_traced_write_is_byte_identical_to_v1() {
        let mut plain = Vec::new();
        write_frame(&mut plain, FrameKind::Response, 3, b"x").unwrap();
        let mut traced = Vec::new();
        write_frame_traced(&mut traced, FrameKind::Response, 3, None, b"x").unwrap();
        assert_eq!(plain, traced);
    }

    #[test]
    fn v2_rejects_unknown_flags_and_short_trace_prefix() {
        let mut buf = Vec::new();
        write_frame_traced(&mut buf, FrameKind::Request, 1, Some((9, 9)), b"").unwrap();
        // Any flag bit beyond FLAG_TRACE must be refused even on v2.
        let mut bad_flags = buf.clone();
        bad_flags[6] = FLAG_TRACE | 0x80;
        assert!(matches!(
            read_frame(&mut bad_flags.as_slice()),
            Err(ReadError::Wire(WireError::BadReserved))
        ));
        // A trace flag on a payload too short for the prefix is truncation.
        let mut short = buf.clone();
        short[16..20].copy_from_slice(&8u32.to_le_bytes());
        short.truncate(HEADER_LEN + 8);
        assert!(matches!(
            read_frame(&mut short.as_slice()),
            Err(ReadError::Wire(WireError::Truncated { .. }))
        ));
        // A v1 frame may not carry the trace flag at all.
        let mut v1 = Vec::new();
        write_frame(&mut v1, FrameKind::Request, 1, b"").unwrap();
        v1[6] = FLAG_TRACE;
        assert!(matches!(
            read_frame(&mut v1.as_slice()),
            Err(ReadError::Wire(WireError::BadReserved))
        ));
    }

    #[test]
    fn eof_between_frames_is_clean() {
        let empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut { empty }), Err(ReadError::Eof)));
    }

    #[test]
    fn truncated_header_and_payload_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Push, 0, b"abcdef").unwrap();
        for cut in 1..buf.len() {
            let r = read_frame(&mut &buf[..cut]);
            assert!(
                matches!(r, Err(ReadError::Wire(WireError::Truncated { .. }))),
                "cut at {cut} must be a truncation, got {r:?}"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, 1, b"x").unwrap();
        buf[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ReadError::Wire(WireError::Oversized(_)))
        ));
    }

    #[test]
    fn bad_magic_version_kind_reserved() {
        let good = {
            let mut buf = Vec::new();
            write_frame(&mut buf, FrameKind::Request, 1, b"").unwrap();
            buf
        };
        type Expect = fn(&WireError) -> bool;
        let cases: [(usize, Expect); 4] = [
            (0, |e| matches!(e, WireError::BadMagic(_))),
            (4, |e| matches!(e, WireError::BadVersion(_))),
            (5, |e| matches!(e, WireError::BadKind(_))),
            (6, |e| matches!(e, WireError::BadReserved)),
        ];
        for (byte, expect) in cases {
            let mut buf = good.clone();
            buf[byte] = 0xEE;
            match read_frame(&mut buf.as_slice()) {
                Err(ReadError::Wire(w)) => assert!(expect(&w), "byte {byte}: {w:?}"),
                other => panic!("byte {byte}: expected wire error, got {other:?}"),
            }
        }
    }

    #[test]
    fn value_roundtrip() {
        let values = vec![
            Value::Null,
            Value::Int(-7),
            Value::Float(2.5),
            Value::Text("naïve\0text".into()),
            Value::Bool(true),
            Value::Date(19000),
        ];
        let mut w = PayloadWriter::new();
        w.row(&values);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        let back = r.row().unwrap();
        r.finish().unwrap();
        assert_eq!(format!("{values:?}"), format!("{back:?}"));
    }

    #[test]
    fn hostile_string_length_is_bounded() {
        let mut w = PayloadWriter::new();
        w.u32(u32::MAX); // claims 4 GiB of string
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert!(matches!(r.str(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = PayloadWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(WireError::TrailingBytes(1))));
    }
}
