//! A blocking client for the window server.
//!
//! One call per request: [`Client`] writes a frame, then reads until the
//! matching response arrives. Push frames that arrive in between are
//! stashed and handed out by [`Client::poll_push`] / [`Client::wait_push`],
//! which also filter **stale generations**: a push whose generation does
//! not exceed the last one seen for its window is discarded, so a caller
//! that only consumes these APIs can never observe a window going
//! backwards in time.

use crate::proto::{Push, Request, Response, Screenful, TraceSpan};
use crate::wire::{self, FrameKind, ReadError, MIN_VERSION, VERSION};
use std::collections::{BTreeMap, VecDeque};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use wow_core::{WowError, WowResult};

/// A connected, handshaken session with a window server.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_req: u64,
    session: u32,
    /// Protocol version settled in the handshake; trace contexts are
    /// minted and attached to requests only at ≥ 2.
    version: u8,
    /// The trace id minted for the most recent request (0 before any).
    last_trace: u64,
    /// Pushes that arrived while waiting for a response.
    stash: VecDeque<Push>,
    /// Highest generation seen per window; lower-or-equal pushes drop.
    seen_gen: BTreeMap<u32, u64>,
}

impl Client {
    /// Connect and shake hands.
    pub fn connect(addr: impl ToSocketAddrs) -> WowResult<Client> {
        let stream = TcpStream::connect(addr).map_err(io_err("connect"))?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().map_err(io_err("clone"))?);
        let mut client = Client {
            writer: stream,
            reader,
            next_req: 1,
            session: 0,
            version: MIN_VERSION,
            last_trace: 0,
            stash: VecDeque::new(),
            seen_gen: BTreeMap::new(),
        };
        match client.call(&Request::Hello { version: VERSION })? {
            Response::HelloOk { session, version } => {
                client.session = session;
                client.version = version.min(VERSION);
                Ok(client)
            }
            other => Err(WowError::Net(format!("bad handshake reply: {other:?}"))),
        }
    }

    /// The server-side session id backing this connection.
    pub fn session(&self) -> u32 {
        self.session
    }

    /// The protocol version negotiated with the server.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The trace id this client stamped on its most recent request (0
    /// before any traced request). Feed it to [`Client::fetch_trace`] to
    /// pull the request's whole span tree back from the server.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace
    }

    /// Send one request and block for its response. Pushes received while
    /// waiting are stashed for [`Client::poll_push`]. On a v2 connection
    /// every request carries a freshly minted trace id, so the server's
    /// whole handling of it assembles into one retrievable tree.
    pub fn call(&mut self, req: &Request) -> WowResult<Response> {
        let id = self.next_req;
        self.next_req += 1;
        let trace = (self.version >= 2).then(|| {
            self.last_trace = wow_obs::fresh_trace_id();
            (self.last_trace, 0)
        });
        wire::write_frame_traced(
            &mut self.writer,
            FrameKind::Request,
            id,
            trace,
            &req.encode(),
        )
        .map_err(io_err("send"))?;
        // No read timeout while a response is owed: the server always
        // answers every request (that is the protocol's contract).
        self.reader
            .get_ref()
            .set_read_timeout(None)
            .map_err(io_err("timeout"))?;
        loop {
            let frame = wire::read_frame(&mut self.reader).map_err(read_err)?;
            match frame.kind {
                FrameKind::Push => self.stash_push(&frame.payload)?,
                FrameKind::Response => {
                    if frame.req_id != id {
                        return Err(WowError::Net(format!(
                            "response for request {} while waiting for {id}",
                            frame.req_id
                        )));
                    }
                    let resp = Response::decode(&frame.payload).map_err(WowError::from)?;
                    if let Response::Error(e) = resp {
                        return Err(e.into_wow());
                    }
                    return Ok(resp);
                }
                FrameKind::Request => {
                    return Err(WowError::Net("server sent a request frame".into()))
                }
            }
        }
    }

    fn stash_push(&mut self, payload: &[u8]) -> WowResult<()> {
        let push = Push::decode(payload).map_err(WowError::from)?;
        let Push::WindowRefreshed {
            win, generation, ..
        } = &push;
        // Generation gate: only strictly newer screenfuls are kept.
        let seen = self.seen_gen.entry(*win).or_insert(0);
        if *generation <= *seen {
            return Ok(());
        }
        *seen = *generation;
        // A newer push for the same window supersedes a stashed one.
        self.stash.retain(|p| {
            let Push::WindowRefreshed { win: w, .. } = p;
            w != win
        });
        self.stash.push_back(push);
        Ok(())
    }

    /// Take one stashed push, if any, without touching the socket.
    pub fn take_push(&mut self) -> Option<Push> {
        self.stash.pop_front()
    }

    /// Drain the socket without blocking, then take one stashed push.
    pub fn poll_push(&mut self) -> WowResult<Option<Push>> {
        self.drain_socket(Duration::from_millis(1))?;
        Ok(self.stash.pop_front())
    }

    /// Block up to `timeout` for a push.
    pub fn wait_push(&mut self, timeout: Duration) -> WowResult<Option<Push>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(p) = self.stash.pop_front() {
                return Ok(Some(p));
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(None);
            }
            self.drain_socket(left.min(Duration::from_millis(20)))?;
        }
    }

    /// Read frames until one push is stashed or `window` passes with the
    /// socket quiet. Reading exactly one per call matters: under a steady
    /// push stream, "keep reading while frames arrive" never goes quiet, so
    /// the stash's same-window supersession would silently coalesce every
    /// push into the newest one and the caller would see nothing until the
    /// stream paused. Later frames stay buffered for the next call.
    fn drain_socket(&mut self, window: Duration) -> WowResult<()> {
        self.reader
            .get_ref()
            .set_read_timeout(Some(window))
            .map_err(io_err("timeout"))?;
        match wire::read_frame(&mut self.reader) {
            Ok(frame) if frame.kind == FrameKind::Push => self.stash_push(&frame.payload),
            Ok(frame) => Err(WowError::Net(format!(
                "unsolicited {:?} frame for request {}",
                frame.kind, frame.req_id
            ))),
            Err(e) if e.is_timeout() => Ok(()),
            Err(ReadError::Eof) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Highest refresh generation seen for a window (0 if none).
    pub fn generation_of(&self, win: u32) -> u64 {
        self.seen_gen.get(&win).copied().unwrap_or(0)
    }

    /// Record a generation learned from a response (`Screen` /
    /// `WindowOpened`) so later stale pushes are filtered against it.
    pub fn note_generation(&mut self, win: u32, generation: u64) {
        let seen = self.seen_gen.entry(win).or_insert(0);
        if generation > *seen {
            *seen = generation;
        }
    }

    // -- Typed wrappers (the clerk loop) ----------------------------------------

    /// Keepalive round-trip.
    pub fn ping(&mut self) -> WowResult<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Define a view.
    pub fn define_view(&mut self, name: &str, src: &str) -> WowResult<()> {
        match self.call(&Request::DefineView {
            name: name.into(),
            src: src.into(),
        })? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Open a window; returns `(window id, updatable, initial screen)`.
    pub fn open_window(&mut self, view: &str, grid: bool) -> WowResult<(u32, bool, Screenful)> {
        match self.call(&Request::OpenWindow {
            view: view.into(),
            grid,
        })? {
            Response::WindowOpened {
                win,
                updatable,
                generation,
                screen,
            } => {
                self.note_generation(win, generation);
                Ok((win, updatable, screen))
            }
            other => Err(unexpected("WindowOpened", &other)),
        }
    }

    /// Close a window.
    pub fn close_window(&mut self, win: u32) -> WowResult<()> {
        match self.call(&Request::CloseWindow { win })? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    fn screen_call(&mut self, req: Request) -> WowResult<(bool, Screenful)> {
        match self.call(&req)? {
            Response::Screen {
                win,
                generation,
                moved,
                screen,
            } => {
                self.note_generation(win, generation);
                Ok((moved, screen))
            }
            other => Err(unexpected("Screen", &other)),
        }
    }

    /// Advance one row; returns `(moved, screen)`.
    pub fn next(&mut self, win: u32) -> WowResult<(bool, Screenful)> {
        self.screen_call(Request::BrowseNext { win })
    }

    /// Step back one row.
    pub fn prev(&mut self, win: u32) -> WowResult<(bool, Screenful)> {
        self.screen_call(Request::BrowsePrev { win })
    }

    /// Page forward.
    pub fn next_page(&mut self, win: u32) -> WowResult<(bool, Screenful)> {
        self.screen_call(Request::PageNext { win })
    }

    /// Page backward.
    pub fn prev_page(&mut self, win: u32) -> WowResult<(bool, Screenful)> {
        self.screen_call(Request::PagePrev { win })
    }

    /// Enter Edit mode on the current row.
    pub fn enter_edit(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::EnterEdit { win })?.1)
    }

    /// Enter Insert mode.
    pub fn enter_insert(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::EnterInsert { win })?.1)
    }

    /// Enter Query (query-by-form) mode.
    pub fn enter_query(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::EnterQuery { win })?.1)
    }

    /// Type into a form field.
    pub fn set_field(&mut self, win: u32, field: u16, text: &str) -> WowResult<()> {
        match self.call(&Request::SetField {
            win,
            field,
            text: text.into(),
        })? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Commit the open mode (write the row, or apply the query).
    pub fn commit(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::Commit { win })?.1)
    }

    /// Abandon the open mode.
    pub fn cancel_mode(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::CancelMode { win })?.1)
    }

    /// Drop the active query restriction.
    pub fn clear_query(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::ClearQuery { win })?.1)
    }

    /// Delete the current row.
    pub fn delete_current(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::DeleteCurrent { win })?.1)
    }

    /// Undo this session's last through-window write.
    pub fn undo(&mut self) -> WowResult<()> {
        match self.call(&Request::Undo)? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Re-run the window's view query.
    pub fn refresh(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::Refresh { win })?.1)
    }

    /// Fetch the screenful without moving.
    pub fn screen(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::GetScreen { win })?.1)
    }

    /// Run raw QUEL; returns `(columns, rows)`.
    pub fn quel(&mut self, src: &str) -> WowResult<(Vec<String>, Vec<Vec<wow_rel::value::Value>>)> {
        match self.call(&Request::Quel { src: src.into() })? {
            Response::Rows { columns, rows } => Ok((columns, rows)),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Admin: fetch the server's metrics registry as Prometheus text.
    pub fn metrics_dump(&mut self) -> WowResult<String> {
        match self.call(&Request::MetricsDump)? {
            Response::Metrics { text } => Ok(text),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Admin: fetch every span the server still holds for one trace.
    pub fn fetch_trace(&mut self, trace_id: u64) -> WowResult<Vec<TraceSpan>> {
        match self.call(&Request::FetchTrace { trace_id })? {
            Response::Trace { spans } => Ok(spans),
            other => Err(unexpected("Trace", &other)),
        }
    }

    /// Polite disconnect: tells the server, waits for `Bye`, closes.
    pub fn goodbye(mut self) -> WowResult<()> {
        match self.call(&Request::Goodbye)? {
            Response::Bye => Ok(()),
            other => Err(unexpected("Bye", &other)),
        }
    }
}

fn io_err(phase: &'static str) -> impl Fn(std::io::Error) -> WowError {
    move |e| WowError::Net(format!("{phase}: {e}"))
}

fn read_err(e: ReadError) -> WowError {
    e.into()
}

fn unexpected(wanted: &str, got: &Response) -> WowError {
    WowError::Net(format!("expected {wanted}, got {got:?}"))
}
