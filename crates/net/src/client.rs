//! A blocking client for the window server.
//!
//! One call per request: [`Client`] writes a frame, then reads until the
//! matching response arrives. Push frames that arrive in between are
//! stashed and handed out by [`Client::poll_push`] / [`Client::wait_push`],
//! which also filter **stale generations**: a push whose generation does
//! not exceed the last one seen for its window is discarded, so a caller
//! that only consumes these APIs can never observe a window going
//! backwards in time.
//!
//! ## Reconnection
//!
//! A server crash (or restart) kills the TCP session, the server-side
//! session, and every window in it. [`Client::reconnect`] /
//! [`Client::reconnect_to`] rebuild all three: they dial with **capped
//! exponential backoff plus deterministic jitter** (seeded, so a test run
//! replays exactly), shake hands again for a fresh session, and re-open
//! every window the client had open, resyncing the per-window generation
//! gate to the fresh server's counters. Window ids change across a
//! reconnect (they are server-side names); the returned
//! [`ReconnectReport`] maps old ids to new ones so callers can rebind.

use crate::proto::{Push, Request, Response, Screenful, TraceSpan};
use crate::wire::{self, FrameKind, ReadError, MIN_VERSION, VERSION};
use std::collections::{BTreeMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use wow_core::{WowError, WowResult};
use wow_storage::fault::SplitMix64;

/// How [`Client::reconnect`] paces its dial attempts.
///
/// Attempt `n` (0-based) sleeps `min(base * 2^n, cap)` scaled by a jitter
/// factor drawn from a seeded [`SplitMix64`] — "equal jitter": half the
/// delay is kept, the other half is uniformly random. Equal seeds replay
/// the exact same schedule, which is what lets crash-recovery tests assert
/// timing-adjacent behavior deterministically.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Dial attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// Sleep before the second attempt (the first dials immediately).
    pub base: Duration,
    /// Ceiling the exponential never exceeds.
    pub cap: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> ReconnectPolicy {
        ReconnectPolicy {
            max_attempts: 8,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            seed: 0x5EED_CAFE,
        }
    }
}

impl ReconnectPolicy {
    /// The sleep before attempt `attempt + 1` (0-based), jittered by `rng`.
    /// Pure given the rng state, so schedules are replayable.
    pub fn delay(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        let nanos = exp.as_nanos().min(u64::MAX as u128) as u64;
        let half = nanos / 2;
        Duration::from_nanos(half + rng.next_u64() % (half + 1))
    }
}

/// One window rebuilt by a reconnect: the old (dead) id, the new id, and
/// the fresh screenful the server handed back on re-open.
#[derive(Debug)]
pub struct ReopenedWindow {
    /// The window's id before the reconnect (now invalid).
    pub old_win: u32,
    /// The window's id on the new session.
    pub new_win: u32,
    /// Whether the re-opened window is updatable.
    pub updatable: bool,
    /// Post-recovery contents, straight from the new server.
    pub screen: Screenful,
}

/// What a successful [`Client::reconnect`] accomplished.
#[derive(Debug)]
pub struct ReconnectReport {
    /// The fresh server-side session id.
    pub session: u32,
    /// Dial attempts it took to get through (1 = first try).
    pub attempts: u32,
    /// Every window re-opened, in the order they were originally opened.
    pub windows: Vec<ReopenedWindow>,
}

impl ReconnectReport {
    /// The new id for a pre-crash window id, if it was re-opened.
    pub fn remap(&self, old_win: u32) -> Option<u32> {
        self.windows
            .iter()
            .find(|w| w.old_win == old_win)
            .map(|w| w.new_win)
    }
}

/// What the client remembers about a window so it can be re-opened on a
/// fresh session after a reconnect.
#[derive(Debug, Clone)]
struct TrackedWindow {
    view: String,
    grid: bool,
}

/// A connected, handshaken session with a window server.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_req: u64,
    session: u32,
    /// Protocol version settled in the handshake; trace contexts are
    /// minted and attached to requests only at ≥ 2.
    version: u8,
    /// The trace id minted for the most recent request (0 before any).
    last_trace: u64,
    /// Pushes that arrived while waiting for a response.
    stash: VecDeque<Push>,
    /// Highest generation seen per window; lower-or-equal pushes drop.
    seen_gen: BTreeMap<u32, u64>,
    /// The address this client last connected to (reconnect target).
    addr: SocketAddr,
    /// Windows opened through this client, in open order, so a reconnect
    /// can rebuild them on the fresh session.
    tracked: Vec<(u32, TrackedWindow)>,
    /// View definitions made through this client. Views are world-process
    /// state, not database state, so a restarted server has forgotten
    /// them; a reconnect replays these before re-opening windows.
    defined_views: Vec<(String, String)>,
}

impl Client {
    /// Connect and shake hands.
    pub fn connect(addr: impl ToSocketAddrs) -> WowResult<Client> {
        let stream = TcpStream::connect(addr).map_err(io_err("connect"))?;
        stream.set_nodelay(true).ok();
        let peer = stream.peer_addr().map_err(io_err("peer_addr"))?;
        let reader = BufReader::new(stream.try_clone().map_err(io_err("clone"))?);
        let mut client = Client {
            writer: stream,
            reader,
            next_req: 1,
            session: 0,
            version: MIN_VERSION,
            last_trace: 0,
            stash: VecDeque::new(),
            seen_gen: BTreeMap::new(),
            addr: peer,
            tracked: Vec::new(),
            defined_views: Vec::new(),
        };
        match client.call(&Request::Hello { version: VERSION })? {
            Response::HelloOk { session, version } => {
                client.session = session;
                client.version = version.min(VERSION);
                Ok(client)
            }
            other => Err(WowError::Net(format!("bad handshake reply: {other:?}"))),
        }
    }

    /// Reconnect to the same address (see [`Client::reconnect_to`]).
    pub fn reconnect(&mut self, policy: &ReconnectPolicy) -> WowResult<ReconnectReport> {
        self.reconnect_to(self.addr, policy)
    }

    /// Tear down and rebuild the session against `addr` — the same server
    /// after a restart, or its replacement on a different port.
    ///
    /// Dials with capped exponential backoff and seeded jitter, shakes
    /// hands for a fresh session, then re-opens every tracked window and
    /// resets its generation gate to the fresh server's counter (the old
    /// generations belong to a dead incarnation and mean nothing here).
    /// Stashed pushes from the dead connection are discarded: their
    /// screenfuls describe windows that no longer exist.
    ///
    /// On success the client is fully usable again; window ids have
    /// changed and the returned [`ReconnectReport`] carries the mapping.
    /// A window whose view no longer exists on the new server is reported
    /// as the error that re-opening it produced.
    pub fn reconnect_to(
        &mut self,
        addr: impl ToSocketAddrs,
        policy: &ReconnectPolicy,
    ) -> WowResult<ReconnectReport> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs().map_err(io_err("resolve"))?.collect();
        let mut rng = SplitMix64::new(policy.seed);
        let mut attempts = 0u32;
        let stream = loop {
            attempts += 1;
            let dial = addrs
                .iter()
                .find_map(|a| TcpStream::connect(a).ok())
                .ok_or(())
                .map_err(|_| WowError::Net(format!("reconnect: no server at {addrs:?}")));
            match dial {
                Ok(s) => break s,
                Err(e) if attempts >= policy.max_attempts.max(1) => {
                    wow_obs::metrics().add("net.reconnect_giveups", 1);
                    return Err(e);
                }
                Err(_) => {
                    std::thread::sleep(policy.delay(attempts - 1, &mut rng));
                }
            }
        };
        stream.set_nodelay(true).ok();
        let peer = stream.peer_addr().map_err(io_err("peer_addr"))?;
        self.reader = BufReader::new(stream.try_clone().map_err(io_err("clone"))?);
        self.writer = stream;
        self.addr = peer;
        self.next_req = 1;
        self.session = 0;
        self.version = MIN_VERSION;
        self.last_trace = 0;
        self.stash.clear();
        self.seen_gen.clear();
        match self.call(&Request::Hello { version: VERSION })? {
            Response::HelloOk { session, version } => {
                self.session = session;
                self.version = version.min(VERSION);
            }
            other => return Err(WowError::Net(format!("bad handshake reply: {other:?}"))),
        }
        // Replay view definitions first: a restarted server has recovered
        // its tables from disk but views are process state and are gone.
        // Best-effort — when the server survived (only the connection
        // died) the views still exist and re-defining reports a name
        // clash, which is not a failure of the reconnect.
        for (name, src) in self.defined_views.clone() {
            let _ = self.call(&Request::DefineView { name, src });
        }
        // Re-open every window on the fresh session. The tracked list is
        // rebuilt as we go so a second reconnect keys off the new ids.
        let old = std::mem::take(&mut self.tracked);
        let mut windows = Vec::with_capacity(old.len());
        for (old_win, t) in old {
            let (new_win, updatable, screen) = self.open_window(&t.view, t.grid)?;
            windows.push(ReopenedWindow {
                old_win,
                new_win,
                updatable,
                screen,
            });
        }
        wow_obs::metrics().add("net.reconnects", 1);
        Ok(ReconnectReport {
            session: self.session,
            attempts,
            windows,
        })
    }

    /// The server-side session id backing this connection.
    pub fn session(&self) -> u32 {
        self.session
    }

    /// The protocol version negotiated with the server.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The trace id this client stamped on its most recent request (0
    /// before any traced request). Feed it to [`Client::fetch_trace`] to
    /// pull the request's whole span tree back from the server.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace
    }

    /// Send one request and block for its response. Pushes received while
    /// waiting are stashed for [`Client::poll_push`]. On a v2 connection
    /// every request carries a freshly minted trace id, so the server's
    /// whole handling of it assembles into one retrievable tree.
    pub fn call(&mut self, req: &Request) -> WowResult<Response> {
        let id = self.next_req;
        self.next_req += 1;
        let trace = (self.version >= 2).then(|| {
            self.last_trace = wow_obs::fresh_trace_id();
            (self.last_trace, 0)
        });
        wire::write_frame_traced(
            &mut self.writer,
            FrameKind::Request,
            id,
            trace,
            &req.encode(),
        )
        .map_err(io_err("send"))?;
        // No read timeout while a response is owed: the server always
        // answers every request (that is the protocol's contract).
        self.reader
            .get_ref()
            .set_read_timeout(None)
            .map_err(io_err("timeout"))?;
        loop {
            let frame = wire::read_frame(&mut self.reader).map_err(read_err)?;
            match frame.kind {
                FrameKind::Push => self.stash_push(&frame.payload)?,
                FrameKind::Response => {
                    if frame.req_id != id {
                        return Err(WowError::Net(format!(
                            "response for request {} while waiting for {id}",
                            frame.req_id
                        )));
                    }
                    let resp = Response::decode(&frame.payload).map_err(WowError::from)?;
                    if let Response::Error(e) = resp {
                        return Err(e.into_wow());
                    }
                    return Ok(resp);
                }
                FrameKind::Request => {
                    return Err(WowError::Net("server sent a request frame".into()))
                }
            }
        }
    }

    fn stash_push(&mut self, payload: &[u8]) -> WowResult<()> {
        let push = Push::decode(payload).map_err(WowError::from)?;
        let Push::WindowRefreshed {
            win, generation, ..
        } = &push;
        // Generation gate: only strictly newer screenfuls are kept.
        let seen = self.seen_gen.entry(*win).or_insert(0);
        if *generation <= *seen {
            return Ok(());
        }
        *seen = *generation;
        // A newer push for the same window supersedes a stashed one.
        self.stash.retain(|p| {
            let Push::WindowRefreshed { win: w, .. } = p;
            w != win
        });
        self.stash.push_back(push);
        Ok(())
    }

    /// Take one stashed push, if any, without touching the socket.
    pub fn take_push(&mut self) -> Option<Push> {
        self.stash.pop_front()
    }

    /// Drain the socket without blocking, then take one stashed push.
    pub fn poll_push(&mut self) -> WowResult<Option<Push>> {
        self.drain_socket(Duration::from_millis(1))?;
        Ok(self.stash.pop_front())
    }

    /// Block up to `timeout` for a push.
    pub fn wait_push(&mut self, timeout: Duration) -> WowResult<Option<Push>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(p) = self.stash.pop_front() {
                return Ok(Some(p));
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(None);
            }
            self.drain_socket(left.min(Duration::from_millis(20)))?;
        }
    }

    /// Read frames until one push is stashed or `window` passes with the
    /// socket quiet. Reading exactly one per call matters: under a steady
    /// push stream, "keep reading while frames arrive" never goes quiet, so
    /// the stash's same-window supersession would silently coalesce every
    /// push into the newest one and the caller would see nothing until the
    /// stream paused. Later frames stay buffered for the next call.
    fn drain_socket(&mut self, window: Duration) -> WowResult<()> {
        self.reader
            .get_ref()
            .set_read_timeout(Some(window))
            .map_err(io_err("timeout"))?;
        match wire::read_frame(&mut self.reader) {
            Ok(frame) if frame.kind == FrameKind::Push => self.stash_push(&frame.payload),
            Ok(frame) => Err(WowError::Net(format!(
                "unsolicited {:?} frame for request {}",
                frame.kind, frame.req_id
            ))),
            Err(e) if e.is_timeout() => Ok(()),
            Err(ReadError::Eof) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Highest refresh generation seen for a window (0 if none).
    pub fn generation_of(&self, win: u32) -> u64 {
        self.seen_gen.get(&win).copied().unwrap_or(0)
    }

    /// Record a generation learned from a response (`Screen` /
    /// `WindowOpened`) so later stale pushes are filtered against it.
    pub fn note_generation(&mut self, win: u32, generation: u64) {
        let seen = self.seen_gen.entry(win).or_insert(0);
        if generation > *seen {
            *seen = generation;
        }
    }

    // -- Typed wrappers (the clerk loop) ----------------------------------------

    /// Keepalive round-trip.
    pub fn ping(&mut self) -> WowResult<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Define a view.
    pub fn define_view(&mut self, name: &str, src: &str) -> WowResult<()> {
        match self.call(&Request::DefineView {
            name: name.into(),
            src: src.into(),
        })? {
            Response::Ack => {
                self.defined_views.push((name.into(), src.into()));
                Ok(())
            }
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Open a window; returns `(window id, updatable, initial screen)`.
    pub fn open_window(&mut self, view: &str, grid: bool) -> WowResult<(u32, bool, Screenful)> {
        match self.call(&Request::OpenWindow {
            view: view.into(),
            grid,
        })? {
            Response::WindowOpened {
                win,
                updatable,
                generation,
                screen,
            } => {
                self.note_generation(win, generation);
                self.tracked.push((
                    win,
                    TrackedWindow {
                        view: view.into(),
                        grid,
                    },
                ));
                Ok((win, updatable, screen))
            }
            other => Err(unexpected("WindowOpened", &other)),
        }
    }

    /// Close a window.
    pub fn close_window(&mut self, win: u32) -> WowResult<()> {
        match self.call(&Request::CloseWindow { win })? {
            Response::Ack => {
                self.tracked.retain(|(w, _)| *w != win);
                self.seen_gen.remove(&win);
                Ok(())
            }
            other => Err(unexpected("Ack", &other)),
        }
    }

    fn screen_call(&mut self, req: Request) -> WowResult<(bool, Screenful)> {
        match self.call(&req)? {
            Response::Screen {
                win,
                generation,
                moved,
                screen,
            } => {
                self.note_generation(win, generation);
                Ok((moved, screen))
            }
            other => Err(unexpected("Screen", &other)),
        }
    }

    /// Advance one row; returns `(moved, screen)`.
    pub fn next(&mut self, win: u32) -> WowResult<(bool, Screenful)> {
        self.screen_call(Request::BrowseNext { win })
    }

    /// Step back one row.
    pub fn prev(&mut self, win: u32) -> WowResult<(bool, Screenful)> {
        self.screen_call(Request::BrowsePrev { win })
    }

    /// Page forward.
    pub fn next_page(&mut self, win: u32) -> WowResult<(bool, Screenful)> {
        self.screen_call(Request::PageNext { win })
    }

    /// Page backward.
    pub fn prev_page(&mut self, win: u32) -> WowResult<(bool, Screenful)> {
        self.screen_call(Request::PagePrev { win })
    }

    /// Enter Edit mode on the current row.
    pub fn enter_edit(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::EnterEdit { win })?.1)
    }

    /// Enter Insert mode.
    pub fn enter_insert(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::EnterInsert { win })?.1)
    }

    /// Enter Query (query-by-form) mode.
    pub fn enter_query(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::EnterQuery { win })?.1)
    }

    /// Type into a form field.
    pub fn set_field(&mut self, win: u32, field: u16, text: &str) -> WowResult<()> {
        match self.call(&Request::SetField {
            win,
            field,
            text: text.into(),
        })? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Commit the open mode (write the row, or apply the query).
    pub fn commit(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::Commit { win })?.1)
    }

    /// Abandon the open mode.
    pub fn cancel_mode(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::CancelMode { win })?.1)
    }

    /// Drop the active query restriction.
    pub fn clear_query(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::ClearQuery { win })?.1)
    }

    /// Delete the current row.
    pub fn delete_current(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::DeleteCurrent { win })?.1)
    }

    /// Undo this session's last through-window write.
    pub fn undo(&mut self) -> WowResult<()> {
        match self.call(&Request::Undo)? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Re-run the window's view query.
    pub fn refresh(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::Refresh { win })?.1)
    }

    /// Fetch the screenful without moving.
    pub fn screen(&mut self, win: u32) -> WowResult<Screenful> {
        Ok(self.screen_call(Request::GetScreen { win })?.1)
    }

    /// Run raw QUEL; returns `(columns, rows)`.
    pub fn quel(&mut self, src: &str) -> WowResult<(Vec<String>, Vec<Vec<wow_rel::value::Value>>)> {
        match self.call(&Request::Quel { src: src.into() })? {
            Response::Rows { columns, rows } => Ok((columns, rows)),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Admin: fetch the server's metrics registry as Prometheus text.
    pub fn metrics_dump(&mut self) -> WowResult<String> {
        match self.call(&Request::MetricsDump)? {
            Response::Metrics { text } => Ok(text),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Admin: fetch every span the server still holds for one trace.
    pub fn fetch_trace(&mut self, trace_id: u64) -> WowResult<Vec<TraceSpan>> {
        match self.call(&Request::FetchTrace { trace_id })? {
            Response::Trace { spans } => Ok(spans),
            other => Err(unexpected("Trace", &other)),
        }
    }

    /// Polite disconnect: tells the server, waits for `Bye`, closes.
    pub fn goodbye(mut self) -> WowResult<()> {
        match self.call(&Request::Goodbye)? {
            Response::Bye => Ok(()),
            other => Err(unexpected("Bye", &other)),
        }
    }
}

fn io_err(phase: &'static str) -> impl Fn(std::io::Error) -> WowError {
    move |e| WowError::Net(format!("{phase}: {e}"))
}

fn read_err(e: ReadError) -> WowError {
    e.into()
}

fn unexpected(wanted: &str, got: &Response) -> WowError {
    WowError::Net(format!("expected {wanted}, got {got:?}"))
}
