//! Typed messages over the wire: requests, responses, pushes.
//!
//! Every message encodes as a one-byte tag followed by its fields, using
//! the bounds-checked primitives in [`wire`](crate::wire). Decoding always
//! consumes the whole payload (`PayloadReader::finish`), so concatenated or
//! padded messages are rejected rather than silently half-read.

use crate::wire::{PayloadReader, PayloadWriter, WireError};
use wow_core::{SessionId, WinId, WowError};
use wow_rel::value::Value;

/// One screenful of a window, as the server displays it: the visible page
/// of rows plus the cursor's place in the view. This is the unit the
/// paper's clerk sees — pushes replace a whole screenful, never part of
/// one, which is what makes the never-mixed-state guarantee possible.
#[derive(Debug, Clone, Default)]
pub struct Screenful {
    /// Column names, in form order.
    pub columns: Vec<String>,
    /// The visible page of rows.
    pub rows: Vec<Vec<Value>>,
    /// Index into `rows` of the current row (None when the view is empty).
    pub current: Option<u16>,
    /// Zero-based position of the current row in the whole view.
    pub position: Option<u64>,
    /// Total row count, when the cursor knows it.
    pub total: Option<u64>,
    /// Window mode name (`Browse` / `Edit` / `Insert` / `Query`).
    pub mode: String,
    /// Whether the server marked the window stale (unrefreshable mid-edit).
    pub stale: bool,
}

impl Screenful {
    fn encode(&self, w: &mut PayloadWriter) {
        w.u16(self.columns.len() as u16);
        for c in &self.columns {
            w.str(c);
        }
        w.u32(self.rows.len() as u32);
        for row in &self.rows {
            w.row(row);
        }
        opt_u64(w, self.current.map(u64::from));
        opt_u64(w, self.position);
        opt_u64(w, self.total);
        w.str(&self.mode);
        w.bool(self.stale);
    }

    fn decode(r: &mut PayloadReader<'_>) -> Result<Screenful, WireError> {
        let ncols = r.u16()? as usize;
        let mut columns = Vec::with_capacity(ncols.min(r.remaining()));
        for _ in 0..ncols {
            columns.push(r.str()?);
        }
        let nrows = r.u32()? as usize;
        // Each row costs at least 2 bytes (its arity); reject impossible
        // counts before reserving.
        if nrows > r.remaining() {
            return Err(WireError::Truncated {
                wanted: nrows,
                got: r.remaining(),
            });
        }
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            rows.push(r.row()?);
        }
        Ok(Screenful {
            columns,
            rows,
            current: read_opt_u64(r)?.map(|v| v as u16),
            position: read_opt_u64(r)?,
            total: read_opt_u64(r)?,
            mode: r.str()?,
            stale: r.bool()?,
        })
    }
}

/// Render the screenful as the text a clerk would see — the comparison
/// currency of the N-client equivalence tests (`Value` has no `PartialEq`;
/// display strings are the repo-wide equality idiom).
impl std::fmt::Display for Screenful {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "[{}] {}", self.mode, self.columns.join(" | "))?;
        for (i, row) in self.rows.iter().enumerate() {
            let mark = if Some(i as u16) == self.current {
                '>'
            } else {
                ' '
            };
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{mark} {}", cells.join(" | "))?;
        }
        let pos = match (self.position, self.total) {
            (Some(p), Some(n)) => format!("row {}/{n}", p + 1),
            (Some(p), None) => format!("row {}", p + 1),
            (None, _) => "no rows".to_string(),
        };
        let stale = if self.stale { " [stale]" } else { "" };
        write!(f, "{pos}{stale}")
    }
}

fn opt_u64(w: &mut PayloadWriter, v: Option<u64>) {
    match v {
        Some(v) => {
            w.u8(1);
            w.u64(v);
        }
        None => w.u8(0),
    }
}

fn read_opt_u64(r: &mut PayloadReader<'_>) -> Result<Option<u64>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        tag => Err(WireError::BadTag {
            what: "option",
            tag,
        }),
    }
}

// -- Requests -----------------------------------------------------------------

/// A client request: the full clerk loop plus session plumbing.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: must be the first request on a connection. The server
    /// accepts any version in `MIN_VERSION..=VERSION` and replies with the
    /// highest version both sides speak; traced (v2) frames flow only
    /// after both ends agree on ≥ 2.
    Hello {
        /// The newest protocol version the client speaks.
        version: u8,
    },
    /// Keepalive; also resets the server's idle timer.
    Ping,
    /// Polite disconnect: the server drains the outbox and hangs up.
    Goodbye,
    /// Define (or fail on redefinition of) a named view.
    DefineView {
        /// View name.
        name: String,
        /// QUEL `RANGE OF … RETRIEVE` source.
        src: String,
    },
    /// Open a window on a view.
    OpenWindow {
        /// View name.
        view: String,
        /// Grid presentation instead of one-record form.
        grid: bool,
    },
    /// Close a window.
    CloseWindow {
        /// Window id.
        win: u32,
    },
    /// Advance one row.
    BrowseNext {
        /// Window id.
        win: u32,
    },
    /// Step back one row.
    BrowsePrev {
        /// Window id.
        win: u32,
    },
    /// Page forward.
    PageNext {
        /// Window id.
        win: u32,
    },
    /// Page backward.
    PagePrev {
        /// Window id.
        win: u32,
    },
    /// Open the current row for editing.
    EnterEdit {
        /// Window id.
        win: u32,
    },
    /// Open a blank form for a new row.
    EnterInsert {
        /// Window id.
        win: u32,
    },
    /// Open a blank form for query-by-form entry.
    EnterQuery {
        /// Window id.
        win: u32,
    },
    /// Type into one form field (Edit / Insert / Query modes).
    SetField {
        /// Window id.
        win: u32,
        /// Field index on the form.
        field: u16,
        /// Replacement text.
        text: String,
    },
    /// Commit the open mode: writes the row (Edit/Insert) or applies the
    /// restriction (Query).
    Commit {
        /// Window id.
        win: u32,
    },
    /// Abandon the open mode.
    CancelMode {
        /// Window id.
        win: u32,
    },
    /// Drop the active query-by-form restriction.
    ClearQuery {
        /// Window id.
        win: u32,
    },
    /// Delete the current row.
    DeleteCurrent {
        /// Window id.
        win: u32,
    },
    /// Undo this session's last through-window write.
    Undo,
    /// Re-run the window's view query.
    Refresh {
        /// Window id.
        win: u32,
    },
    /// Run raw QUEL against the shared database.
    Quel {
        /// QUEL source.
        src: String,
    },
    /// Fetch the current screenful without moving.
    GetScreen {
        /// Window id.
        win: u32,
    },
    /// Admin: fetch the server's metrics registry as a Prometheus text
    /// dump ([`Response::Metrics`]). Needs no session.
    MetricsDump,
    /// Admin: fetch every recorded span of one trace tree
    /// ([`Response::Trace`]). Needs no session.
    FetchTrace {
        /// The trace id, e.g. the one a v2 client stamped on a request.
        trace_id: u64,
    },
}

impl Request {
    /// Encode to a payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        match self {
            Request::Hello { version } => {
                w.u8(0);
                w.u8(*version);
            }
            Request::Ping => w.u8(1),
            Request::Goodbye => w.u8(2),
            Request::DefineView { name, src } => {
                w.u8(3);
                w.str(name);
                w.str(src);
            }
            Request::OpenWindow { view, grid } => {
                w.u8(4);
                w.str(view);
                w.bool(*grid);
            }
            Request::CloseWindow { win } => {
                w.u8(5);
                w.u32(*win);
            }
            Request::BrowseNext { win } => {
                w.u8(6);
                w.u32(*win);
            }
            Request::BrowsePrev { win } => {
                w.u8(7);
                w.u32(*win);
            }
            Request::PageNext { win } => {
                w.u8(8);
                w.u32(*win);
            }
            Request::PagePrev { win } => {
                w.u8(9);
                w.u32(*win);
            }
            Request::EnterEdit { win } => {
                w.u8(10);
                w.u32(*win);
            }
            Request::EnterInsert { win } => {
                w.u8(11);
                w.u32(*win);
            }
            Request::EnterQuery { win } => {
                w.u8(12);
                w.u32(*win);
            }
            Request::SetField { win, field, text } => {
                w.u8(13);
                w.u32(*win);
                w.u16(*field);
                w.str(text);
            }
            Request::Commit { win } => {
                w.u8(14);
                w.u32(*win);
            }
            Request::CancelMode { win } => {
                w.u8(15);
                w.u32(*win);
            }
            Request::ClearQuery { win } => {
                w.u8(16);
                w.u32(*win);
            }
            Request::DeleteCurrent { win } => {
                w.u8(17);
                w.u32(*win);
            }
            Request::Undo => w.u8(18),
            Request::Refresh { win } => {
                w.u8(19);
                w.u32(*win);
            }
            Request::Quel { src } => {
                w.u8(20);
                w.str(src);
            }
            Request::GetScreen { win } => {
                w.u8(21);
                w.u32(*win);
            }
            Request::MetricsDump => w.u8(22),
            Request::FetchTrace { trace_id } => {
                w.u8(23);
                w.u64(*trace_id);
            }
        }
        w.into_bytes()
    }

    /// Decode a payload; the whole payload must be consumed.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = PayloadReader::new(payload);
        let req = match r.u8()? {
            0 => Request::Hello { version: r.u8()? },
            1 => Request::Ping,
            2 => Request::Goodbye,
            3 => Request::DefineView {
                name: r.str()?,
                src: r.str()?,
            },
            4 => Request::OpenWindow {
                view: r.str()?,
                grid: r.bool()?,
            },
            5 => Request::CloseWindow { win: r.u32()? },
            6 => Request::BrowseNext { win: r.u32()? },
            7 => Request::BrowsePrev { win: r.u32()? },
            8 => Request::PageNext { win: r.u32()? },
            9 => Request::PagePrev { win: r.u32()? },
            10 => Request::EnterEdit { win: r.u32()? },
            11 => Request::EnterInsert { win: r.u32()? },
            12 => Request::EnterQuery { win: r.u32()? },
            13 => Request::SetField {
                win: r.u32()?,
                field: r.u16()?,
                text: r.str()?,
            },
            14 => Request::Commit { win: r.u32()? },
            15 => Request::CancelMode { win: r.u32()? },
            16 => Request::ClearQuery { win: r.u32()? },
            17 => Request::DeleteCurrent { win: r.u32()? },
            18 => Request::Undo,
            19 => Request::Refresh { win: r.u32()? },
            20 => Request::Quel { src: r.str()? },
            21 => Request::GetScreen { win: r.u32()? },
            22 => Request::MetricsDump,
            23 => Request::FetchTrace { trace_id: r.u64()? },
            tag => {
                return Err(WireError::BadTag {
                    what: "request",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(req)
    }

    /// The window this request targets, if any — the server checks the
    /// caller's session owns it, and the push router skips the event the
    /// response already carries.
    pub fn target_window(&self) -> Option<WinId> {
        use Request::*;
        match self {
            CloseWindow { win }
            | BrowseNext { win }
            | BrowsePrev { win }
            | PageNext { win }
            | PagePrev { win }
            | EnterEdit { win }
            | EnterInsert { win }
            | EnterQuery { win }
            | SetField { win, .. }
            | Commit { win }
            | CancelMode { win }
            | ClearQuery { win }
            | DeleteCurrent { win }
            | Refresh { win }
            | GetScreen { win } => Some(WinId(*win)),
            _ => None,
        }
    }
}

// -- Errors on the wire -------------------------------------------------------

/// Stable error codes carried in [`ErrorFrame::code`].
pub mod error_code {
    /// Relational engine error.
    pub const REL: u16 = 1;
    /// View layer error.
    pub const VIEW: u16 = 2;
    /// Forms layer error.
    pub const FORM: u16 = 3;
    /// Unknown session.
    pub const NO_SUCH_SESSION: u16 = 4;
    /// Unknown window (or a window owned by another session).
    pub const NO_SUCH_WINDOW: u16 = 5;
    /// The window is read-only.
    pub const READ_ONLY: u16 = 6;
    /// A lock is held by another session.
    pub const LOCK_CONFLICT: u16 = 7;
    /// Granting the lock would deadlock.
    pub const DEADLOCK: u16 = 8;
    /// The operation needs a current row.
    pub const NO_CURRENT_ROW: u16 = 9;
    /// Nothing to undo.
    pub const NOTHING_TO_UNDO: u16 = 10;
    /// Invalid in the window's mode.
    pub const WRONG_MODE: u16 = 11;
    /// One or more windows failed to refresh during propagation; the
    /// frame's `windows` list carries each `(window, message)`.
    pub const PROPAGATION_FAILED: u16 = 12;
    /// Network-layer failure.
    pub const NET: u16 = 13;
    /// Protocol violation (bad handshake, unowned window, malformed frame).
    pub const PROTOCOL: u16 = 14;
}

/// A `WowError` flattened for the wire: a stable code, the display message,
/// and the structured bits remote callers act on (the blocked table, the
/// blocking session, per-window propagation failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// One of [`error_code`].
    pub code: u16,
    /// Human-readable display of the original error.
    pub message: String,
    /// The relation involved (lock conflicts, deadlocks); empty otherwise.
    pub table: String,
    /// Numeric argument: blocking session for `LOCK_CONFLICT`, the id for
    /// `NO_SUCH_SESSION` / `NO_SUCH_WINDOW`; 0 otherwise.
    pub arg: u64,
    /// Per-window details for `PROPAGATION_FAILED`: `(window id, error)`.
    pub windows: Vec<(u32, String)>,
}

impl ErrorFrame {
    /// Flatten a `WowError` for transmission.
    pub fn from_wow(e: &WowError) -> ErrorFrame {
        use error_code as c;
        let message = e.to_string();
        let (code, table, arg, windows) = match e {
            WowError::Rel(_) => (c::REL, String::new(), 0, Vec::new()),
            WowError::View(_) => (c::VIEW, String::new(), 0, Vec::new()),
            WowError::Form(_) => (c::FORM, String::new(), 0, Vec::new()),
            WowError::NoSuchSession(s) => {
                (c::NO_SUCH_SESSION, String::new(), *s as u64, Vec::new())
            }
            WowError::NoSuchWindow(w) => (c::NO_SUCH_WINDOW, String::new(), *w as u64, Vec::new()),
            WowError::ReadOnly { view, .. } => (c::READ_ONLY, view.clone(), 0, Vec::new()),
            WowError::LockConflict { table, blocker } => {
                (c::LOCK_CONFLICT, table.clone(), *blocker as u64, Vec::new())
            }
            WowError::Deadlock { table } => (c::DEADLOCK, table.clone(), 0, Vec::new()),
            WowError::NoCurrentRow => (c::NO_CURRENT_ROW, String::new(), 0, Vec::new()),
            WowError::NothingToUndo => (c::NOTHING_TO_UNDO, String::new(), 0, Vec::new()),
            WowError::WrongMode { .. } => (c::WRONG_MODE, String::new(), 0, Vec::new()),
            WowError::PropagationFailed { failures } => {
                (c::PROPAGATION_FAILED, String::new(), 0, failures.clone())
            }
            WowError::Net(_) => (c::NET, String::new(), 0, Vec::new()),
        };
        ErrorFrame {
            code,
            message,
            table,
            arg,
            windows,
        }
    }

    /// A protocol violation the core error enum has no variant for.
    pub fn protocol(message: impl Into<String>) -> ErrorFrame {
        ErrorFrame {
            code: error_code::PROTOCOL,
            message: message.into(),
            table: String::new(),
            arg: 0,
            windows: Vec::new(),
        }
    }

    /// Reconstruct a typed `WowError` on the client. Codes with structured
    /// fields come back as their original variant (so remote callers can
    /// match on `LockConflict` / `Deadlock` / `PropagationFailed` exactly
    /// like embedded ones); the rest carry their display text in
    /// [`WowError::Net`].
    pub fn into_wow(self) -> WowError {
        use error_code as c;
        match self.code {
            c::NO_SUCH_SESSION => WowError::NoSuchSession(self.arg as u32),
            c::NO_SUCH_WINDOW => WowError::NoSuchWindow(self.arg as u32),
            c::LOCK_CONFLICT => WowError::LockConflict {
                table: self.table,
                blocker: self.arg as u32,
            },
            c::DEADLOCK => WowError::Deadlock { table: self.table },
            c::NO_CURRENT_ROW => WowError::NoCurrentRow,
            c::NOTHING_TO_UNDO => WowError::NothingToUndo,
            c::PROPAGATION_FAILED => WowError::PropagationFailed {
                failures: self.windows,
            },
            _ => WowError::Net(self.message),
        }
    }

    fn encode_into(&self, w: &mut PayloadWriter) {
        w.u16(self.code);
        w.str(&self.message);
        w.str(&self.table);
        w.u64(self.arg);
        w.u16(self.windows.len() as u16);
        for (win, msg) in &self.windows {
            w.u32(*win);
            w.str(msg);
        }
    }

    fn decode_from(r: &mut PayloadReader<'_>) -> Result<ErrorFrame, WireError> {
        let code = r.u16()?;
        let message = r.str()?;
        let table = r.str()?;
        let arg = r.u64()?;
        let n = r.u16()? as usize;
        let mut windows = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            windows.push((r.u32()?, r.str()?));
        }
        Ok(ErrorFrame {
            code,
            message,
            table,
            arg,
            windows,
        })
    }
}

// -- Responses ----------------------------------------------------------------

/// One span of a trace tree, flattened for the wire (what
/// [`Response::Trace`] carries). Mirrors `wow_obs::Span` minus the ring
/// sequence number, which is meaningless outside the server process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id, unique within the server's tracer.
    pub span_id: u64,
    /// The parent span's id; 0 marks a root.
    pub parent_id: u64,
    /// Operation name (`wow_obs::Op::name`).
    pub op: String,
    /// Span start, microseconds since the tracer epoch.
    pub start_us: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Operation-specific argument (row count, window id, …).
    pub arg: u64,
}

impl TraceSpan {
    fn encode_into(&self, w: &mut PayloadWriter) {
        w.u64(self.trace_id);
        w.u64(self.span_id);
        w.u64(self.parent_id);
        w.str(&self.op);
        w.u64(self.start_us);
        w.u64(self.dur_ns);
        w.u64(self.arg);
    }

    fn decode_from(r: &mut PayloadReader<'_>) -> Result<TraceSpan, WireError> {
        Ok(TraceSpan {
            trace_id: r.u64()?,
            span_id: r.u64()?,
            parent_id: r.u64()?,
            op: r.str()?,
            start_us: r.u64()?,
            dur_ns: r.u64()?,
            arg: r.u64()?,
        })
    }
}

/// A server response; each answers exactly one [`Request`].
#[derive(Debug, Clone)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// The session backing this connection.
        session: u32,
        /// The server's protocol version.
        version: u8,
    },
    /// Keepalive answer.
    Pong,
    /// Goodbye acknowledged; the server hangs up after this frame.
    Bye,
    /// Success with nothing to show (DefineView, SetField, Undo, Close).
    Ack,
    /// A window opened.
    WindowOpened {
        /// The new window's id.
        win: u32,
        /// Whether writes are allowed through it.
        updatable: bool,
        /// Its initial refresh generation (always 1).
        generation: u64,
        /// The initial screenful.
        screen: Screenful,
    },
    /// The window's screenful after an operation.
    Screen {
        /// Window id.
        win: u32,
        /// The window's refresh generation when this screen was built.
        generation: u64,
        /// For cursor motion: whether the cursor actually moved.
        moved: bool,
        /// The screenful.
        screen: Screenful,
    },
    /// Raw QUEL results.
    Rows {
        /// Column names.
        columns: Vec<String>,
        /// Result tuples.
        rows: Vec<Vec<Value>>,
    },
    /// The request failed.
    Error(ErrorFrame),
    /// Prometheus text dump of the server's metrics registry.
    Metrics {
        /// The exposition-format text.
        text: String,
    },
    /// Every span the server still holds for one trace id.
    Trace {
        /// The spans, in recording order (parents may follow children).
        spans: Vec<TraceSpan>,
    },
}

impl Response {
    /// Encode to a payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        match self {
            Response::HelloOk { session, version } => {
                w.u8(0);
                w.u32(*session);
                w.u8(*version);
            }
            Response::Pong => w.u8(1),
            Response::Bye => w.u8(2),
            Response::Ack => w.u8(3),
            Response::WindowOpened {
                win,
                updatable,
                generation,
                screen,
            } => {
                w.u8(4);
                w.u32(*win);
                w.bool(*updatable);
                w.u64(*generation);
                screen.encode(&mut w);
            }
            Response::Screen {
                win,
                generation,
                moved,
                screen,
            } => {
                w.u8(5);
                w.u32(*win);
                w.u64(*generation);
                w.bool(*moved);
                screen.encode(&mut w);
            }
            Response::Rows { columns, rows } => {
                w.u8(6);
                w.u16(columns.len() as u16);
                for c in columns {
                    w.str(c);
                }
                w.u32(rows.len() as u32);
                for row in rows {
                    w.row(row);
                }
            }
            Response::Error(e) => {
                w.u8(7);
                e.encode_into(&mut w);
            }
            Response::Metrics { text } => {
                w.u8(8);
                w.str(text);
            }
            Response::Trace { spans } => {
                w.u8(9);
                w.u32(spans.len() as u32);
                for s in spans {
                    s.encode_into(&mut w);
                }
            }
        }
        w.into_bytes()
    }

    /// Decode a payload; the whole payload must be consumed.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = PayloadReader::new(payload);
        let resp = match r.u8()? {
            0 => Response::HelloOk {
                session: r.u32()?,
                version: r.u8()?,
            },
            1 => Response::Pong,
            2 => Response::Bye,
            3 => Response::Ack,
            4 => Response::WindowOpened {
                win: r.u32()?,
                updatable: r.bool()?,
                generation: r.u64()?,
                screen: Screenful::decode(&mut r)?,
            },
            5 => Response::Screen {
                win: r.u32()?,
                generation: r.u64()?,
                moved: r.bool()?,
                screen: Screenful::decode(&mut r)?,
            },
            6 => {
                let ncols = r.u16()? as usize;
                let mut columns = Vec::with_capacity(ncols.min(r.remaining()));
                for _ in 0..ncols {
                    columns.push(r.str()?);
                }
                let nrows = r.u32()? as usize;
                if nrows > r.remaining() {
                    return Err(WireError::Truncated {
                        wanted: nrows,
                        got: r.remaining(),
                    });
                }
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    rows.push(r.row()?);
                }
                Response::Rows { columns, rows }
            }
            7 => Response::Error(ErrorFrame::decode_from(&mut r)?),
            8 => Response::Metrics { text: r.str()? },
            9 => {
                let n = r.u32()? as usize;
                // Each span is ≥ 52 bytes; reject impossible counts before
                // reserving anything.
                if n > r.remaining() {
                    return Err(WireError::Truncated {
                        wanted: n,
                        got: r.remaining(),
                    });
                }
                let mut spans = Vec::with_capacity(n);
                for _ in 0..n {
                    spans.push(TraceSpan::decode_from(&mut r)?);
                }
                Response::Trace { spans }
            }
            tag => {
                return Err(WireError::BadTag {
                    what: "response",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

// -- Pushes -------------------------------------------------------------------

/// How a pushed screenful was produced on the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushKind {
    /// The view query was re-run.
    Full,
    /// The screenful was patched in place from a view delta.
    Delta,
}

impl PushKind {
    fn to_u8(self) -> u8 {
        match self {
            PushKind::Full => 0,
            PushKind::Delta => 1,
        }
    }

    fn from_u8(b: u8) -> Result<PushKind, WireError> {
        match b {
            0 => Ok(PushKind::Full),
            1 => Ok(PushKind::Delta),
            tag => Err(WireError::BadTag {
                what: "push kind",
                tag,
            }),
        }
    }
}

/// An unsolicited server frame.
#[derive(Debug, Clone)]
pub enum Push {
    /// Another session's commit changed rows this window displays; here is
    /// its new screenful. Built under the same world lock as the commit
    /// that caused it, so it is always a complete post-commit state —
    /// never a mix. `generation` increases with every refresh; coalescing
    /// may skip generations but never reorders them.
    WindowRefreshed {
        /// The refreshed window.
        win: u32,
        /// Delta patch or full re-run.
        kind: PushKind,
        /// The window's refresh generation for this screenful.
        generation: u64,
        /// The complete new screenful.
        screen: Screenful,
    },
}

impl Push {
    /// Encode to a payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        match self {
            Push::WindowRefreshed {
                win,
                kind,
                generation,
                screen,
            } => {
                w.u8(0);
                w.u32(*win);
                w.u8(kind.to_u8());
                w.u64(*generation);
                screen.encode(&mut w);
            }
        }
        w.into_bytes()
    }

    /// Decode a payload; the whole payload must be consumed.
    pub fn decode(payload: &[u8]) -> Result<Push, WireError> {
        let mut r = PayloadReader::new(payload);
        let push = match r.u8()? {
            0 => Push::WindowRefreshed {
                win: r.u32()?,
                kind: PushKind::from_u8(r.u8()?)?,
                generation: r.u64()?,
                screen: Screenful::decode(&mut r)?,
            },
            tag => return Err(WireError::BadTag { what: "push", tag }),
        };
        r.finish()?;
        Ok(push)
    }
}

/// Convenience: the session id a `HelloOk` carries, typed.
pub fn session_of(resp: &Response) -> Option<SessionId> {
    match resp {
        Response::HelloOk { session, .. } => Some(SessionId(*session)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello { version: 1 },
            Request::Ping,
            Request::Goodbye,
            Request::DefineView {
                name: "v".into(),
                src: "RANGE OF e IS emp RETRIEVE (e.name)".into(),
            },
            Request::OpenWindow {
                view: "v".into(),
                grid: true,
            },
            Request::CloseWindow { win: 3 },
            Request::BrowseNext { win: 1 },
            Request::BrowsePrev { win: 1 },
            Request::PageNext { win: 2 },
            Request::PagePrev { win: 2 },
            Request::EnterEdit { win: 1 },
            Request::EnterInsert { win: 1 },
            Request::EnterQuery { win: 1 },
            Request::SetField {
                win: 1,
                field: 4,
                text: "120".into(),
            },
            Request::Commit { win: 1 },
            Request::CancelMode { win: 1 },
            Request::ClearQuery { win: 1 },
            Request::DeleteCurrent { win: 1 },
            Request::Undo,
            Request::Refresh { win: 9 },
            Request::Quel {
                src: "RANGE OF e IS emp RETRIEVE (e.name)".into(),
            },
            Request::GetScreen { win: 7 },
            Request::MetricsDump,
            Request::FetchTrace { trace_id: 0xDEAD },
        ]
    }

    fn sample_screen() -> Screenful {
        Screenful {
            columns: vec!["name".into(), "salary".into()],
            rows: vec![
                vec![Value::Text("alice".into()), Value::Int(120)],
                vec![Value::Text("bob".into()), Value::Null],
            ],
            current: Some(1),
            position: Some(1),
            total: Some(2),
            mode: "Browse".into(),
            stale: false,
        }
    }

    #[test]
    fn request_roundtrip_all_variants() {
        for req in sample_requests() {
            let bytes = req.encode();
            let back = Request::decode(&bytes).unwrap();
            assert_eq!(req, back);
        }
    }

    #[test]
    fn response_roundtrip() {
        let samples = vec![
            Response::HelloOk {
                session: 5,
                version: 1,
            },
            Response::Pong,
            Response::Bye,
            Response::Ack,
            Response::WindowOpened {
                win: 2,
                updatable: true,
                generation: 1,
                screen: sample_screen(),
            },
            Response::Screen {
                win: 2,
                generation: 9,
                moved: false,
                screen: sample_screen(),
            },
            Response::Rows {
                columns: vec!["n".into()],
                rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            },
            Response::Error(ErrorFrame::from_wow(&WowError::LockConflict {
                table: "emp".into(),
                blocker: 3,
            })),
            Response::Metrics {
                text: "# TYPE wow_gauge gauge\nwow_pool_hits 12\n".into(),
            },
            Response::Trace {
                spans: vec![
                    TraceSpan {
                        trace_id: 9,
                        span_id: 1,
                        parent_id: 0,
                        op: "net_request".into(),
                        start_us: 100,
                        dur_ns: 5_000,
                        arg: 14,
                    },
                    TraceSpan {
                        trace_id: 9,
                        span_id: 2,
                        parent_id: 1,
                        op: "query_exec".into(),
                        start_us: 101,
                        dur_ns: 3_000,
                        arg: 2,
                    },
                ],
            },
        ];
        for resp in samples {
            let bytes = resp.encode();
            let back = Response::decode(&bytes).unwrap();
            assert_eq!(format!("{resp:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn push_roundtrip() {
        let push = Push::WindowRefreshed {
            win: 4,
            kind: PushKind::Delta,
            generation: 17,
            screen: sample_screen(),
        };
        let bytes = push.encode();
        let back = Push::decode(&bytes).unwrap();
        assert_eq!(format!("{push:?}"), format!("{back:?}"));
    }

    #[test]
    fn error_frame_preserves_structure() {
        let e = WowError::PropagationFailed {
            failures: vec![(3, "no such table: t".into()), (5, "boom".into())],
        };
        let frame = ErrorFrame::from_wow(&e);
        assert_eq!(frame.code, error_code::PROPAGATION_FAILED);
        let bytes = Response::Error(frame).encode();
        let back = Response::decode(&bytes).unwrap();
        let Response::Error(frame) = back else {
            panic!("expected error frame");
        };
        match frame.into_wow() {
            WowError::PropagationFailed { failures } => {
                assert_eq!(failures.len(), 2);
                assert_eq!(failures[0], (3, "no such table: t".to_string()));
            }
            other => panic!("expected PropagationFailed, got {other:?}"),
        }
    }

    #[test]
    fn lock_conflict_survives_the_wire_typed() {
        let e = WowError::LockConflict {
            table: "emp".into(),
            blocker: 7,
        };
        let wire = ErrorFrame::from_wow(&e);
        match wire.into_wow() {
            WowError::LockConflict { table, blocker } => {
                assert_eq!(table, "emp");
                assert_eq!(blocker, 7);
            }
            other => panic!("{other:?}"),
        }
    }

    /// Mutation fuzz: every single-byte corruption and every truncation of
    /// a valid payload must decode to an error or a value — never panic.
    #[test]
    fn decoders_survive_mutation() {
        let mut payloads: Vec<Vec<u8>> = sample_requests().iter().map(Request::encode).collect();
        payloads.push(
            Response::Screen {
                win: 1,
                generation: 3,
                moved: true,
                screen: sample_screen(),
            }
            .encode(),
        );
        payloads.push(
            Push::WindowRefreshed {
                win: 1,
                kind: PushKind::Full,
                generation: 2,
                screen: sample_screen(),
            }
            .encode(),
        );
        payloads.push(
            Response::Metrics {
                text: "wow_x 1\n".into(),
            }
            .encode(),
        );
        payloads.push(
            Response::Trace {
                spans: vec![TraceSpan {
                    trace_id: 1,
                    span_id: 2,
                    parent_id: 0,
                    op: "commit".into(),
                    start_us: 3,
                    dur_ns: 4,
                    arg: 5,
                }],
            }
            .encode(),
        );
        for payload in payloads {
            for cut in 0..payload.len() {
                let _ = Request::decode(&payload[..cut]);
                let _ = Response::decode(&payload[..cut]);
                let _ = Push::decode(&payload[..cut]);
            }
            for i in 0..payload.len() {
                for flip in [0x01u8, 0x80, 0xFF] {
                    let mut mutated = payload.clone();
                    mutated[i] ^= flip;
                    let _ = Request::decode(&mutated);
                    let _ = Response::decode(&mutated);
                    let _ = Push::decode(&mutated);
                }
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn screenful_display_marks_current_row() {
        let s = sample_screen();
        let text = s.to_string();
        assert!(text.contains("> bob"));
        assert!(text.contains("row 2/2"));
    }
}
