//! `wow-serve` — serve a durable world directory over TCP.
//!
//! ```text
//! wow-serve <dir> [addr]
//! ```
//!
//! Opens (or creates) the durable world at `<dir>` with
//! [`World::open_durable`], recovers whatever a previous incarnation left
//! behind, and serves it on `addr` (default `127.0.0.1:0`, an ephemeral
//! port). Prints exactly one line, `listening <addr>`, to stdout once the
//! socket is bound — test harnesses parse it to find the port.
//!
//! Shutdown protocol: the process reads stdin. EOF or a `quit` line
//! triggers a **graceful drain** — connections wind down, a durable
//! checkpoint is taken, and `drained` is printed before exit. `kill -9`
//! at any other moment is the crash the recovery path exists for: on the
//! next start the WAL replays and no committed write is lost.

use std::io::BufRead;
use wow_core::{World, WorldConfig};
use wow_net::server::{Server, ServerConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(dir) = args.next() else {
        eprintln!("usage: wow-serve <dir> [addr]");
        std::process::exit(2);
    };
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:0".to_string());
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("wow-serve: create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let world = match World::open_durable(WorldConfig::default(), &dir) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("wow-serve: open {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    if let Some(r) = world.db().recovery_report() {
        eprintln!(
            "wow-serve: recovered {} committed txn(s), {} op(s) replayed",
            r.committed.len(),
            r.replayed_ops
        );
    }
    let server = match Server::start(world, &addr, ServerConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wow-serve: bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    // The one line harnesses wait for; flushed so a piped reader sees it
    // before any client traffic starts.
    println!("listening {}", server.local_addr());
    use std::io::Write;
    std::io::stdout().flush().ok();
    // Park on stdin until the operator (or harness) asks for a drain.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    match server.drain() {
        Ok(_world) => {
            // stdout may already be closed (a harness that only read the
            // banner); a failed farewell is not a failed drain.
            let _ = writeln!(std::io::stdout(), "drained");
        }
        Err(e) => {
            eprintln!("wow-serve: drain: {e}");
            std::process::exit(1);
        }
    }
}
