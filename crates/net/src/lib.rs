//! # wow-net — a multi-client window server over a wire protocol
//!
//! The paper's clerks all sat at terminals wired to one machine; this
//! crate is that machine's modern shape. A [`server::Server`] owns a
//! [`World`](wow_core::World) and serves it to many TCP clients, each
//! mapped to its own session. The protocol covers the full clerk loop —
//! define views, open windows, browse, query-by-form, edit, commit, undo,
//! raw QUEL — and, crucially, **pushes**: when one clerk's commit changes
//! rows another clerk's window displays, the server sends that window's
//! new screenful unasked, exactly as the paper's shared-screen updates
//! appeared under the clerks' eyes.
//!
//! Dependency-free by construction: `std::net` sockets and threads only,
//! in the same spirit as `wow-par`'s std-only worker pool.
//!
//! * [`wire`] — length-prefixed frames and fuzz-resistant payload codecs.
//! * [`proto`] — typed requests / responses / pushes and the error frame.
//! * [`server`] — the accept loop, per-connection reader/writer threads,
//!   bounded coalescing outboxes, and the push consistency guarantee.
//! * [`client`] — a blocking client with generation-gated push delivery
//!   and crash reconnection (seeded backoff, session rebuild, window
//!   re-open with generation resync).
//!
//! ```no_run
//! use wow_net::{client::Client, server::{Server, ServerConfig}};
//! use wow_core::{World, WorldConfig};
//!
//! let mut world = World::new(WorldConfig::default());
//! world.db_mut().run("CREATE TABLE emp (name TEXT KEY, salary INT)").unwrap();
//! world.define_view("emps", "RANGE OF e IS emp RETRIEVE (e.name, e.salary)").unwrap();
//! let server = Server::start(world, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut clerk = Client::connect(server.local_addr()).unwrap();
//! clerk.quel(r#"APPEND TO emp (name = "alice", salary = 120)"#).unwrap();
//! let (win, updatable, screen) = clerk.open_window("emps", false).unwrap();
//! assert!(updatable);
//! assert_eq!(screen.rows.len(), 1);
//! clerk.goodbye().unwrap();
//! let _world = server.shutdown(); // hand the world back
//! ```

pub mod client;
pub mod proto;
pub mod server;
pub mod wire;

pub use client::{Client, ReconnectPolicy, ReconnectReport, ReopenedWindow};
pub use proto::{error_code, ErrorFrame, Push, PushKind, Request, Response, Screenful};
pub use server::{screenful_of, Server, ServerConfig};
pub use wire::{FrameKind, ReadError, WireError, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION};
