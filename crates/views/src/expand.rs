//! Query modification: expanding queries over views into queries over base
//! tables (Stonebraker's 1975 INGRES algorithm, the one the 1983 system sat
//! on).
//!
//! Expansion substitutes each reference to a view column with the view's
//! defining expression, conjoins the view's restriction into the query, and
//! replaces the view's range with the view's own (renamed) ranges. Nested
//! views flatten recursively.
//!
//! The alternative — materializing the view and querying the copy — is also
//! implemented ([`query_via_materialization`]) as the ablation baseline for
//! the Figure 2 benchmark.

use crate::catalog::{ViewCatalog, MAX_NESTING};
use crate::def::ViewDef;
use crate::error::{ViewError, ViewResult};
use std::collections::{BTreeMap, HashSet};
use wow_rel::db::Database;
use wow_rel::error::RelError;
use wow_rel::exec::{execute, Rows};
use wow_rel::expr::Expr;
use wow_rel::plan::logical::{QueryBlock, ScanSpec};
use wow_rel::plan::optimize;
use wow_rel::quel::ast::{RetrieveStmt, SortKey, Target};
use wow_rel::schema::Schema;

/// The result of expansion: ranges over base tables only, plus the
/// rewritten statement.
#[derive(Debug, Clone)]
pub struct Expanded {
    /// `(var, base_table)` pairs.
    pub ranges: Vec<(String, String)>,
    /// The rewritten statement.
    pub stmt: RetrieveStmt,
}

/// Rename the range-variable prefixes of every column reference in `expr`.
pub fn rename_vars(expr: &Expr, map: &BTreeMap<String, String>) -> Expr {
    match expr {
        Expr::ColumnRef(n) => {
            if let Some((var, col)) = n.split_once('.') {
                if let Some(new) = map.get(var) {
                    return Expr::ColumnRef(format!("{new}.{col}"));
                }
            }
            Expr::ColumnRef(n.clone())
        }
        Expr::Column(i) => Expr::Column(*i),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rename_vars(left, map)),
            right: Box::new(rename_vars(right, map)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rename_vars(expr, map)),
        },
        Expr::Like { expr, pattern } => Expr::Like {
            expr: Box::new(rename_vars(expr, map)),
            pattern: pattern.clone(),
        },
        Expr::IsNull(e) => Expr::IsNull(Box::new(rename_vars(e, map))),
    }
}

/// Replace references `var.col` by the view's defining expression for
/// `col`. Unknown columns error.
fn substitute(expr: &Expr, var: &str, defs: &BTreeMap<String, Expr>) -> ViewResult<Expr> {
    Ok(match expr {
        Expr::ColumnRef(n) => {
            if let Some((v, col)) = n.split_once('.') {
                if v == var {
                    return defs
                        .get(col)
                        .cloned()
                        .ok_or_else(|| ViewError::Rel(RelError::NoSuchColumn(n.clone())));
                }
            }
            Expr::ColumnRef(n.clone())
        }
        Expr::Column(i) => Expr::Column(*i),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(substitute(left, var, defs)?),
            right: Box::new(substitute(right, var, defs)?),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute(expr, var, defs)?),
        },
        Expr::Like { expr, pattern } => Expr::Like {
            expr: Box::new(substitute(expr, var, defs)?),
            pattern: pattern.clone(),
        },
        Expr::IsNull(e) => Expr::IsNull(Box::new(substitute(e, var, defs)?)),
    })
}

/// Substitute a *name* (used by GROUP BY / SORT BY): only allowed when the
/// view column is itself a plain base column.
fn substitute_name(name: &str, var: &str, defs: &BTreeMap<String, Expr>) -> ViewResult<String> {
    if let Some((v, col)) = name.split_once('.') {
        if v == var {
            return match defs.get(col) {
                Some(Expr::ColumnRef(base)) => Ok(base.clone()),
                Some(other) => Err(ViewError::Rel(RelError::Unsupported(format!(
                    "cannot group/sort by computed view column {name} = {other}"
                )))),
                None => Err(ViewError::Rel(RelError::NoSuchColumn(name.to_string()))),
            };
        }
    }
    Ok(name.to_string())
}

/// Expand a statement whose ranges may name views, producing ranges over
/// base tables only. The *outer* statement may aggregate; views referenced
/// as ranges must be aggregate-free (aggregate views cannot be flattened by
/// substitution — materialize them instead).
pub fn expand(
    db: &Database,
    vc: &ViewCatalog,
    ranges: &[(String, String)],
    stmt: &RetrieveStmt,
) -> ViewResult<Expanded> {
    expand_depth(db, vc, ranges, stmt, 0)
}

fn expand_depth(
    db: &Database,
    vc: &ViewCatalog,
    ranges: &[(String, String)],
    stmt: &RetrieveStmt,
    depth: usize,
) -> ViewResult<Expanded> {
    if depth > MAX_NESTING {
        return Err(ViewError::TooDeep(MAX_NESTING));
    }
    let mut out_ranges: Vec<(String, String)> = Vec::new();
    let mut stmt = stmt.clone();
    let mut used: HashSet<String> = ranges.iter().map(|(v, _)| v.clone()).collect();
    for (var, name) in ranges {
        if db.catalog().has_table(name) {
            out_ranges.push((var.clone(), name.clone()));
            continue;
        }
        let view = vc.get(name)?;
        if view.has_aggregates() {
            return Err(ViewError::Rel(RelError::Unsupported(format!(
                "aggregate view {name} cannot be expanded; materialize it instead"
            ))));
        }
        // Recursively flatten the view body first.
        let inner = expand_depth(db, vc, &view.ranges, &view.stmt, depth + 1)?;
        // Fresh names for the view's ranges.
        let mut rename: BTreeMap<String, String> = BTreeMap::new();
        for (ivar, _) in &inner.ranges {
            let mut candidate = format!("{var}_{ivar}");
            let mut n = 0;
            while used.contains(&candidate) {
                n += 1;
                candidate = format!("{var}_{ivar}{n}");
            }
            used.insert(candidate.clone());
            rename.insert(ivar.clone(), candidate);
        }
        for (ivar, itable) in &inner.ranges {
            out_ranges.push((rename[ivar].clone(), itable.clone()));
        }
        // Build the substitution map: view column → renamed defining expr.
        let cols = view.column_names();
        let mut defs: BTreeMap<String, Expr> = BTreeMap::new();
        for (col, target) in cols.iter().zip(&inner.stmt.targets) {
            let Target::Expr { expr, .. } = target else {
                unreachable!("aggregate views rejected above");
            };
            defs.insert(col.clone(), rename_vars(expr, &rename));
        }
        // Rewrite the outer statement.
        let mut new_targets = Vec::with_capacity(stmt.targets.len());
        for t in &stmt.targets {
            new_targets.push(match t {
                Target::Expr { name, expr } => Target::Expr {
                    name: name.clone(),
                    expr: substitute(expr, var, &defs)?,
                },
                Target::Agg { name, func, arg } => Target::Agg {
                    name: name.clone(),
                    func: *func,
                    arg: match arg {
                        Some(a) => Some(substitute(a, var, &defs)?),
                        None => None,
                    },
                },
            });
        }
        stmt.targets = new_targets;
        stmt.where_ = match stmt.where_.take() {
            Some(w) => Some(substitute(&w, var, &defs)?),
            None => None,
        };
        let mut gb = Vec::with_capacity(stmt.group_by.len());
        for g in &stmt.group_by {
            gb.push(substitute_name(g, var, &defs)?);
        }
        stmt.group_by = gb;
        let mut sb = Vec::with_capacity(stmt.sort_by.len());
        for k in &stmt.sort_by {
            sb.push(SortKey {
                column: substitute_name(&k.column, var, &defs)?,
                ascending: k.ascending,
            });
        }
        stmt.sort_by = sb;
        // Conjoin the view's restriction (renamed).
        if let Some(vw) = &inner.stmt.where_ {
            let renamed = rename_vars(vw, &rename);
            stmt.where_ = Some(match stmt.where_.take() {
                Some(w) => Expr::and(w, renamed),
                None => renamed,
            });
        }
        // View body ordering/limit is ignored: views are sets.
    }
    Ok(Expanded {
        ranges: out_ranges,
        stmt,
    })
}

/// A declarative query against one view (used by browse and the benches).
#[derive(Debug, Clone, Default)]
pub struct ViewQuery {
    /// Extra restriction, referencing view columns by bare name.
    pub pred: Option<Expr>,
    /// Ordering, by bare view-column name.
    pub sort: Vec<SortKey>,
    /// `(offset, count)`.
    pub limit: Option<(usize, usize)>,
}

/// Qualify bare view-column references with a range variable.
fn qualify_refs(expr: &Expr, var: &str, cols: &[String]) -> Expr {
    match expr {
        Expr::ColumnRef(n) if !n.contains('.') && cols.iter().any(|c| c == n) => {
            Expr::ColumnRef(format!("{var}.{n}"))
        }
        Expr::ColumnRef(n) => Expr::ColumnRef(n.clone()),
        Expr::Column(i) => Expr::Column(*i),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(qualify_refs(left, var, cols)),
            right: Box::new(qualify_refs(right, var, cols)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(qualify_refs(expr, var, cols)),
        },
        Expr::Like { expr, pattern } => Expr::Like {
            expr: Box::new(qualify_refs(expr, var, cols)),
            pattern: pattern.clone(),
        },
        Expr::IsNull(e) => Expr::IsNull(Box::new(qualify_refs(e, var, cols))),
    }
}

/// Build the expanded, optimizable query block for `SELECT * FROM view`
/// with optional extra restriction / ordering / limit.
pub fn view_query_block(
    db: &Database,
    vc: &ViewCatalog,
    view_name: &str,
    query: &ViewQuery,
) -> ViewResult<QueryBlock> {
    let view = vc.get(view_name)?;
    let cols = view.column_names();
    if view.has_aggregates() {
        // Top-level aggregate view: expand only its ranges; extra
        // predicates would be HAVING, which the block can't express.
        if query.pred.is_some() {
            return Err(ViewError::Rel(RelError::Unsupported(
                "restrictions on aggregate views are not supported; filter client-side".into(),
            )));
        }
        let inner = expand(db, vc, &view.ranges, &view.stmt)?;
        let mut stmt = inner.stmt;
        if !query.sort.is_empty() {
            stmt.sort_by = query.sort.clone();
        }
        stmt.limit = query.limit.or(stmt.limit);
        return block_from(db, &inner.ranges, &stmt);
    }
    // Wrap the view as the single range `v` and expand.
    let var = "v";
    let targets: Vec<Target> = cols
        .iter()
        .map(|c| Target::Expr {
            name: Some(c.clone()),
            expr: Expr::ColumnRef(format!("{var}.{c}")),
        })
        .collect();
    let stmt = RetrieveStmt {
        unique: false,
        targets,
        where_: query.pred.as_ref().map(|p| qualify_refs(p, var, &cols)),
        group_by: Vec::new(),
        sort_by: query
            .sort
            .iter()
            .map(|k| SortKey {
                // Bare names are output-column names; the optimizer resolves
                // them against the projection.
                column: k.column.clone(),
                ascending: k.ascending,
            })
            .collect(),
        limit: query.limit,
    };
    let expanded = expand(db, vc, &[(var.to_string(), view_name.to_string())], &stmt)?;
    block_from(db, &expanded.ranges, &expanded.stmt)
}

fn block_from(
    db: &Database,
    ranges: &[(String, String)],
    stmt: &RetrieveStmt,
) -> ViewResult<QueryBlock> {
    let _ = db;
    let scans = ranges
        .iter()
        .map(|(v, t)| ScanSpec {
            alias: v.clone(),
            table: t.clone(),
        })
        .collect();
    let conjuncts = match &stmt.where_ {
        Some(w) => w.clone().split_conjuncts(),
        None => Vec::new(),
    };
    Ok(QueryBlock {
        unique: stmt.unique,
        scans,
        conjuncts,
        targets: stmt.targets.clone(),
        group_by: stmt.group_by.clone(),
        sort_by: stmt.sort_by.clone(),
        limit: stmt.limit,
    })
}

/// Execute a view query through expansion (the system's normal path).
pub fn run_view_query(
    db: &mut Database,
    vc: &ViewCatalog,
    view_name: &str,
    query: &ViewQuery,
) -> ViewResult<Rows> {
    let block = view_query_block(db, vc, view_name, query)?;
    let plan = optimize(db, &block)?;
    Ok(execute(db, &plan)?)
}

/// The output schema of a view.
pub fn view_schema(db: &Database, vc: &ViewCatalog, view_name: &str) -> ViewResult<Schema> {
    let block = view_query_block(db, vc, view_name, &ViewQuery::default())?;
    let plan = optimize(db, &block)?;
    Ok(plan.output_schema(db)?)
}

/// Ablation baseline: materialize the whole view, then filter/sort/limit
/// the copy in memory. Same answers as [`run_view_query`], different cost
/// profile — Figure 2's comparison point.
pub fn query_via_materialization(
    db: &mut Database,
    vc: &ViewCatalog,
    view_name: &str,
    query: &ViewQuery,
) -> ViewResult<Rows> {
    let mut rows = run_view_query(db, vc, view_name, &ViewQuery::default())?;
    if let Some(pred) = &query.pred {
        let resolved = pred.clone().resolve(&rows.schema)?;
        let mut err = None;
        rows.tuples
            .retain(|t| match wow_rel::eval::eval_pred(&resolved, t) {
                Ok(k) => k,
                Err(e) => {
                    err = Some(e);
                    false
                }
            });
        if let Some(e) = err {
            return Err(e.into());
        }
    }
    if !query.sort.is_empty() {
        let keys: Vec<(usize, bool)> = query
            .sort
            .iter()
            .map(|k| Ok((rows.schema.resolve(&k.column)?, k.ascending)))
            .collect::<Result<_, RelError>>()?;
        wow_rel::exec::sort::sort_rows(&mut rows.tuples, &keys);
    }
    if let Some((offset, count)) = query.limit {
        let start = offset.min(rows.tuples.len());
        let end = (start + count).min(rows.tuples.len());
        rows.tuples = rows.tuples[start..end].to_vec();
    }
    Ok(rows)
}

/// Expand a view definition fully (exposed for the updatability analysis
/// and tests).
pub fn expand_view(db: &Database, vc: &ViewCatalog, def: &ViewDef) -> ViewResult<Expanded> {
    expand(db, vc, &def.ranges, &def.stmt)
}
