//! The view catalog.

use crate::def::ViewDef;
use crate::error::{ViewError, ViewResult};
use std::collections::BTreeMap;

/// Maximum view-over-view nesting depth accepted at registration.
pub const MAX_NESTING: usize = 16;

/// A registry of view definitions.
///
/// Registration is cycle-safe: a view may range over previously registered
/// views, and a definition that would create a reference cycle (or nest
/// deeper than [`MAX_NESTING`]) is rejected.
#[derive(Debug, Default)]
pub struct ViewCatalog {
    views: BTreeMap<String, ViewDef>,
    /// Bumped on every successful register/remove so dependency caches
    /// (see [`crate::deps::DepIndex`]) can detect view DDL cheaply.
    generation: u64,
}

impl ViewCatalog {
    /// Empty catalog.
    pub fn new() -> ViewCatalog {
        ViewCatalog::default()
    }

    /// Generation of the view set; changes exactly when a view is
    /// registered or removed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether a view with this name exists.
    pub fn has(&self, name: &str) -> bool {
        self.views.contains_key(name)
    }

    /// Look up a view.
    pub fn get(&self, name: &str) -> ViewResult<&ViewDef> {
        self.views
            .get(name)
            .ok_or_else(|| ViewError::NoSuchView(name.to_string()))
    }

    /// All view names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.views.keys().cloned().collect()
    }

    /// Register a view. Rejects duplicate view names, duplicate *column*
    /// names (two targets that would collapse during substitution),
    /// self-reference, cycles, and excessive nesting.
    pub fn register(&mut self, def: ViewDef) -> ViewResult<()> {
        if self.views.contains_key(&def.name) {
            return Err(ViewError::AlreadyExists(def.name.clone()));
        }
        let mut cols = def.column_names();
        cols.sort();
        let before = cols.len();
        cols.dedup();
        if cols.len() != before {
            return Err(ViewError::Rel(wow_rel::RelError::Unsupported(format!(
                "view {} has duplicate column names; name targets explicitly",
                def.name
            ))));
        }
        // Depth check (which also catches cycles, since any range must name
        // an already-registered view — self-reference can't resolve).
        for (_, t) in &def.ranges {
            if t == &def.name {
                return Err(ViewError::Cycle(def.name.clone()));
            }
            if self.has(t) {
                let d = self.depth_of(t, 1)?;
                if d + 1 > MAX_NESTING {
                    return Err(ViewError::TooDeep(MAX_NESTING));
                }
            }
        }
        self.views.insert(def.name.clone(), def);
        self.generation += 1;
        Ok(())
    }

    fn depth_of(&self, name: &str, acc: usize) -> ViewResult<usize> {
        if acc > MAX_NESTING {
            return Err(ViewError::TooDeep(MAX_NESTING));
        }
        let Ok(def) = self.get(name) else {
            return Ok(acc); // base table
        };
        let mut max = acc;
        for (_, t) in &def.ranges {
            if self.has(t) {
                max = max.max(self.depth_of(t, acc + 1)?);
            }
        }
        Ok(max)
    }

    /// Remove a view. Fails if another view ranges over it.
    pub fn remove(&mut self, name: &str) -> ViewResult<ViewDef> {
        if !self.views.contains_key(name) {
            return Err(ViewError::NoSuchView(name.to_string()));
        }
        if let Some(dependent) = self
            .views
            .values()
            .find(|v| v.name != name && v.ranges.iter().any(|(_, t)| t == name))
        {
            return Err(ViewError::Cycle(format!(
                "{} is used by view {}",
                name, dependent.name
            )));
        }
        let def = self.views.remove(name).expect("checked above");
        self.generation += 1;
        Ok(def)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str, over: &str) -> ViewDef {
        ViewDef::parse(name, &format!("RANGE OF x IS {over} RETRIEVE (x.a)")).unwrap()
    }

    #[test]
    fn register_and_get() {
        let mut c = ViewCatalog::new();
        c.register(v("v1", "base")).unwrap();
        assert!(c.has("v1"));
        assert_eq!(c.get("v1").unwrap().name, "v1");
        assert!(c.get("nope").is_err());
        assert_eq!(c.names(), vec!["v1"]);
    }

    #[test]
    fn duplicates_rejected() {
        let mut c = ViewCatalog::new();
        c.register(v("v1", "base")).unwrap();
        assert!(matches!(
            c.register(v("v1", "base")),
            Err(ViewError::AlreadyExists(_))
        ));
    }

    #[test]
    fn duplicate_column_names_rejected() {
        let mut c = ViewCatalog::new();
        let dup =
            ViewDef::parse("dup", "RANGE OF x IS a RANGE OF y IS b RETRIEVE (x.v, y.v)").unwrap();
        assert!(c.register(dup).is_err());
        // Naming one of them fixes it.
        let ok = ViewDef::parse(
            "ok",
            "RANGE OF x IS a RANGE OF y IS b RETRIEVE (x.v, other = y.v)",
        )
        .unwrap();
        c.register(ok).unwrap();
    }

    #[test]
    fn self_reference_rejected() {
        let mut c = ViewCatalog::new();
        assert!(matches!(
            c.register(v("v1", "v1")),
            Err(ViewError::Cycle(_))
        ));
    }

    #[test]
    fn nesting_chain_allowed_to_limit() {
        // v0 sits at level 1; vN at level N+1. Levels up to MAX_NESTING are
        // accepted, one more is rejected.
        let mut c = ViewCatalog::new();
        c.register(v("v0", "base")).unwrap();
        for i in 1..MAX_NESTING {
            c.register(v(&format!("v{i}"), &format!("v{}", i - 1)))
                .unwrap();
        }
        let too_deep = v("vdeep", &format!("v{}", MAX_NESTING - 1));
        assert!(matches!(c.register(too_deep), Err(ViewError::TooDeep(_))));
    }

    #[test]
    fn remove_respects_dependents() {
        let mut c = ViewCatalog::new();
        c.register(v("inner", "base")).unwrap();
        c.register(v("outer", "inner")).unwrap();
        assert!(c.remove("inner").is_err());
        c.remove("outer").unwrap();
        c.remove("inner").unwrap();
        assert!(c.names().is_empty());
    }
}
