//! Errors of the view layer.

use std::fmt;
use wow_rel::RelError;

/// Result alias for the view layer.
pub type ViewResult<T> = Result<T, ViewError>;

/// Errors raised while defining, expanding, or updating through views.
#[derive(Debug)]
pub enum ViewError {
    /// Underlying relational-engine failure.
    Rel(RelError),
    /// A named view does not exist.
    NoSuchView(String),
    /// A view with this name already exists.
    AlreadyExists(String),
    /// View definitions may not be cyclic.
    Cycle(String),
    /// Expansion exceeded the nesting limit.
    TooDeep(usize),
    /// The view is not updatable; the payload explains why.
    NotUpdatable {
        /// View name.
        view: String,
        /// Human-readable reasons (one per violated rule).
        reasons: Vec<String>,
    },
    /// A through-view write would produce a row outside the view.
    EscapesView {
        /// View name.
        view: String,
    },
    /// A through-view write touches a column the view does not expose as a
    /// plain base column.
    NotWritable {
        /// View column name.
        column: String,
    },
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::Rel(e) => write!(f, "relational engine: {e}"),
            ViewError::NoSuchView(v) => write!(f, "no such view: {v}"),
            ViewError::AlreadyExists(v) => write!(f, "view already exists: {v}"),
            ViewError::Cycle(v) => write!(f, "cyclic view definition involving {v}"),
            ViewError::TooDeep(n) => write!(f, "view nesting deeper than {n}"),
            ViewError::NotUpdatable { view, reasons } => {
                write!(f, "view {view} is not updatable: {}", reasons.join("; "))
            }
            ViewError::EscapesView { view } => {
                write!(f, "write would move the row outside view {view}")
            }
            ViewError::NotWritable { column } => {
                write!(f, "view column {column} is not writable")
            }
        }
    }
}

impl std::error::Error for ViewError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ViewError::Rel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for ViewError {
    fn from(e: RelError) -> Self {
        ViewError::Rel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            ViewError::NoSuchView("v".into()).to_string(),
            "no such view: v"
        );
        let e = ViewError::NotUpdatable {
            view: "v".into(),
            reasons: vec!["has aggregates".into(), "two ranges".into()],
        };
        assert!(e.to_string().contains("has aggregates; two ranges"));
    }

    #[test]
    fn rel_errors_convert() {
        let e: ViewError = RelError::NoSuchTable("t".into()).into();
        assert!(matches!(e, ViewError::Rel(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
