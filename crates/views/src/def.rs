//! View definitions.

use crate::error::{ViewError, ViewResult};
use wow_rel::db::Database;
use wow_rel::quel::ast::{RetrieveStmt, Statement, Target};
use wow_rel::quel::parse_program;
use wow_rel::RelError;

/// A named, stored query: the "view" each window looks through.
///
/// A view carries its own range declarations, so its definition is
/// self-contained and does not depend on session `RANGE OF` state:
///
/// ```text
/// ranges: [("e", "emp")]
/// stmt:   RETRIEVE (e.name, e.salary) WHERE e.dept = "toy"
/// ```
///
/// A range may name a base table *or another view* — expansion flattens the
/// nesting.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    /// View name.
    pub name: String,
    /// Range declarations `(variable, table-or-view)`.
    pub ranges: Vec<(String, String)>,
    /// The body (targets + WHERE + ordering defaults for browsing).
    pub stmt: RetrieveStmt,
}

impl ViewDef {
    /// Parse a definition of the form
    /// `RANGE OF e IS emp ... RETRIEVE (...) WHERE ...`.
    ///
    /// The trailing `RETRIEVE` is the body; everything before it must be
    /// `RANGE OF` declarations.
    pub fn parse(name: &str, src: &str) -> ViewResult<ViewDef> {
        let stmts = parse_program(src)?;
        let mut ranges = Vec::new();
        let mut body = None;
        for s in stmts {
            match s {
                Statement::RangeOf { var, table } => ranges.push((var, table)),
                Statement::Retrieve(r) => {
                    if body.is_some() {
                        return Err(ViewError::Rel(RelError::Unsupported(
                            "a view has exactly one RETRIEVE body".into(),
                        )));
                    }
                    body = Some(r);
                }
                other => {
                    return Err(ViewError::Rel(RelError::Unsupported(format!(
                        "statement not allowed in a view definition: {other:?}"
                    ))))
                }
            }
        }
        let stmt = body.ok_or_else(|| {
            ViewError::Rel(RelError::Unsupported(
                "view definition needs a RETRIEVE body".into(),
            ))
        })?;
        Ok(ViewDef {
            name: name.to_string(),
            ranges,
            stmt,
        })
    }

    /// The output column names of the view, in order.
    pub fn column_names(&self) -> Vec<String> {
        self.stmt
            .targets
            .iter()
            .map(|t| match t {
                Target::Expr { name, expr } => name.clone().unwrap_or_else(|| default_name(expr)),
                Target::Agg { name, func, .. } => name
                    .clone()
                    .unwrap_or_else(|| func.keyword().to_lowercase()),
            })
            .collect()
    }

    /// Whether the body computes aggregates.
    pub fn has_aggregates(&self) -> bool {
        self.stmt.has_aggregates()
    }

    /// Whether every range names an existing base table in `db` (views are
    /// checked by the catalog instead).
    pub fn ranges_resolve(&self, db: &Database, view_exists: impl Fn(&str) -> bool) -> bool {
        self.ranges
            .iter()
            .all(|(_, t)| db.catalog().has_table(t) || view_exists(t))
    }
}

/// Default view-column name: the bare column part of a reference
/// (`e.salary` → `salary`) so view schemas read like base schemas; computed
/// targets should be named explicitly and otherwise fall back to their
/// printed form.
fn default_name(expr: &wow_rel::expr::Expr) -> String {
    match expr {
        wow_rel::expr::Expr::ColumnRef(n) => n
            .split_once('.')
            .map(|(_, bare)| bare.to_string())
            .unwrap_or_else(|| n.clone()),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_view() {
        let v = ViewDef::parse(
            "toy_emps",
            r#"RANGE OF e IS emp RETRIEVE (e.name, pay = e.salary) WHERE e.dept = "toy""#,
        )
        .unwrap();
        assert_eq!(v.ranges, vec![("e".to_string(), "emp".to_string())]);
        assert_eq!(v.column_names(), vec!["name", "pay"]);
        assert!(!v.has_aggregates());
    }

    #[test]
    fn parse_join_view() {
        let v = ViewDef::parse(
            "emp_dept",
            "RANGE OF e IS emp RANGE OF d IS dept
             RETRIEVE (e.name, d.dname) WHERE e.dept_id = d.id",
        )
        .unwrap();
        assert_eq!(v.ranges.len(), 2);
    }

    #[test]
    fn aggregate_views_flagged() {
        let v = ViewDef::parse(
            "dept_totals",
            "RANGE OF e IS emp RETRIEVE (e.dept, total = SUM(e.salary)) GROUP BY e.dept",
        )
        .unwrap();
        assert!(v.has_aggregates());
        assert_eq!(v.column_names(), vec!["dept", "total"]);
    }

    #[test]
    fn rejects_multiple_bodies_and_ddl() {
        assert!(ViewDef::parse("v", "RETRIEVE (x) RETRIEVE (y)").is_err());
        assert!(ViewDef::parse("v", "CREATE TABLE t (a INT)").is_err());
        assert!(ViewDef::parse("v", "RANGE OF e IS emp").is_err());
    }

    #[test]
    fn unnamed_computed_target_gets_expression_name() {
        let v = ViewDef::parse("v", "RANGE OF e IS emp RETRIEVE (e.salary * 2)").unwrap();
        assert_eq!(v.column_names(), vec!["(e.salary * 2)"]);
    }
}
