//! # wow-views
//!
//! The view layer of *Windows on the World*: every window displays a form
//! bound to a **view** — a stored relational query. This crate provides:
//!
//! * [`def`] — view definitions: a named target list over declared ranges
//!   with an optional restriction, i.e. a stored `RETRIEVE`.
//! * [`catalog`] — the view catalog, with cycle-safe registration.
//! * [`expand`] — **query modification** (Stonebraker 1975): rewriting a
//!   query over views into a query over base tables by substituting target
//!   expressions and conjoining view predicates. Views nest.
//! * [`updatable`] — the classical updatability analysis: a view admits
//!   updates when it ranges over a single base relation, computes no
//!   aggregates, projects real columns, and **preserves the key**.
//! * [`translate`] — translating window edits (update/insert/delete on view
//!   rows) into base-table DML, including the "row escapes the view" check.
//! * [`deps`] — the dependency graph from views to base tables, used by the
//!   window manager to decide which windows to refresh after a commit.
//! * [`delta`] — incremental view maintenance: classifying views as
//!   delta-maintainable ([`delta::DeltaPlan`]) and pushing base-table write
//!   deltas through selection, projection, and join to produce view-row
//!   deltas windows apply in place.

pub mod catalog;
pub mod def;
pub mod delta;
pub mod deps;
pub mod error;
pub mod expand;
pub mod translate;
pub mod updatable;

pub use catalog::ViewCatalog;
pub use def::ViewDef;
pub use deps::DepIndex;
pub use error::{ViewError, ViewResult};
