//! Incremental view maintenance: pushing base-table write deltas through
//! the view algebra.
//!
//! The classic delta rules, specialized to this system's view language
//! (select–project–join over base relations, after [`crate::expand`]
//! flattening):
//!
//! * **Selection** filters the delta: a written row enters/leaves the view
//!   according to the view predicate evaluated on its old and new images.
//! * **Projection / rename** rewrites the delta through the view's target
//!   expressions.
//! * **Join** probes the *other* side: the written relation's range
//!   variable is bound to each delta row (turning its column references
//!   into literals), leaving a residual query over the remaining relations
//!   whose equality conjuncts the optimizer satisfies with index probes.
//!   Existence probes on `wow-storage`'s hash/B+tree indexes short-circuit
//!   the common case where a written row joins with nothing.
//! * **Aggregates, DISTINCT, grouping, self-joins** are not deltable here;
//!   [`DeltaPlan::NonDeltable`] tells the caller to fall back to a full
//!   refresh.
//!
//! The per-(view, table) analysis is cached in [`crate::deps::DepIndex`]
//! alongside the dependency map, under the same generation invalidation.

use crate::catalog::ViewCatalog;
use crate::error::{ViewError, ViewResult};
use crate::expand::expand_view;
use std::collections::BTreeMap;
use wow_rel::db::Database;
use wow_rel::delta::{bind_var, key_bytes, BaseDelta};
use wow_rel::error::RelError;
use wow_rel::eval::{eval, eval_pred};
use wow_rel::expr::{BinOp, Expr};
use wow_rel::plan::logical::{QueryBlock, ScanSpec};
use wow_rel::plan::optimize;
use wow_rel::quel::ast::{RetrieveStmt, Target};
use wow_rel::tuple::Tuple;
use wow_storage::Rid;

/// Largest base delta a join view will probe row-by-row; bigger writes fall
/// back to a full refresh (the refresh is amortized over that many rows
/// anyway).
pub const JOIN_DELTA_CAP: usize = 64;

/// Largest view delta worth materializing for a join view before a full
/// refresh is cheaper for the window to swallow.
pub const JOIN_ROWS_CAP: usize = 256;

/// One view-shaped delta row. `rid`/`key` identify the base row behind it
/// for single-relation views (what updatable browse cursors patch by);
/// join-view rows carry neither.
#[derive(Debug, Clone)]
pub struct DeltaRow {
    /// Base rid behind the view row (single-relation views only).
    pub rid: Option<Rid>,
    /// Primary-key index key bytes of the base row (single-relation views
    /// over keyed tables only) — the sort key of `pk_<table>` cursors.
    pub key: Option<Vec<u8>>,
    /// The view-shaped tuple.
    pub row: Tuple,
}

/// A base-table delta translated into view rows.
#[derive(Debug, Clone, Default)]
pub struct ViewDelta {
    /// View rows that appeared.
    pub inserted: Vec<DeltaRow>,
    /// View rows that vanished.
    pub deleted: Vec<DeltaRow>,
    /// View rows patched in place: `(old, new)`.
    pub updated: Vec<(DeltaRow, DeltaRow)>,
}

impl ViewDelta {
    /// No visible change.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty() && self.updated.is_empty()
    }

    /// Number of delta rows (updates count once).
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len() + self.updated.len()
    }
}

/// Selection + projection over the written table itself.
#[derive(Debug, Clone)]
pub struct SinglePlan {
    /// The written base table.
    pub table: String,
    /// Its range variable in the expanded view.
    pub alias: String,
    /// The view's restriction (alias-qualified, unresolved).
    pub pred: Option<Expr>,
    /// The view's target expressions (alias-qualified, unresolved).
    pub targets: Vec<Expr>,
    /// Primary-key column indexes of the base table (empty = no key).
    pub key_cols: Vec<usize>,
}

/// An equality link from the written table to an indexed column of another
/// relation in the join — the existence-probe fast path.
#[derive(Debug, Clone)]
pub struct ProbeSpec {
    /// Column of the written table whose value keys the probe.
    pub col: usize,
    /// Index on the other relation's join column.
    pub index: String,
}

/// Join view reading the written table exactly once.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    /// The written base table.
    pub table: String,
    /// Its range variable in the expanded view.
    pub var: String,
    /// Every range of the expanded view (including `var`).
    pub ranges: Vec<(String, String)>,
    /// The expanded statement (targets/where over base variables).
    pub stmt: RetrieveStmt,
    /// Index existence probes derivable from equality conjuncts.
    pub probes: Vec<ProbeSpec>,
}

/// How (whether) a view's extension can be maintained incrementally under
/// writes to one base table.
#[derive(Debug, Clone)]
pub enum DeltaPlan {
    /// The view does not read the table; writes to it change nothing.
    Unaffected,
    /// Single-relation view: selection filters the delta, projection
    /// rewrites it.
    Single(SinglePlan),
    /// Join view: bind the written variable, run the residual.
    Join(JoinPlan),
    /// Not deltable (aggregates, DISTINCT, grouping, self-joins); callers
    /// fall back to a full refresh. The string names the rule that failed.
    NonDeltable(&'static str),
}

/// Analyze how writes to `table` move through `view`. Pure analysis over
/// the expanded definition — cache the result ([`crate::deps::DepIndex`]
/// does, keyed by catalog generations).
pub fn analyze_delta(
    db: &Database,
    vc: &ViewCatalog,
    view: &str,
    table: &str,
) -> ViewResult<DeltaPlan> {
    let def = vc.get(view)?;
    if def.has_aggregates() {
        return Ok(DeltaPlan::NonDeltable("aggregates"));
    }
    let expanded = match expand_view(db, vc, def) {
        Ok(e) => e,
        // A view that cannot be expanded cannot be delta-maintained either;
        // the full-refresh path owns reporting whatever is wrong with it.
        Err(ViewError::Rel(RelError::Unsupported(_))) => {
            return Ok(DeltaPlan::NonDeltable("not expandable"))
        }
        Err(e) => return Err(e),
    };
    if expanded.stmt.unique {
        return Ok(DeltaPlan::NonDeltable("DISTINCT"));
    }
    if !expanded.stmt.group_by.is_empty() {
        return Ok(DeltaPlan::NonDeltable("grouping"));
    }
    let mut over_table = expanded.ranges.iter().filter(|(_, t)| t == table);
    let Some((var, _)) = over_table.next() else {
        return Ok(DeltaPlan::Unaffected);
    };
    if over_table.next().is_some() {
        return Ok(DeltaPlan::NonDeltable("self-join"));
    }
    let var = var.clone();
    let targets: Vec<Expr> = expanded
        .stmt
        .targets
        .iter()
        .map(|t| match t {
            Target::Expr { expr, .. } => expr.clone(),
            Target::Agg { .. } => unreachable!("aggregates rejected above"),
        })
        .collect();
    if expanded.ranges.len() == 1 {
        let key_cols = db.catalog().table(table)?.key.clone();
        return Ok(DeltaPlan::Single(SinglePlan {
            table: table.to_string(),
            alias: var,
            pred: expanded.stmt.where_.clone(),
            targets,
            key_cols,
        }));
    }
    let probes = find_probes(db, &expanded.ranges, &var, table, &expanded.stmt.where_)?;
    Ok(DeltaPlan::Join(JoinPlan {
        table: table.to_string(),
        var,
        ranges: expanded.ranges.clone(),
        stmt: expanded.stmt,
        probes,
    }))
}

/// Derive existence probes from equality conjuncts `var.a = other.b` where
/// `other`'s relation has an index on exactly `b`.
fn find_probes(
    db: &Database,
    ranges: &[(String, String)],
    var: &str,
    table: &str,
    where_: &Option<Expr>,
) -> ViewResult<Vec<ProbeSpec>> {
    let Some(w) = where_ else {
        return Ok(Vec::new());
    };
    let var_of = |name: &str| -> Option<(String, String)> {
        let (v, col) = name.split_once('.')?;
        Some((v.to_string(), col.to_string()))
    };
    let schema = &db.catalog().table(table)?.schema;
    let mut probes = Vec::new();
    for conj in w.clone().split_conjuncts() {
        let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = &conj
        else {
            continue;
        };
        let (Expr::ColumnRef(a), Expr::ColumnRef(b)) = (left.as_ref(), right.as_ref()) else {
            continue;
        };
        let (Some((va, ca)), Some((vb, cb))) = (var_of(a), var_of(b)) else {
            continue;
        };
        // Orient so `var` is on the left.
        let (written_col, other_var, other_col) = if va == var && vb != var {
            (ca, vb, cb)
        } else if vb == var && va != var {
            (cb, va, ca)
        } else {
            continue;
        };
        let Some((_, other_table)) = ranges.iter().find(|(v, _)| *v == other_var) else {
            continue;
        };
        let Some(index) = db.index_on(other_table, &other_col) else {
            continue;
        };
        let Ok(col) = schema.resolve(&written_col) else {
            continue;
        };
        probes.push(ProbeSpec { col, index });
    }
    Ok(probes)
}

/// Translate a base delta into view rows under `plan`. Returns `None` when
/// the translation would cost more than the full refresh it replaces (only
/// join plans give up, and only on oversized deltas).
pub fn compute_view_delta(
    db: &mut Database,
    plan: &DeltaPlan,
    delta: &BaseDelta,
) -> ViewResult<Option<ViewDelta>> {
    match plan {
        DeltaPlan::Unaffected => Ok(Some(ViewDelta::default())),
        DeltaPlan::NonDeltable(_) => Ok(None),
        DeltaPlan::Single(p) => single_delta(db, p, delta).map(Some),
        DeltaPlan::Join(p) => join_delta(db, p, delta),
    }
}

fn single_delta(db: &mut Database, p: &SinglePlan, delta: &BaseDelta) -> ViewResult<ViewDelta> {
    let info = db.catalog().table(&p.table)?.clone();
    let schema = info.schema.qualified(&p.alias);
    let pred = match &p.pred {
        Some(e) => Some(e.clone().resolve(&schema)?),
        None => None,
    };
    let targets: Vec<Expr> = p
        .targets
        .iter()
        .map(|e| e.clone().resolve(&schema))
        .collect::<Result<_, _>>()?;
    let passes = |row: &Tuple| -> ViewResult<bool> {
        Ok(match &pred {
            Some(e) => eval_pred(e, row)?,
            None => true,
        })
    };
    let project = |rid: Rid, row: &Tuple| -> ViewResult<DeltaRow> {
        let mut vals = Vec::with_capacity(targets.len());
        for t in &targets {
            vals.push(eval(t, row)?);
        }
        Ok(DeltaRow {
            rid: Some(rid),
            key: key_bytes(&p.key_cols, row),
            row: Tuple::new(vals),
        })
    };
    let mut out = ViewDelta::default();
    for (rid, row) in &delta.inserted {
        if passes(row)? {
            out.inserted.push(project(*rid, row)?);
        }
    }
    for (rid, row) in &delta.deleted {
        if passes(row)? {
            out.deleted.push(project(*rid, row)?);
        }
    }
    for (rid, old, new) in &delta.updated {
        match (passes(old)?, passes(new)?) {
            (true, true) => out.updated.push((project(*rid, old)?, project(*rid, new)?)),
            (true, false) => out.deleted.push(project(*rid, old)?),
            (false, true) => out.inserted.push(project(*rid, new)?),
            (false, false) => {}
        }
    }
    Ok(out)
}

fn join_delta(db: &mut Database, p: &JoinPlan, delta: &BaseDelta) -> ViewResult<Option<ViewDelta>> {
    if delta.len() > JOIN_DELTA_CAP {
        return Ok(None);
    }
    let info = db.catalog().table(&p.table)?.clone();
    let schema = info.schema.qualified(&p.var);
    let mut out = ViewDelta::default();
    let wrap = |tuples: Vec<Tuple>| {
        tuples.into_iter().map(|row| DeltaRow {
            rid: None,
            key: None,
            row,
        })
    };
    for (_, row) in &delta.inserted {
        out.inserted
            .extend(wrap(residual_rows(db, p, &schema, row)?));
    }
    for (_, row) in &delta.deleted {
        out.deleted
            .extend(wrap(residual_rows(db, p, &schema, row)?));
    }
    for (_, old, new) in &delta.updated {
        // Join rows carry no identity; an update is a delete of the old
        // image's contributions plus an insert of the new image's.
        out.deleted
            .extend(wrap(residual_rows(db, p, &schema, old)?));
        out.inserted
            .extend(wrap(residual_rows(db, p, &schema, new)?));
    }
    if out.len() > JOIN_ROWS_CAP {
        return Ok(None);
    }
    Ok(Some(out))
}

/// The view rows one image of a written base row contributes: bind the
/// written variable to the row, then run the residual query over the other
/// relations. Probes short-circuit rows that join with nothing.
fn residual_rows(
    db: &mut Database,
    p: &JoinPlan,
    schema: &wow_rel::schema::Schema,
    row: &Tuple,
) -> ViewResult<Vec<Tuple>> {
    for probe in &p.probes {
        let v = &row.values[probe.col];
        // An equality conjunct over NULL matches nothing; an absent index
        // key means nothing joins.
        if v.is_null() || !db.index_probe_exists(&probe.index, std::slice::from_ref(v))? {
            return Ok(Vec::new());
        }
    }
    let targets: Vec<Target> = p
        .stmt
        .targets
        .iter()
        .map(|t| match t {
            Target::Expr { name, expr } => Target::Expr {
                name: name.clone(),
                expr: bind_var(expr, schema, row),
            },
            Target::Agg { .. } => unreachable!("aggregate views are not join-deltable"),
        })
        .collect();
    let conjuncts = match &p.stmt.where_ {
        Some(w) => bind_var(w, schema, row).split_conjuncts(),
        None => Vec::new(),
    };
    let scans: Vec<ScanSpec> = p
        .ranges
        .iter()
        .filter(|(v, _)| *v != p.var)
        .map(|(v, t)| ScanSpec {
            alias: v.clone(),
            table: t.clone(),
        })
        .collect();
    let block = QueryBlock {
        unique: false,
        scans,
        conjuncts,
        targets,
        group_by: Vec::new(),
        sort_by: Vec::new(),
        limit: None,
    };
    let plan = optimize(db, &block)?;
    Ok(wow_rel::exec::execute(db, &plan)?.tuples)
}

/// A per-propagation memo of view deltas: propagation computes each view's
/// delta once even when several windows share the view.
#[derive(Debug, Default)]
pub struct DeltaMemo {
    computed: BTreeMap<String, Option<ViewDelta>>,
}

impl DeltaMemo {
    /// Fresh memo (one per propagation pass).
    pub fn new() -> DeltaMemo {
        DeltaMemo::default()
    }

    /// The view's delta under `plan`, computed at most once. `None` means
    /// "fall back to a full refresh".
    pub fn get_or_compute(
        &mut self,
        db: &mut Database,
        view: &str,
        plan: &DeltaPlan,
        delta: &BaseDelta,
    ) -> ViewResult<&Option<ViewDelta>> {
        if !self.computed.contains_key(view) {
            let vd = compute_view_delta(db, plan, delta)?;
            self.computed.insert(view.to_string(), vd);
        }
        Ok(&self.computed[view])
    }
}
