//! Updatability analysis: which views can a window write through?
//!
//! The classical (1983-era) rules, applied to the *expanded* view:
//!
//! 1. the view computes no aggregates;
//! 2. after expansion it ranges over exactly **one** base relation
//!    (join views are read-only);
//! 3. its columns that are written must be plain base columns (computed
//!    columns are display-only); and
//! 4. the base relation's **primary key is preserved** — every key column
//!    appears among the view's plain columns — so a view row identifies
//!    exactly one base row.
//!
//! The analysis returns either a proof object ([`Updatability`]) carrying
//! everything `translate` needs, or the list of violated rules (which the
//! forms layer shows the user when a window is read-only).

use crate::catalog::ViewCatalog;
use crate::error::{ViewError, ViewResult};
use crate::expand::expand_view;
use wow_rel::db::Database;
use wow_rel::expr::Expr;
use wow_rel::quel::ast::Target;

/// The proof that a view is updatable, with the mapping `translate` uses.
#[derive(Debug, Clone)]
pub struct Updatability {
    /// View name.
    pub view: String,
    /// The single base table.
    pub base_table: String,
    /// The expanded range variable naming the base table.
    pub base_alias: String,
    /// The view's restriction over the base table (alias-qualified names),
    /// `None` when the view selects everything.
    pub base_pred: Option<Expr>,
    /// For each view column: the defining expression over the base alias.
    pub target_exprs: Vec<Expr>,
    /// View column names.
    pub column_names: Vec<String>,
    /// For each view column: the base column index it projects, or `None`
    /// for computed columns.
    pub column_map: Vec<Option<usize>>,
    /// Base primary-key column indexes.
    pub base_key: Vec<usize>,
}

impl Updatability {
    /// Whether a particular view column can be written.
    pub fn is_writable(&self, view_col: usize) -> bool {
        self.column_map.get(view_col).copied().flatten().is_some()
    }
}

/// Analyze a view. `Ok` carries the updatability proof; a view that exists
/// but violates the rules yields [`ViewError::NotUpdatable`] with reasons.
pub fn analyze(db: &Database, vc: &ViewCatalog, view_name: &str) -> ViewResult<Updatability> {
    let def = vc.get(view_name)?;
    let mut reasons = Vec::new();
    if def.has_aggregates() {
        reasons.push("computes aggregates".to_string());
        return Err(ViewError::NotUpdatable {
            view: view_name.to_string(),
            reasons,
        });
    }
    let expanded = expand_view(db, vc, def)?;
    if expanded.ranges.len() != 1 {
        reasons.push(format!(
            "ranges over {} base relations (must be exactly 1)",
            expanded.ranges.len()
        ));
        return Err(ViewError::NotUpdatable {
            view: view_name.to_string(),
            reasons,
        });
    }
    let (base_alias, base_table) = expanded.ranges[0].clone();
    let info = db.catalog().table(&base_table)?.clone();
    let schema = info.schema.qualified(&base_alias);

    let column_names = def.column_names();
    let mut target_exprs = Vec::with_capacity(expanded.stmt.targets.len());
    let mut column_map = Vec::with_capacity(expanded.stmt.targets.len());
    for t in &expanded.stmt.targets {
        let Target::Expr { expr, .. } = t else {
            unreachable!("aggregates rejected above");
        };
        let base_col = match expr {
            Expr::ColumnRef(n) => schema.index_of(n),
            _ => None,
        };
        column_map.push(base_col);
        target_exprs.push(expr.clone());
    }
    if info.key.is_empty() {
        reasons.push(format!("base table {base_table} has no primary key"));
    } else {
        for &k in &info.key {
            if !column_map.contains(&Some(k)) {
                reasons.push(format!(
                    "key column {} of {base_table} is not projected",
                    info.schema.column(k).name
                ));
            }
        }
    }
    if !reasons.is_empty() {
        return Err(ViewError::NotUpdatable {
            view: view_name.to_string(),
            reasons,
        });
    }
    Ok(Updatability {
        view: view_name.to_string(),
        base_table,
        base_alias,
        base_pred: expanded.stmt.where_.clone(),
        target_exprs,
        column_names,
        column_map,
        base_key: info.key.clone(),
    })
}

/// Convenience: the reasons a view is *not* updatable (empty = updatable).
pub fn why_not(db: &Database, vc: &ViewCatalog, view_name: &str) -> Vec<String> {
    match analyze(db, vc, view_name) {
        Ok(_) => Vec::new(),
        Err(ViewError::NotUpdatable { reasons, .. }) => reasons,
        Err(other) => vec![other.to_string()],
    }
}
