//! Translating window edits on view rows into base-table DML.
//!
//! A window shows a view row; the user edits a field and commits. The
//! translation uses the [`Updatability`] proof to locate the base row (by
//! rid, carried alongside every fetched view row) and rewrite it. The
//! "check option" is on by default: a write that would make the row fall
//! outside the view's restriction is rejected with
//! [`ViewError::EscapesView`] — otherwise a user could edit a row and watch
//! it silently vanish from the window.

use crate::error::{ViewError, ViewResult};
use crate::updatable::Updatability;
use wow_rel::db::Database;
use wow_rel::eval::{eval, eval_pred};
use wow_rel::expr::Expr;
use wow_rel::tuple::Tuple;
use wow_rel::value::Value;
use wow_storage::Rid;

/// Behaviour when a write moves a row outside the view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckOption {
    /// Reject the write ([`ViewError::EscapesView`]). The default.
    #[default]
    Checked,
    /// Allow it; the row simply leaves the window on refresh.
    Unchecked,
}

/// Fetch the view's rows together with their base rids, in base-scan order.
///
/// This is the access path the browse layer uses for updatable views: each
/// returned tuple is shaped like the view, and the rid addresses the base
/// row behind it.
pub fn view_rows_with_rids(db: &mut Database, upd: &Updatability) -> ViewResult<Vec<(Rid, Tuple)>> {
    let info = db.catalog().table(&upd.base_table)?.clone();
    let schema = info.schema.qualified(&upd.base_alias);
    let pred = match &upd.base_pred {
        Some(p) => Some(p.clone().resolve(&schema)?),
        None => None,
    };
    let targets: Vec<Expr> = upd
        .target_exprs
        .iter()
        .map(|e| e.clone().resolve(&schema))
        .collect::<Result<_, _>>()?;
    let raw = db.scan_table_raw(info.id)?;
    let mut out = Vec::new();
    for (rid, base) in raw {
        let keep = match &pred {
            Some(p) => eval_pred(p, &base)?,
            None => true,
        };
        if !keep {
            continue;
        }
        let mut vals = Vec::with_capacity(targets.len());
        for t in &targets {
            vals.push(eval(t, &base)?);
        }
        out.push((rid, Tuple::new(vals)));
    }
    Ok(out)
}

/// Compute the new base row for an update of `assigns` (view column index →
/// new value) against the current base row. Pure function, exposed for
/// property tests.
pub fn rewrite_base_row(
    upd: &Updatability,
    base: &Tuple,
    assigns: &[(usize, Value)],
) -> ViewResult<Vec<Value>> {
    let mut new_vals = base.values.clone();
    for (vcol, val) in assigns {
        let Some(Some(bcol)) = upd.column_map.get(*vcol) else {
            return Err(ViewError::NotWritable {
                column: upd
                    .column_names
                    .get(*vcol)
                    .cloned()
                    .unwrap_or_else(|| format!("#{vcol}")),
            });
        };
        new_vals[*bcol] = val.clone();
    }
    Ok(new_vals)
}

fn check_membership(db: &Database, upd: &Updatability, new_vals: &[Value]) -> ViewResult<bool> {
    let Some(pred) = &upd.base_pred else {
        return Ok(true);
    };
    let info = db.catalog().table(&upd.base_table)?.clone();
    let schema = info.schema.qualified(&upd.base_alias);
    let resolved = pred.clone().resolve(&schema)?;
    Ok(eval_pred(&resolved, &Tuple::new(new_vals.to_vec()))?)
}

/// Update the base row behind a view row. Returns `false` if the base row
/// no longer exists (deleted by a concurrent window).
pub fn update_through_view(
    db: &mut Database,
    upd: &Updatability,
    rid: Rid,
    assigns: &[(usize, Value)],
    check: CheckOption,
) -> ViewResult<bool> {
    let info = db.catalog().table(&upd.base_table)?.clone();
    let Some(base) = db.get_row(info.id, rid)? else {
        return Ok(false);
    };
    let new_vals = rewrite_base_row(upd, &base, assigns)?;
    if check == CheckOption::Checked && !check_membership(db, upd, &new_vals)? {
        return Err(ViewError::EscapesView {
            view: upd.view.clone(),
        });
    }
    Ok(db.update_rid(&upd.base_table, rid, new_vals)?)
}

/// Insert a new row through the view. View values map onto base columns;
/// unprojected base columns become NULL (and must therefore be nullable).
pub fn insert_through_view(
    db: &mut Database,
    upd: &Updatability,
    view_vals: &[Value],
    check: CheckOption,
) -> ViewResult<Rid> {
    let info = db.catalog().table(&upd.base_table)?.clone();
    if view_vals.len() != upd.column_map.len() {
        return Err(ViewError::Rel(wow_rel::RelError::TypeMismatch {
            expected: format!("{} view columns", upd.column_map.len()),
            got: format!("{} values", view_vals.len()),
        }));
    }
    let mut base_vals = vec![Value::Null; info.schema.len()];
    for (vcol, val) in view_vals.iter().enumerate() {
        match upd.column_map[vcol] {
            Some(bcol) => base_vals[bcol] = val.clone(),
            None if val.is_null() => {} // computed column left blank: fine
            None => {
                return Err(ViewError::NotWritable {
                    column: upd.column_names[vcol].clone(),
                })
            }
        }
    }
    if check == CheckOption::Checked && !check_membership(db, upd, &base_vals)? {
        return Err(ViewError::EscapesView {
            view: upd.view.clone(),
        });
    }
    Ok(db.insert(&upd.base_table, base_vals)?)
}

/// Delete the base row behind a view row.
pub fn delete_through_view(db: &mut Database, upd: &Updatability, rid: Rid) -> ViewResult<bool> {
    Ok(db.delete_rid(&upd.base_table, rid)?)
}
