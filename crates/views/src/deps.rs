//! The view → base-table dependency graph.
//!
//! After a window commits an update to a base table, the window manager
//! must refresh every other window whose view *could* see the change.
//! These helpers compute that reachability.
//!
//! The free functions walk the definitions on every call. Propagation runs
//! them once per open window per commit, so the hot path instead goes
//! through [`DepIndex`], which memoizes the whole view → base-table map and
//! invalidates it by comparing catalog generations (bumped on table and
//! view DDL respectively) — zero recomputation while the schema is stable.

use crate::catalog::ViewCatalog;
use crate::delta::{analyze_delta, DeltaPlan};
use crate::error::ViewResult;
use std::collections::{BTreeMap, BTreeSet};
use wow_rel::db::Database;

/// The set of base tables a view (transitively) reads.
pub fn base_tables(
    db: &Database,
    vc: &ViewCatalog,
    view_name: &str,
) -> ViewResult<BTreeSet<String>> {
    let mut out = BTreeSet::new();
    collect(db, vc, view_name, &mut out)?;
    Ok(out)
}

fn collect(
    db: &Database,
    vc: &ViewCatalog,
    name: &str,
    out: &mut BTreeSet<String>,
) -> ViewResult<()> {
    let def = vc.get(name)?;
    for (_, t) in &def.ranges {
        if db.catalog().has_table(t) {
            out.insert(t.clone());
        } else {
            collect(db, vc, t, out)?;
        }
    }
    Ok(())
}

/// Every view that (transitively) reads `table`, sorted by name.
pub fn views_reading(db: &Database, vc: &ViewCatalog, table: &str) -> Vec<String> {
    vc.names()
        .into_iter()
        .filter(|v| {
            base_tables(db, vc, v)
                .map(|s| s.contains(table))
                .unwrap_or(false)
        })
        .collect()
}

/// Whether two views overlap — share at least one base table — and hence
/// whether a write through one may require refreshing the other.
pub fn overlap(db: &Database, vc: &ViewCatalog, a: &str, b: &str) -> ViewResult<bool> {
    let ta = base_tables(db, vc, a)?;
    let tb = base_tables(db, vc, b)?;
    Ok(ta.intersection(&tb).next().is_some())
}

/// A cached view → base-table dependency map.
///
/// Built lazily from the two catalogs and kept until either changes shape:
/// the table-set generation of [`wow_rel::catalog::Catalog`] or the view
/// generation of [`ViewCatalog`]. Reads on the warm path are pure map
/// lookups; `rebuilds()` counts how often the cache was (re)derived, which
/// the Figure 4 bench asserts stays at one across a whole propagation run.
#[derive(Debug, Default)]
pub struct DepIndex {
    /// view name → base tables it transitively reads.
    cache: BTreeMap<String, BTreeSet<String>>,
    /// (view, table) → how writes to the table move through the view.
    /// Derived lazily per pair; cleared with the dependency map.
    plans: BTreeMap<(String, String), DeltaPlan>,
    /// Generations the cache was built against.
    table_gen: u64,
    view_gen: u64,
    /// Whether the cache has been built at least once (generations start at
    /// 0 in both catalogs, so a flag is needed to force the first build).
    built: bool,
    rebuilds: u64,
}

impl DepIndex {
    /// An empty (cold) index.
    pub fn new() -> DepIndex {
        DepIndex::default()
    }

    /// How many times the cache has been derived from scratch.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Whether the cache matches the current catalog generations.
    pub fn is_fresh(&self, db: &Database, vc: &ViewCatalog) -> bool {
        self.built
            && self.table_gen == db.catalog().generation()
            && self.view_gen == vc.generation()
    }

    fn ensure(&mut self, db: &Database, vc: &ViewCatalog) -> ViewResult<()> {
        if self.is_fresh(db, vc) {
            return Ok(());
        }
        self.cache.clear();
        self.plans.clear();
        for name in vc.names() {
            let tables = base_tables(db, vc, &name)?;
            self.cache.insert(name, tables);
        }
        self.table_gen = db.catalog().generation();
        self.view_gen = vc.generation();
        self.built = true;
        self.rebuilds += 1;
        Ok(())
    }

    /// The base tables `view` transitively reads (cached).
    pub fn base_tables(
        &mut self,
        db: &Database,
        vc: &ViewCatalog,
        view: &str,
    ) -> ViewResult<&BTreeSet<String>> {
        self.ensure(db, vc)?;
        self.cache
            .get(view)
            .ok_or_else(|| crate::error::ViewError::NoSuchView(view.to_string()))
    }

    /// Whether `view` (transitively) reads `table` (cached).
    pub fn reads(
        &mut self,
        db: &Database,
        vc: &ViewCatalog,
        view: &str,
        table: &str,
    ) -> ViewResult<bool> {
        Ok(self.base_tables(db, vc, view)?.contains(table))
    }

    /// The delta plan for pushing writes on `table` through `view`, cached
    /// per (view, table) pair under the same generation invalidation as the
    /// dependency map.
    pub fn delta_plan(
        &mut self,
        db: &Database,
        vc: &ViewCatalog,
        view: &str,
        table: &str,
    ) -> ViewResult<&DeltaPlan> {
        self.ensure(db, vc)?;
        let key = (view.to_string(), table.to_string());
        if !self.plans.contains_key(&key) {
            let plan = analyze_delta(db, vc, view, table)?;
            self.plans.insert(key.clone(), plan);
        }
        Ok(&self.plans[&key])
    }

    /// Every view that (transitively) reads `table`, sorted by name (cached).
    pub fn views_reading(
        &mut self,
        db: &Database,
        vc: &ViewCatalog,
        table: &str,
    ) -> ViewResult<Vec<String>> {
        self.ensure(db, vc)?;
        Ok(self
            .cache
            .iter()
            .filter(|(_, tables)| tables.contains(table))
            .map(|(name, _)| name.clone())
            .collect())
    }
}
