//! The view → base-table dependency graph.
//!
//! After a window commits an update to a base table, the window manager
//! must refresh every other window whose view *could* see the change.
//! These helpers compute that reachability.

use crate::catalog::ViewCatalog;
use crate::error::ViewResult;
use std::collections::BTreeSet;
use wow_rel::db::Database;

/// The set of base tables a view (transitively) reads.
pub fn base_tables(
    db: &Database,
    vc: &ViewCatalog,
    view_name: &str,
) -> ViewResult<BTreeSet<String>> {
    let mut out = BTreeSet::new();
    collect(db, vc, view_name, &mut out)?;
    Ok(out)
}

fn collect(
    db: &Database,
    vc: &ViewCatalog,
    name: &str,
    out: &mut BTreeSet<String>,
) -> ViewResult<()> {
    let def = vc.get(name)?;
    for (_, t) in &def.ranges {
        if db.catalog().has_table(t) {
            out.insert(t.clone());
        } else {
            collect(db, vc, t, out)?;
        }
    }
    Ok(())
}

/// Every view that (transitively) reads `table`, sorted by name.
pub fn views_reading(db: &Database, vc: &ViewCatalog, table: &str) -> Vec<String> {
    vc.names()
        .into_iter()
        .filter(|v| {
            base_tables(db, vc, v)
                .map(|s| s.contains(table))
                .unwrap_or(false)
        })
        .collect()
}

/// Whether two views overlap — share at least one base table — and hence
/// whether a write through one may require refreshing the other.
pub fn overlap(db: &Database, vc: &ViewCatalog, a: &str, b: &str) -> ViewResult<bool> {
    let ta = base_tables(db, vc, a)?;
    let tb = base_tables(db, vc, b)?;
    Ok(ta.intersection(&tb).next().is_some())
}
