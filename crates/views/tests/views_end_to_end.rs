//! End-to-end view tests: expansion, updatability, update translation,
//! dependency tracking.

use wow_rel::db::Database;
use wow_rel::expr::Expr;
use wow_rel::quel::ast::SortKey;
use wow_rel::value::Value;
use wow_views::expand::{query_via_materialization, run_view_query, view_schema, ViewQuery};
use wow_views::translate::{
    delete_through_view, insert_through_view, update_through_view, view_rows_with_rids, CheckOption,
};
use wow_views::updatable::{analyze, why_not};
use wow_views::{deps, ViewCatalog, ViewDef, ViewError};

fn world() -> (Database, ViewCatalog) {
    let mut db = Database::in_memory();
    db.run(
        r#"
        CREATE TABLE emp (name TEXT KEY, dept TEXT, salary INT, mgr TEXT)
        CREATE TABLE dept (dname TEXT KEY, floor INT)
        RANGE OF e IS emp
        APPEND TO dept (dname = "toy", floor = 1)
        APPEND TO dept (dname = "shoe", floor = 2)
        APPEND TO dept (dname = "candy", floor = 1)
    "#,
    )
    .unwrap();
    for (n, d, s, m) in [
        ("alice", "toy", 120, "erin"),
        ("bob", "shoe", 90, "erin"),
        ("carol", "toy", 150, "alice"),
        ("dave", "candy", 70, "erin"),
        ("erin", "shoe", 200, ""),
    ] {
        db.run(&format!(
            r#"APPEND TO emp (name = "{n}", dept = "{d}", salary = {s}, mgr = "{m}")"#
        ))
        .unwrap();
    }
    let mut vc = ViewCatalog::new();
    vc.register(
        ViewDef::parse(
            "toy_emps",
            r#"RANGE OF e IS emp RETRIEVE (e.name, e.salary) WHERE e.dept = "toy""#,
        )
        .unwrap(),
    )
    .unwrap();
    vc.register(
        ViewDef::parse(
            "emp_floor",
            "RANGE OF e IS emp RANGE OF d IS dept
             RETRIEVE (e.name, e.dept, d.floor) WHERE e.dept = d.dname",
        )
        .unwrap(),
    )
    .unwrap();
    vc.register(
        ViewDef::parse(
            "rich_toy_emps",
            "RANGE OF t IS toy_emps RETRIEVE (t.name, t.salary) WHERE t.salary > 130",
        )
        .unwrap(),
    )
    .unwrap();
    vc.register(
        ViewDef::parse(
            "dept_payroll",
            "RANGE OF e IS emp RETRIEVE (e.dept, total = SUM(e.salary)) GROUP BY e.dept",
        )
        .unwrap(),
    )
    .unwrap();
    (db, vc)
}

#[test]
fn simple_view_rows() {
    let (mut db, vc) = world();
    let rows = run_view_query(&mut db, &vc, "toy_emps", &ViewQuery::default()).unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows.schema.columns[0].name, "name");
    assert_eq!(rows.schema.columns[1].name, "salary");
}

#[test]
fn view_query_with_pred_sort_limit() {
    let (mut db, vc) = world();
    let q = ViewQuery {
        pred: Some(Expr::Binary {
            op: wow_rel::expr::BinOp::Gt,
            left: Box::new(Expr::ColumnRef("salary".into())),
            right: Box::new(Expr::Literal(Value::Int(100))),
        }),
        sort: vec![SortKey {
            column: "salary".into(),
            ascending: false,
        }],
        limit: Some((0, 1)),
    };
    let rows = run_view_query(&mut db, &vc, "toy_emps", &q).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.tuples[0].values[0], Value::text("carol"));
}

#[test]
fn join_view_expands() {
    let (mut db, vc) = world();
    let rows = run_view_query(
        &mut db,
        &vc,
        "emp_floor",
        &ViewQuery {
            sort: vec![SortKey {
                column: "name".into(),
                ascending: true,
            }],
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(rows.len(), 5);
    // alice works in toy on floor 1.
    assert_eq!(rows.tuples[0].values[0], Value::text("alice"));
    assert_eq!(rows.tuples[0].values[2], Value::Int(1));
}

#[test]
fn nested_view_expansion_conjoins_predicates() {
    let (mut db, vc) = world();
    let rows = run_view_query(&mut db, &vc, "rich_toy_emps", &ViewQuery::default()).unwrap();
    // toy dept AND salary > 130 → carol only.
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.tuples[0].values[0], Value::text("carol"));
}

#[test]
fn aggregate_view_materializes() {
    let (mut db, vc) = world();
    let rows = run_view_query(
        &mut db,
        &vc,
        "dept_payroll",
        &ViewQuery {
            sort: vec![SortKey {
                column: "dept".into(),
                ascending: true,
            }],
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows.tuples[2].values[0], Value::text("toy"));
    assert_eq!(rows.tuples[2].values[1], Value::Int(270));
    // Restrictions on aggregate views are rejected, not silently wrong.
    let q = ViewQuery {
        pred: Some(Expr::col_eq("dept", Value::text("toy"))),
        ..Default::default()
    };
    assert!(run_view_query(&mut db, &vc, "dept_payroll", &q).is_err());
}

#[test]
fn expansion_matches_materialization() {
    let (mut db, vc) = world();
    for view in ["toy_emps", "emp_floor", "rich_toy_emps"] {
        let q = ViewQuery {
            sort: vec![SortKey {
                column: "name".into(),
                ascending: true,
            }],
            ..Default::default()
        };
        let a = run_view_query(&mut db, &vc, view, &q).unwrap();
        let b = query_via_materialization(&mut db, &vc, view, &q).unwrap();
        assert_eq!(a.tuples, b.tuples, "view {view}");
    }
}

#[test]
fn view_schema_shape() {
    let (db, vc) = world();
    let s = view_schema(&db, &vc, "emp_floor").unwrap();
    assert_eq!(s.len(), 3);
    assert_eq!(s.columns[2].name, "floor");
    assert_eq!(s.columns[2].ty, wow_rel::types::DataType::Int);
}

#[test]
fn updatability_rules() {
    let (db, vc) = world();
    assert!(analyze(&db, &vc, "toy_emps").is_ok());
    assert!(
        analyze(&db, &vc, "rich_toy_emps").is_ok(),
        "nested but single-table"
    );
    let join_reasons = why_not(&db, &vc, "emp_floor");
    assert!(
        join_reasons.iter().any(|r| r.contains("2 base relations")),
        "{join_reasons:?}"
    );
    let agg_reasons = why_not(&db, &vc, "dept_payroll");
    assert!(agg_reasons.iter().any(|r| r.contains("aggregates")));
}

#[test]
fn key_preservation_required() {
    let (db, mut vc) = world();
    vc.register(ViewDef::parse("salaries_only", "RANGE OF e IS emp RETRIEVE (e.salary)").unwrap())
        .unwrap();
    let reasons = why_not(&db, &vc, "salaries_only");
    assert!(
        reasons.iter().any(|r| r.contains("key column name")),
        "{reasons:?}"
    );
}

#[test]
fn update_through_view_rewrites_base() {
    let (mut db, vc) = world();
    let upd = analyze(&db, &vc, "toy_emps").unwrap();
    let rows = view_rows_with_rids(&mut db, &upd).unwrap();
    assert_eq!(rows.len(), 2);
    let (rid, tuple) = rows
        .iter()
        .find(|(_, t)| t.values[0] == Value::text("alice"))
        .unwrap();
    assert_eq!(tuple.values[1], Value::Int(120));
    // Raise alice's salary through the view.
    assert!(update_through_view(
        &mut db,
        &upd,
        *rid,
        &[(1, Value::Int(130))],
        CheckOption::Checked
    )
    .unwrap());
    let base = db
        .run(r#"RANGE OF e IS emp RETRIEVE (e.salary) WHERE e.name = "alice""#)
        .unwrap();
    assert_eq!(base.tuples[0].values[0], Value::Int(130));
    // Other base columns (dept, mgr) untouched.
    let base = db
        .run(r#"RETRIEVE (e.dept, e.mgr) WHERE e.name = "alice""#)
        .unwrap();
    assert_eq!(base.tuples[0].values[0], Value::text("toy"));
    assert_eq!(base.tuples[0].values[1], Value::text("erin"));
}

#[test]
fn escape_check_blocks_vanishing_rows() {
    let (mut db, mut vc) = world();
    vc.register(
        ViewDef::parse(
            "well_paid",
            "RANGE OF e IS emp RETRIEVE (e.name, e.salary) WHERE e.salary >= 100",
        )
        .unwrap(),
    )
    .unwrap();
    let upd = analyze(&db, &vc, "well_paid").unwrap();
    let rows = view_rows_with_rids(&mut db, &upd).unwrap();
    let (rid, _) = rows
        .iter()
        .find(|(_, t)| t.values[0] == Value::text("alice"))
        .unwrap();
    // Dropping salary below 100 would remove the row from the view.
    let err = update_through_view(
        &mut db,
        &upd,
        *rid,
        &[(1, Value::Int(50))],
        CheckOption::Checked,
    )
    .unwrap_err();
    assert!(matches!(err, ViewError::EscapesView { .. }));
    // Unchecked mode allows it.
    assert!(update_through_view(
        &mut db,
        &upd,
        *rid,
        &[(1, Value::Int(50))],
        CheckOption::Unchecked
    )
    .unwrap());
    let rows = view_rows_with_rids(&mut db, &upd).unwrap();
    assert!(rows
        .iter()
        .all(|(_, t)| t.values[0] != Value::text("alice")));
}

#[test]
fn insert_and_delete_through_view() {
    let (mut db, vc) = world();
    let upd = analyze(&db, &vc, "toy_emps").unwrap();
    // Inserting through toy_emps fails the membership check (dept is not
    // projected, so it would be NULL ≠ "toy").
    let err = insert_through_view(
        &mut db,
        &upd,
        &[Value::text("zed"), Value::Int(80)],
        CheckOption::Checked,
    )
    .unwrap_err();
    assert!(matches!(err, ViewError::EscapesView { .. }));
    // Unchecked, it inserts with NULL dept.
    let rid = insert_through_view(
        &mut db,
        &upd,
        &[Value::text("zed"), Value::Int(80)],
        CheckOption::Unchecked,
    )
    .unwrap();
    let rows = db.run(r#"RETRIEVE (e.dept) WHERE e.name = "zed""#).unwrap();
    assert!(rows.tuples[0].values[0].is_null());
    assert!(delete_through_view(&mut db, &upd, rid).unwrap());
    let rows = db.run(r#"RETRIEVE (e.name) WHERE e.name = "zed""#).unwrap();
    assert!(rows.is_empty());
}

#[test]
fn full_row_view_permits_checked_inserts() {
    let (mut db, mut vc) = world();
    vc.register(
        ViewDef::parse(
            "all_emps",
            "RANGE OF e IS emp RETRIEVE (e.name, e.dept, e.salary, e.mgr)",
        )
        .unwrap(),
    )
    .unwrap();
    let upd = analyze(&db, &vc, "all_emps").unwrap();
    let rid = insert_through_view(
        &mut db,
        &upd,
        &[
            Value::text("frank"),
            Value::text("toy"),
            Value::Int(95),
            Value::text("alice"),
        ],
        CheckOption::Checked,
    )
    .unwrap();
    assert!(rid.is_valid());
    let rows = view_rows_with_rids(&mut db, &upd).unwrap();
    assert_eq!(rows.len(), 6);
}

#[test]
fn computed_columns_are_read_only() {
    let (mut db, mut vc) = world();
    vc.register(
        ViewDef::parse(
            "pay_annual",
            "RANGE OF e IS emp RETRIEVE (e.name, annual = e.salary * 12)",
        )
        .unwrap(),
    )
    .unwrap();
    let upd = analyze(&db, &vc, "pay_annual").unwrap();
    assert!(upd.is_writable(0));
    assert!(!upd.is_writable(1));
    let rows = view_rows_with_rids(&mut db, &upd).unwrap();
    let (rid, t) = &rows[0];
    assert_eq!(
        t.values[1],
        Value::Int(match &t.values[1] {
            Value::Int(i) => *i,
            _ => panic!(),
        })
    );
    let err = update_through_view(
        &mut db,
        &upd,
        *rid,
        &[(1, Value::Int(0))],
        CheckOption::Checked,
    )
    .unwrap_err();
    assert!(matches!(err, ViewError::NotWritable { .. }));
}

#[test]
fn dependency_graph() {
    let (db, vc) = world();
    let t = deps::base_tables(&db, &vc, "rich_toy_emps").unwrap();
    assert_eq!(t.into_iter().collect::<Vec<_>>(), vec!["emp"]);
    let t = deps::base_tables(&db, &vc, "emp_floor").unwrap();
    assert_eq!(t.len(), 2);
    let readers = deps::views_reading(&db, &vc, "emp");
    assert_eq!(readers.len(), 4, "{readers:?}");
    let readers = deps::views_reading(&db, &vc, "dept");
    assert_eq!(readers, vec!["emp_floor"]);
    assert!(deps::overlap(&db, &vc, "toy_emps", "emp_floor").unwrap());
    assert!(deps::overlap(&db, &vc, "dept_payroll", "rich_toy_emps").unwrap());
}

#[test]
fn stale_rid_update_returns_false() {
    let (mut db, vc) = world();
    let upd = analyze(&db, &vc, "toy_emps").unwrap();
    let rows = view_rows_with_rids(&mut db, &upd).unwrap();
    let (rid, _) = rows[0];
    db.delete_rid("emp", rid).unwrap();
    assert!(!update_through_view(
        &mut db,
        &upd,
        rid,
        &[(1, Value::Int(1))],
        CheckOption::Checked
    )
    .unwrap());
}
