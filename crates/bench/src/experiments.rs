//! The experiments: one function per table/figure.
//!
//! Every function takes a [`Scale`]: `Smoke` keeps `cargo test` fast,
//! `Full` is what the `repro` binary and `EXPERIMENTS.md` use.

use crate::table::Table;
use crate::{fmt_duration, time_median, time_once};
use std::time::{Duration, Instant};
use wow_core::browse::BrowseCursor;
use wow_core::config::WorldConfig;
use wow_core::locks::LockMode;
use wow_core::window_mgr::WindowStyle;
use wow_core::world::{CursorStrategy, World};
use wow_forms::compiler::compile_form_all_writable;
use wow_forms::qbf::form_predicate;
use wow_rel::db::Database;
use wow_rel::exec::{execute, KeyBound, PhysicalPlan};
use wow_rel::expr::{BinOp, Expr};
use wow_rel::quel::ast::SortKey;
use wow_rel::schema::{Column, Schema};
use wow_rel::types::DataType;
use wow_rel::value::Value;
use wow_storage::wal::Wal;
use wow_tui::geom::{Rect, Size};
use wow_views::expand::{run_view_query, ViewQuery};
use wow_views::updatable::analyze;
use wow_workload::netload::NetLoadReport;
use wow_workload::rng::DetRng;
use wow_workload::suppliers::{self, SuppliersConfig};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for `cargo test`.
    Smoke,
    /// The sizes recorded in `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    fn pick<T>(self, smoke: T, full: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Full => full,
        }
    }
}

// ---------------------------------------------------------------------------
// Table 1 — form compilation cost vs schema width
// ---------------------------------------------------------------------------

/// Table 1: compiling the default form from a schema of k attributes.
pub fn table1_form_compile(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 1",
        "default-form compilation time vs schema width",
        &["attributes", "compile time", "ns/attribute"],
        "linear in attribute count; well under 1 ms at 64 attributes",
    );
    let reps = scale.pick(50, 2000);
    for &k in &[2usize, 4, 8, 16, 32, 64] {
        let schema = Schema::new(
            (0..k)
                .map(|i| {
                    let ty = match i % 4 {
                        0 => DataType::Text,
                        1 => DataType::Int,
                        2 => DataType::Float,
                        _ => DataType::Date,
                    };
                    Column::new(format!("attr_{i}_name"), ty)
                })
                .collect(),
        );
        let d = time_median(reps, || {
            std::hint::black_box(compile_form_all_writable("f", "F", &schema))
        });
        t.push(vec![
            k.to_string(),
            fmt_duration(d),
            format!("{}", d.as_nanos() as usize / k),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 2 — browse latency: incremental vs materialize-and-sort
// ---------------------------------------------------------------------------

fn student_world(n: usize) -> World {
    let mut world = World::new(WorldConfig::default());
    world
        .db_mut()
        .run(
            "CREATE TABLE student (sid INT KEY, sname TEXT NOT NULL, year INT, gpa FLOAT)
             RANGE OF s IS student",
        )
        .unwrap();
    let mut rng = DetRng::new(42);
    for sid in 0..n {
        world
            .db_mut()
            .insert(
                "student",
                vec![
                    Value::Int(sid as i64),
                    Value::text(format!("student-{sid:07}")),
                    Value::Int(rng.range_i64(1, 4)),
                    Value::Float((rng.unit_f64() * 4.0 * 100.0).round() / 100.0),
                ],
            )
            .unwrap();
    }
    world
        .define_view(
            "students",
            "RANGE OF s IS student RETRIEVE (s.sid, s.sname, s.year, s.gpa)",
        )
        .unwrap();
    world
}

/// Table 2: open-window and page-forward latency, incremental (index
/// cursor) vs materialize-and-sort, as the base relation grows.
pub fn table2_browse(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 2",
        "browse latency vs base cardinality (page = 16 rows)",
        &[
            "rows",
            "open (indexed)",
            "page (indexed)",
            "open (materialize+sort)",
            "page (materialized)",
        ],
        "indexed open/page stay flat as N grows; materialize cost grows with N",
    );
    let sizes: Vec<usize> = scale.pick(vec![500, 2_000], vec![1_000, 10_000, 100_000]);
    for n in sizes {
        let mut world = student_world(n);
        let upd = analyze(world.db(), world.views(), "students").unwrap();
        // Incremental.
        let (open_ix, mut cursor) = time_once(|| {
            BrowseCursor::indexed(world.db_mut(), &upd, "pk_student", 16, None).unwrap()
        });
        let page_ix = {
            let mut total = Duration::ZERO;
            let pages = 8;
            for _ in 0..pages {
                let (d, _) = time_once(|| {
                    // Split borrows through World's public surface.
                    let db = world.db_mut();
                    let vc_dummy = wow_views::ViewCatalog::new();
                    cursor.next_page(db, &vc_dummy).unwrap()
                });
                total += d;
            }
            total / 8
        };
        // Materialize-and-sort baseline.
        let (open_mat, mut mat) = time_once(|| {
            let query = ViewQuery {
                sort: vec![SortKey {
                    column: "sid".into(),
                    ascending: true,
                }],
                ..Default::default()
            };
            let db = world.db_mut();
            BrowseCursor::materialized(
                db,
                &wow_views::ViewCatalog::new(),
                "students",
                query,
                Some(&upd),
            )
            .unwrap()
        });
        let page_mat = time_median(8, || {
            let db = world.db_mut();
            mat.next_page(db, &wow_views::ViewCatalog::new()).unwrap()
        });
        t.push(vec![
            n.to_string(),
            fmt_duration(open_ix),
            fmt_duration(page_ix),
            fmt_duration(open_mat),
            fmt_duration(page_mat),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 2b — limit pushdown: LIMIT 16 queries, streaming vs materializing
// ---------------------------------------------------------------------------

/// Table 2b: `RETRIEVE ... LIMIT 16` over a growing relation, run by the
/// streaming executor (the scan stops as soon as the limit quota fills) vs
/// the materializing reference (scans everything, then truncates). The last
/// column reports the buffer pool's sequential-readahead counters for the
/// full scan, demonstrating prefetch hits.
pub fn table2b_limit_pushdown(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 2b",
        "browse-open latency with LIMIT 16 vs base cardinality",
        &[
            "rows",
            "streaming",
            "materializing",
            "speedup",
            "rows scanned (stream/mat)",
            "prefetch hits (full scan)",
        ],
        "streaming cost is flat in N; materializing grows with N; sequential scans prefetch",
    );
    let sizes: Vec<usize> = scale.pick(vec![2_000, 8_000], vec![10_000, 100_000]);
    for n in sizes {
        // A small pool so full scans actually cycle through storage (and
        // exercise readahead) instead of finding everything resident.
        let mut db = Database::in_memory_with_frames(16);
        db.run("CREATE TABLE big (id INT KEY, v INT, pad TEXT) RANGE OF g IS big")
            .unwrap();
        for id in 0..n {
            db.insert(
                "big",
                vec![
                    Value::Int(id as i64),
                    Value::Int((id % 97) as i64),
                    Value::text(format!("{id:0100}")),
                ],
            )
            .unwrap();
        }
        let stmt = wow_rel::quel::ast::RetrieveStmt {
            unique: false,
            targets: vec![
                wow_rel::quel::ast::Target::Expr {
                    name: None,
                    expr: Expr::ColumnRef("g.id".into()),
                },
                wow_rel::quel::ast::Target::Expr {
                    name: None,
                    expr: Expr::ColumnRef("g.v".into()),
                },
            ],
            where_: None,
            group_by: vec![],
            sort_by: vec![],
            limit: Some((0, 16)),
        };
        let block = wow_rel::plan::build_query_block(&db, &stmt).unwrap();
        let plan = wow_rel::plan::optimize(&db, &block).unwrap();
        // Work counters: the streaming path must not scan the whole table.
        db.reset_counters();
        let streamed = execute(&mut db, &plan).unwrap();
        let scanned_stream = db.counters().rows_scanned;
        db.reset_counters();
        let materialized = wow_rel::exec::execute_materializing(&mut db, &plan).unwrap();
        let scanned_mat = db.counters().rows_scanned;
        let pool = db.pool_stats();
        assert_eq!(streamed.tuples, materialized.tuples, "paths agree");
        assert_eq!(streamed.tuples.len(), 16);
        assert!(
            scanned_stream < n as u64 && scanned_mat >= n as u64,
            "limit pushdown must stop the scan early ({scanned_stream} vs {scanned_mat})"
        );
        assert!(
            pool.prefetches > 0 && pool.prefetch_hits > 0,
            "sequential full scan must prefetch (got {pool:?})"
        );
        // Wall-clock comparison.
        let reps = scale.pick(3, 5);
        let d_stream = time_median(reps, || execute(&mut db, &plan).unwrap());
        let d_mat = time_median(reps, || {
            wow_rel::exec::execute_materializing(&mut db, &plan).unwrap()
        });
        let speedup = d_mat.as_secs_f64() / d_stream.as_secs_f64().max(1e-12);
        if scale == Scale::Full && n >= 100_000 {
            assert!(
                speedup >= 5.0,
                "LIMIT 16 over {n} rows: expected ≥5× from pushdown, got {speedup:.1}×"
            );
        }
        t.push(vec![
            n.to_string(),
            fmt_duration(d_stream),
            fmt_duration(d_mat),
            format!("{speedup:.1}×"),
            format!("{scanned_stream}/{scanned_mat}"),
            format!("{}/{}", pool.prefetch_hits, pool.prefetches),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 3 — update through a view vs direct base update
// ---------------------------------------------------------------------------

/// Table 3: per-row cost of updating through an updatable view vs updating
/// the base table directly.
pub fn table3_view_update(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 3",
        "update-through-view overhead (single-relation, key-preserving view)",
        &["path", "updates", "total", "µs/update", "ratio"],
        "through-view adds a small constant factor (< 2×)",
    );
    let n = scale.pick(200, 2_000);
    let cfg = SuppliersConfig {
        suppliers: n,
        parts: 10,
        shipments: 10,
        seed: 7,
    };
    let mut world = suppliers::build_world(WorldConfig::default(), &cfg);
    let upd = analyze(world.db(), world.views(), "suppliers").unwrap();
    let rows = wow_views::translate::view_rows_with_rids(world.db_mut(), &upd).unwrap();
    assert_eq!(rows.len(), n);
    // Warm-up pass so neither timed loop pays the cold-cache cost.
    for (rid, row) in &rows {
        world
            .db_mut()
            .update_rid("supplier", *rid, row.values.clone())
            .unwrap();
    }
    // Direct base updates.
    let (direct, _) = time_once(|| {
        for (i, (rid, row)) in rows.iter().enumerate() {
            // The suppliers view projects every base column in base order,
            // so the view row doubles as the base row here.
            let mut vals = row.values.clone();
            vals[3] = Value::Int(50 + i as i64 % 10);
            world.db_mut().update_rid("supplier", *rid, vals).unwrap();
        }
    });
    // Through-view updates (same field, different values so rows dirty).
    let (through, _) = time_once(|| {
        for (i, (rid, _)) in rows.iter().enumerate() {
            wow_views::translate::update_through_view(
                world.db_mut(),
                &upd,
                *rid,
                &[(3, Value::Int(60 + i as i64 % 10))],
                wow_views::translate::CheckOption::Checked,
            )
            .unwrap();
        }
    });
    let us = |d: Duration| d.as_micros() as f64 / n as f64;
    t.push(vec![
        "direct base update".into(),
        n.to_string(),
        fmt_duration(direct),
        format!("{:.1}", us(direct)),
        "1.00×".into(),
    ]);
    t.push(vec![
        "through view".into(),
        n.to_string(),
        fmt_duration(through),
        format!("{:.1}", us(through)),
        format!("{:.2}×", through.as_secs_f64() / direct.as_secs_f64()),
    ]);
    t
}

// ---------------------------------------------------------------------------
// Table 4 — query-by-form vs hand-written QUEL
// ---------------------------------------------------------------------------

/// Table 4: a QBF entry against the equivalent hand-written QUEL.
pub fn table4_qbf(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 4",
        "query-by-form vs hand-written QUEL (same answers, same plans)",
        &["query", "rows", "QBF synth", "QBF total", "QUEL total"],
        "synthesis cost is negligible; totals match because the plans match",
    );
    let cfg = SuppliersConfig {
        suppliers: scale.pick(200, 2_000),
        parts: 50,
        shipments: scale.pick(500, 5_000),
        seed: 11,
    };
    let mut world = suppliers::build_world(WorldConfig::default(), &cfg);
    let schema = wow_views::expand::view_schema(world.db(), world.views(), "suppliers").unwrap();
    let spec = compile_form_all_writable("suppliers", "Suppliers", &schema);
    let cases: Vec<(&str, Vec<&str>, String)> = vec![
        (
            "city equality",
            vec!["", "", "london", ""],
            r#"RETRIEVE (s.sno, s.sname, s.city, s.status) WHERE s.city = "london""#.into(),
        ),
        (
            "status range",
            vec!["", "", "", "20..30"],
            "RETRIEVE (s.sno, s.sname, s.city, s.status) WHERE s.status >= 20 AND s.status <= 30"
                .into(),
        ),
        (
            "pattern + comparison",
            vec!["", "supplier-00*", "", ">15"],
            r#"RETRIEVE (s.sno, s.sname, s.city, s.status) WHERE s.sname LIKE "supplier-00*" AND s.status > 15"#
                .into(),
        ),
    ];
    let reps = scale.pick(3, 15);
    for (label, entries, quel) in cases {
        let entries: Vec<String> = entries.iter().map(|s| s.to_string()).collect();
        let synth = time_median(reps.max(10) * 20, || {
            std::hint::black_box(form_predicate(&spec, &entries).unwrap())
        });
        let pred = form_predicate(&spec, &entries).unwrap();
        let qbf_total = time_median(reps, || {
            let q = ViewQuery {
                pred: pred.clone(),
                ..Default::default()
            };
            // ViewCatalog is only consulted for the view lookup.
            let vc = world_views_clone(&world);
            run_view_query(world.db_mut(), &vc, "suppliers", &q).unwrap()
        });
        let quel_total = time_median(reps, || world.db_mut().run(&quel).unwrap());
        // Answers must agree.
        let q = ViewQuery {
            pred: pred.clone(),
            ..Default::default()
        };
        let vc = world_views_clone(&world);
        let a = run_view_query(world.db_mut(), &vc, "suppliers", &q).unwrap();
        let b = world.db_mut().run(&quel).unwrap();
        assert_eq!(a.len(), b.len(), "QBF and QUEL disagree for {label}");
        t.push(vec![
            label.to_string(),
            a.len().to_string(),
            fmt_duration(synth),
            fmt_duration(qbf_total),
            fmt_duration(quel_total),
        ]);
    }
    t
}

/// Rebuild a view catalog equivalent to the world's (the world owns its
/// catalog; experiments that only need view defs clone them).
fn world_views_clone(world: &World) -> wow_views::ViewCatalog {
    let mut vc = wow_views::ViewCatalog::new();
    for name in world.views().names() {
        vc.register(world.views().get(&name).unwrap().clone())
            .unwrap();
    }
    vc
}

// ---------------------------------------------------------------------------
// Figure 1 — redraw cost vs number of windows
// ---------------------------------------------------------------------------

/// Figure 1: cells written per localized update, damage-tracked vs full
/// repaint, as windows accumulate.
pub fn figure1_redraw(scale: Scale) -> Table {
    let mut t = Table::new(
        "Figure 1",
        "screen update cost vs open windows (one field edited)",
        &[
            "windows",
            "damage cells",
            "full-repaint cells",
            "damage time",
            "repaint time",
        ],
        "damage cost tracks the edit (flat); full repaint tracks the screen",
    );
    let counts: Vec<usize> = scale.pick(vec![1, 4], vec![1, 2, 4, 8, 16]);
    for wcount in counts {
        let mut world = suppliers::build_world(
            WorldConfig {
                screen: Size::new(160, 48),
                ..WorldConfig::default()
            },
            &SuppliersConfig {
                suppliers: 50,
                parts: 20,
                shipments: 100,
                seed: 21,
            },
        );
        let s = world.open_session();
        let mut wins = Vec::new();
        for i in 0..wcount {
            let rect = Rect::new((i as i32 % 4) * 38, (i as i32 / 4) * 11, 38, 11);
            wins.push(world.open_window(s, "suppliers", Some(rect)).unwrap());
        }
        world.render(); // prime
                        // One localized change: bump the status text of the first window.
        let mut toggle = false;
        let reps = scale.pick(5, 50);
        let mut damage_cells = 0u64;
        let damage_time = time_median(reps, || {
            toggle = !toggle;
            world.set_status(wins[0], if toggle { "edited A" } else { "edited B" });
            let patches = world.render();
            damage_cells = patches.len() as u64;
            patches.len()
        });
        // Full-repaint baseline over the same scene.
        let screen = world.config().screen;
        let repaint_time = time_median(reps, || {
            let snap = world.render_snapshot();
            std::hint::black_box(snap.len())
        });
        let full_cells = screen.area() as u64;
        t.push(vec![
            wcount.to_string(),
            damage_cells.to_string(),
            full_cells.to_string(),
            fmt_duration(damage_time),
            fmt_duration(repaint_time),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 2 — join-view browse vs selectivity; hash join vs nested loop
// ---------------------------------------------------------------------------

/// Figure 2: querying a two-relation join view while a qty filter sweeps
/// selectivity; the expanded plan's hash join against a forced
/// nested-loop baseline.
pub fn figure2_join_view(scale: Scale) -> Table {
    let mut t = Table::new(
        "Figure 2",
        "join-view query time vs selectivity (hash join vs nested loop)",
        &["selectivity", "rows", "hash join", "nested loop", "speedup"],
        "hash join wins throughout and the gap grows with input size",
    );
    let cfg = SuppliersConfig {
        suppliers: scale.pick(100, 400),
        parts: 50,
        shipments: scale.pick(1_000, 20_000),
        seed: 31,
    };
    let mut world = suppliers::build_world(WorldConfig::default(), &cfg);
    let vc = world_views_clone(&world);
    let sels: Vec<f64> = scale.pick(vec![0.05, 0.5], vec![0.001, 0.01, 0.05, 0.2, 0.5]);
    let reps = scale.pick(3, 9);
    for sel in sels {
        let threshold = (1000.0 * sel).max(1.0) as i64;
        let pred = Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(Expr::ColumnRef("qty".into())),
            right: Box::new(Expr::Literal(Value::Int(threshold))),
        };
        let query = ViewQuery {
            pred: Some(pred),
            ..Default::default()
        };
        let hash = time_median(reps, || {
            run_view_query(world.db_mut(), &vc, "shipment_detail", &query).unwrap()
        });
        let rows = run_view_query(world.db_mut(), &vc, "shipment_detail", &query)
            .unwrap()
            .len();
        // Forced nested-loop baseline over the same expansion.
        let nl_plan = nested_loop_detail_plan(world.db_mut(), threshold);
        let nl = time_median(reps, || execute(world.db_mut(), &nl_plan).unwrap());
        t.push(vec![
            format!("{sel}"),
            rows.to_string(),
            fmt_duration(hash),
            fmt_duration(nl),
            format!("{:.1}×", nl.as_secs_f64() / hash.as_secs_f64().max(1e-12)),
        ]);
    }
    t
}

/// Hand-built nested-loop plan equivalent to the expanded
/// `shipment_detail WHERE qty < threshold` query.
fn nested_loop_detail_plan(db: &mut Database, threshold: i64) -> PhysicalPlan {
    let supplier = db
        .catalog()
        .table("supplier")
        .unwrap()
        .schema
        .qualified("s");
    let shipment = db
        .catalog()
        .table("shipment")
        .unwrap()
        .schema
        .qualified("sp");
    let joined = Schema::join(&supplier, "l", &shipment, "r");
    let join_pred = Expr::Binary {
        op: BinOp::Eq,
        left: Box::new(Expr::ColumnRef("s.sno".into())),
        right: Box::new(Expr::ColumnRef("sp.sno".into())),
    }
    .resolve(&joined)
    .unwrap();
    let qty_pred = Expr::Binary {
        op: BinOp::Lt,
        left: Box::new(Expr::ColumnRef("sp.qty".into())),
        right: Box::new(Expr::Literal(Value::Int(threshold))),
    }
    .resolve(&shipment)
    .unwrap();
    let exprs = vec![
        Expr::ColumnRef("s.sname".into()).resolve(&joined).unwrap(),
        Expr::ColumnRef("sp.pno".into()).resolve(&joined).unwrap(),
        Expr::ColumnRef("sp.qty".into()).resolve(&joined).unwrap(),
    ];
    PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::NestedLoopJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: "supplier".into(),
                alias: "s".into(),
                pred: None,
            }),
            right: Box::new(PhysicalPlan::SeqScan {
                table: "shipment".into(),
                alias: "sp".into(),
                pred: Some(qty_pred),
            }),
            pred: Some(join_pred),
        }),
        exprs,
        names: vec!["sname".into(), "pno".into(), "qty".into()],
    }
}

// ---------------------------------------------------------------------------
// Figure 3 — index scan vs sequential scan crossover
// ---------------------------------------------------------------------------

/// Figure 3: selectivity sweep of `v < threshold` against a sequential
/// scan and a secondary-index range scan.
pub fn figure3_scan_crossover(scale: Scale) -> Table {
    let mut t = Table::new(
        "Figure 3",
        "access-path crossover: index range scan vs sequential scan",
        &["selectivity", "rows", "index scan", "seq scan", "winner"],
        "index wins at low selectivity; sequential wins past a few percent",
    );
    let n = scale.pick(2_000, 50_000);
    let mut db = Database::in_memory();
    db.run(
        "CREATE TABLE nums (k INT KEY, v INT NOT NULL, pad TEXT)
         CREATE INDEX nums_v ON nums (v)
         RANGE OF x IS nums",
    )
    .unwrap();
    let mut rng = DetRng::new(77);
    let pad = "x".repeat(40);
    for k in 0..n {
        db.insert(
            "nums",
            vec![
                Value::Int(k as i64),
                Value::Int(rng.below(n as u64) as i64),
                Value::text(pad.clone()),
            ],
        )
        .unwrap();
    }
    let sels: Vec<f64> = scale.pick(
        vec![0.001, 0.3],
        vec![0.0001, 0.001, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0],
    );
    let reps = scale.pick(3, 7);
    for sel in sels {
        let threshold = (n as f64 * sel).max(1.0) as i64;
        let schema = db.catalog().table("nums").unwrap().schema.qualified("x");
        let pred = Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(Expr::ColumnRef("x.v".into())),
            right: Box::new(Expr::Literal(Value::Int(threshold))),
        }
        .resolve(&schema)
        .unwrap();
        let seq = PhysicalPlan::SeqScan {
            table: "nums".into(),
            alias: "x".into(),
            pred: Some(pred),
        };
        let index = PhysicalPlan::IndexRange {
            table: "nums".into(),
            alias: "x".into(),
            index: "nums_v".into(),
            lower: None,
            upper: Some(KeyBound {
                values: vec![Value::Int(threshold)],
                inclusive: false,
            }),
            residual: None,
        };
        let d_index = time_median(reps, || execute(&mut db, &index).unwrap());
        let d_seq = time_median(reps, || execute(&mut db, &seq).unwrap());
        let rows = execute(&mut db, &seq).unwrap().len();
        t.push(vec![
            format!("{sel}"),
            rows.to_string(),
            fmt_duration(d_index),
            fmt_duration(d_seq),
            if d_index < d_seq { "index" } else { "seq" }.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 4 — propagation latency: delta refresh vs full re-query
// ---------------------------------------------------------------------------

/// Figure 4: one commit against a growing base, watched by an indexed
/// selection window, a forced-materialized whole-table window, and a
/// streamed join window. With delta propagation the commit pushes a typed
/// delta through the view algebra and patches the screenfuls in place;
/// the baseline re-runs every dependent window's query.
pub fn figure4_propagate(scale: Scale) -> Table {
    let mut t = Table::new(
        "Figure 4",
        "commit propagation: delta refresh vs full re-query, growing base",
        &[
            "base rows",
            "delta commit",
            "full commit",
            "speedup",
            "delta refreshes/commit",
            "delta rows/commit",
        ],
        "delta refresh stays flat as the base grows; full re-query is linear",
    );
    let sizes: Vec<usize> = scale.pick(vec![200, 400], vec![1_000, 10_000, 100_000]);
    let reps = scale.pick(3, 9);
    for n in sizes {
        // (median commit time, delta refreshes, delta rows) per mode.
        let mut per_mode: Vec<(Duration, u64, u64)> = Vec::new();
        for delta_on in [true, false] {
            let mut world = suppliers::build_world(
                WorldConfig {
                    screen: Size::new(200, 60),
                    delta_propagation: delta_on,
                    ..WorldConfig::default()
                },
                &SuppliersConfig {
                    suppliers: n,
                    parts: (n / 2).max(50),
                    shipments: n * 2,
                    seed: 41,
                },
            );
            // A sentinel supplier with no shipments: the join watcher's
            // delta reduces to one index probe that finds nothing, so the
            // window is provably unaffected without running its query.
            let sentinel = vec![
                Value::Int(n as i64),
                Value::text("supplier-bench"),
                Value::text("london"),
                Value::Int(10),
            ];
            let rid = world.apply_insert("supplier", sentinel.clone()).unwrap();
            let s = world.open_session();
            world.open_window(s, "london_suppliers", None).unwrap();
            world
                .open_window_using(
                    s,
                    "suppliers",
                    None,
                    WindowStyle::Form,
                    CursorStrategy::Materialized,
                )
                .unwrap();
            world.open_window(s, "shipment_detail", None).unwrap();
            // Warm up: derive the dependency sets and delta plans once.
            let status_row = |status: i64| {
                let mut row = sentinel.clone();
                row[3] = Value::Int(status);
                row
            };
            world.apply_update("supplier", rid, status_row(11)).unwrap();
            let warm_rebuilds = world.dep_index().rebuilds();
            // Measure only the warm phase: snapshot the counters and diff
            // afterwards instead of zeroing the world's lifetime stats.
            let base = world.stats.snapshot();
            let mut status = 11;
            let d = time_median(reps, || {
                status += 1;
                world
                    .apply_update("supplier", rid, status_row(status))
                    .unwrap();
            });
            let warm = world.stats.since(&base);
            assert_eq!(
                world.dep_index().rebuilds() - warm_rebuilds,
                0,
                "warm propagation must not recompute dependency sets"
            );
            if delta_on {
                assert_eq!(
                    warm.full_refreshes, 0,
                    "warm deltable windows must never fall back to re-query"
                );
                assert_eq!(
                    warm.delta_refreshes,
                    2 * reps as u64,
                    "the selection and materialized watchers refresh via deltas"
                );
            } else {
                assert_eq!(warm.delta_refreshes, 0);
                assert_eq!(
                    warm.full_refreshes,
                    3 * reps as u64,
                    "the baseline re-runs every dependent window"
                );
            }
            per_mode.push((d, warm.delta_refreshes, warm.delta_rows));
        }
        let (d_delta, refreshes, rows) = per_mode[0];
        let (d_full, _, _) = per_mode[1];
        let speedup = d_full.as_secs_f64() / d_delta.as_secs_f64().max(1e-9);
        t.push(vec![
            n.to_string(),
            fmt_duration(d_delta),
            fmt_duration(d_full),
            format!("{speedup:.1}x"),
            format!("{:.0}", refreshes as f64 / reps as f64),
            format!("{:.0}", rows as f64 / reps as f64),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 5 — parallel scaling: scan, join build, multi-window fan-out
// ---------------------------------------------------------------------------

/// Figure 5: wall-clock scaling of the three parallelized layers as the
/// worker count grows — a predicated full-table scan through the streaming
/// executor, a hash-join build over the same rows, and a commit fan-out
/// that fully refreshes many materialized windows. Workers are pinned per
/// row with [`Database::set_workers`] (the documented env bypass), so the
/// sweep is deterministic even under a `WOW_WORKERS` CI matrix. The
/// workers=1 row *is* the pre-existing serial code path: every parallel
/// gate requires `workers > 1`.
pub fn figure5_parallel_scaling(scale: Scale) -> Table {
    let mut t = Table::new(
        "Figure 5",
        "parallel scaling: scan / join build / window fan-out vs worker count",
        &[
            "workers",
            "scan",
            "scan ×",
            "join build",
            "join ×",
            "fan-out",
            "fan-out ×",
        ],
        "speedups need real cores: flat on one CPU, ≥2× scan and ≥1.5× fan-out at 4 workers otherwise",
    );
    let scan_rows = scale.pick(6_000, 100_000);
    let fan_rows = scale.pick(2_000, 20_000);
    let fan_windows = scale.pick(4, 16);
    let reps = scale.pick(3, 7);

    // Scan + join share one table; the plan is built once so every worker
    // count executes the identical operator tree.
    let mut db = Database::in_memory();
    db.run("CREATE TABLE wide (id INT KEY, grp INT, pad TEXT) RANGE OF a IS wide")
        .unwrap();
    let pad = "y".repeat(40);
    for i in 0..scan_rows {
        db.insert(
            "wide",
            vec![
                Value::Int(i as i64),
                Value::Int((i % 53) as i64),
                Value::text(pad.clone()),
            ],
        )
        .unwrap();
    }
    let stmt = wow_rel::quel::ast::RetrieveStmt {
        unique: false,
        targets: vec![wow_rel::quel::ast::Target::Expr {
            name: None,
            expr: Expr::ColumnRef("a.id".into()),
        }],
        where_: Some(Expr::Binary {
            op: BinOp::Ge,
            left: Box::new(Expr::ColumnRef("a.grp".into())),
            right: Box::new(Expr::Literal(Value::Int(0))),
        }),
        group_by: vec![],
        sort_by: vec![],
        limit: None,
    };
    let block = wow_rel::plan::build_query_block(&db, &stmt).unwrap();
    let plan = wow_rel::plan::optimize(&db, &block).unwrap();
    let wide_id = db.catalog().table("wide").unwrap().id;
    let build_rows: Vec<wow_rel::tuple::Tuple> = db
        .scan_table_raw(wide_id)
        .unwrap()
        .into_iter()
        .map(|(_, tup)| tup)
        .collect();

    // Fan-out: a commit against a base watched by materialized windows,
    // with delta propagation off so every commit fully re-runs every
    // window's query (the Figure 4 baseline path, now fanned out).
    let mut world = World::new(WorldConfig {
        screen: Size::new(200, 60),
        delta_propagation: false,
        ..WorldConfig::default()
    });
    world
        .db_mut()
        .run("CREATE TABLE item (id INT KEY, grp INT, val INT) RANGE OF i IS item")
        .unwrap();
    for i in 0..fan_rows {
        world
            .db_mut()
            .insert(
                "item",
                vec![
                    Value::Int(i as i64),
                    Value::Int((i % fan_windows) as i64),
                    Value::Int(i as i64),
                ],
            )
            .unwrap();
    }
    for k in 0..fan_windows {
        world
            .define_view(
                &format!("w{k}"),
                &format!("RANGE OF i IS item RETRIEVE (i.id, i.val) WHERE i.grp = {k}"),
            )
            .unwrap();
    }
    let s = world.open_session();
    for k in 0..fan_windows {
        world
            .open_window_using(
                s,
                &format!("w{k}"),
                None,
                WindowStyle::Form,
                CursorStrategy::Materialized,
            )
            .unwrap();
    }
    let item_id = world.db().catalog().table("item").unwrap().id;
    let (rid, row) = world.db_mut().scan_table_raw(item_id).unwrap()[0].clone();

    let mut serial_scan = Duration::ZERO;
    let mut serial_join = Duration::ZERO;
    let mut serial_fan = Duration::ZERO;
    let mut speedups: Vec<(usize, f64, f64)> = Vec::new();
    let mut val = fan_rows as i64;
    for workers in [1usize, 2, 4, 8] {
        db.set_workers(workers);
        let rows_out = execute(&mut db, &plan).unwrap().len();
        assert_eq!(
            rows_out, scan_rows,
            "scan output must not depend on workers"
        );
        let d_scan = time_median(reps, || execute(&mut db, &plan).unwrap());
        let d_join = time_median(reps, || {
            std::hint::black_box(wow_rel::exec::par::build_join_table(&db, &build_rows, &[1]))
        });
        world.db_mut().set_workers(workers);
        // Warm-up so dependency sets and page caches are steady.
        val += 1;
        world
            .apply_update("item", rid, item_row(&row, val))
            .unwrap();
        let d_fan = time_median(reps, || {
            val += 1;
            world
                .apply_update("item", rid, item_row(&row, val))
                .unwrap();
        });
        if workers == 1 {
            (serial_scan, serial_join, serial_fan) = (d_scan, d_join, d_fan);
        }
        let sx = serial_scan.as_secs_f64() / d_scan.as_secs_f64().max(1e-12);
        let jx = serial_join.as_secs_f64() / d_join.as_secs_f64().max(1e-12);
        let fx = serial_fan.as_secs_f64() / d_fan.as_secs_f64().max(1e-12);
        speedups.push((workers, sx, fx));
        t.push(vec![
            workers.to_string(),
            fmt_duration(d_scan),
            format!("{sx:.2}×"),
            fmt_duration(d_join),
            format!("{jx:.2}×"),
            fmt_duration(d_fan),
            format!("{fx:.2}×"),
        ]);
    }
    // The scaling targets only hold when the machine has cores to scale
    // onto; a single-CPU runner measures overhead, not parallelism.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if scale == Scale::Full && cores >= 4 {
        let &(_, sx, fx) = speedups
            .iter()
            .find(|(w, _, _)| *w == 4)
            .expect("4-worker row");
        assert!(
            sx >= 2.0,
            "100k-row scan at 4 workers: want ≥2×, got {sx:.2}×"
        );
        assert!(
            fx >= 1.5,
            "window fan-out at 4 workers: want ≥1.5×, got {fx:.2}×"
        );
    }
    t
}

fn item_row(base: &wow_rel::tuple::Tuple, val: i64) -> Vec<Value> {
    let mut values = base.values.clone();
    values[2] = Value::Int(val);
    values
}

// ---------------------------------------------------------------------------
// Figure 6 — vectorized batch execution vs row-at-a-time
// ---------------------------------------------------------------------------

/// Build the Figure 6 table: `v` is uniform in `0..n` (so a `v < k`
/// predicate has selectivity `k/n`) and unindexed (so the planner always
/// picks a sequential scan with the predicate pushed down); `pad` is a
/// 100-byte text field standing in for the description-sized columns of a
/// typical form record — the row engine decodes (and allocates) it for
/// every row, the vectorized scan only for rows that survive the filter.
fn figure6_world(n: usize) -> Database {
    let mut db = Database::in_memory();
    db.set_workers(1); // isolate vectorization from parallel scan effects
    db.run("CREATE TABLE reading (id INT KEY, v INT NOT NULL, pad TEXT) RANGE OF a IS reading")
        .unwrap();
    let mut rng = DetRng::new(66);
    let pad = "p".repeat(100);
    for i in 0..n {
        db.insert(
            "reading",
            vec![
                Value::Int(i as i64),
                Value::Int(rng.below(n as u64) as i64),
                Value::text(pad.clone()),
            ],
        )
        .unwrap();
    }
    db
}

fn figure6_stmt(threshold: i64, limit: Option<(usize, usize)>) -> wow_rel::quel::ast::RetrieveStmt {
    wow_rel::quel::ast::RetrieveStmt {
        unique: false,
        targets: vec![wow_rel::quel::ast::Target::Expr {
            name: None,
            expr: Expr::ColumnRef("a.id".into()),
        }],
        where_: Some(Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(Expr::ColumnRef("a.v".into())),
            right: Box::new(Expr::Literal(Value::Int(threshold))),
        }),
        group_by: vec![],
        sort_by: vec![],
        limit,
    }
}

/// Time one plan under both engines: `(row engine, vectorized, rows out)`.
///
/// The engines are timed in *interleaved pairs* and each side reports its
/// minimum over the reps. Two back-to-back `time_median` blocks would let
/// machine-load drift between the blocks masquerade as an engine
/// difference; interleaving exposes both engines to the same drift, and
/// the per-engine minimum is the usual noise-floor estimate of intrinsic
/// cost on a shared machine.
fn figure6_run(db: &mut Database, plan: &PhysicalPlan, reps: usize) -> (Duration, Duration, usize) {
    let mut d_row = Duration::MAX;
    let mut d_vec = Duration::MAX;
    for _ in 0..reps {
        db.set_vectorized(false);
        let start = Instant::now();
        std::hint::black_box(execute(db, plan).unwrap());
        d_row = d_row.min(start.elapsed());
        db.set_vectorized(true);
        let start = Instant::now();
        std::hint::black_box(execute(db, plan).unwrap());
        d_vec = d_vec.min(start.elapsed());
    }
    let out = execute(db, plan).unwrap().len();
    (d_row, d_vec, out)
}

/// Figure 6: the same filtered scans under the row-at-a-time interpreter
/// and the vectorized batch executor, across selectivity and cardinality.
/// The last two rows are the honest anti-sweet-spot shapes: a tiny table
/// (batch setup cost with little to amortize it over) and a stop-hinted
/// `LIMIT 1` (the row engine quits after one tuple; the batch engine has
/// already decoded and filtered a whole batch) — measured, the ~2.5×
/// advantage of the big-scan rows narrows there, down to roughly a wash
/// on `LIMIT 1`.
pub fn figure6_vectorized(scale: Scale) -> Table {
    let mut t = Table::new(
        "Figure 6",
        "vectorized batch execution vs row-at-a-time: filtered scans",
        &[
            "rows",
            "selectivity",
            "row engine",
            "vectorized",
            "speedup",
            "rows out",
        ],
        "≥2× on selective 100k-row scans; narrows on tiny tables and to a wash on stop-hinted LIMIT 1",
    );
    let sizes: Vec<usize> = scale.pick(vec![2_000], vec![10_000, 100_000]);
    let sels: Vec<f64> = scale.pick(vec![0.01, 0.5], vec![0.01, 0.1, 0.5, 0.9]);
    let reps = scale.pick(3, 7);
    for &n in &sizes {
        let mut db = figure6_world(n);
        for &sel in &sels {
            let threshold = ((n as f64 * sel) as i64).max(1);
            let stmt = figure6_stmt(threshold, None);
            let block = wow_rel::plan::build_query_block(&db, &stmt).unwrap();
            let plan = wow_rel::plan::optimize(&db, &block).unwrap();
            let (mut d_row, mut d_vec, out) = figure6_run(&mut db, &plan, reps);
            let mut speedup = d_row.as_secs_f64() / d_vec.as_secs_f64().max(1e-12);
            if scale == Scale::Full && n >= 100_000 && sel <= 0.01 {
                if speedup < 2.0 {
                    // One re-measure before declaring a regression: a
                    // single noisy draw on a shared box should not fail
                    // the build. The per-engine minimum across both runs
                    // is the same noise-floor estimate figure6_run uses.
                    let (r2, v2, _) = figure6_run(&mut db, &plan, 2 * reps);
                    d_row = d_row.min(r2);
                    d_vec = d_vec.min(v2);
                    speedup = d_row.as_secs_f64() / d_vec.as_secs_f64().max(1e-12);
                }
                assert!(
                    speedup >= 2.0,
                    "selective scan over {n} rows: want ≥2× from vectorization, got {speedup:.2}×"
                );
            }
            t.push(vec![
                n.to_string(),
                format!("{sel}"),
                fmt_duration(d_row),
                fmt_duration(d_vec),
                format!("{speedup:.2}×"),
                out.to_string(),
            ]);
        }
    }
    // Honest losing shape 1: a table too small to amortize batch setup.
    {
        let n = 64;
        let mut db = figure6_world(n);
        let stmt = figure6_stmt(n as i64 / 2, None);
        let block = wow_rel::plan::build_query_block(&db, &stmt).unwrap();
        let plan = wow_rel::plan::optimize(&db, &block).unwrap();
        let (d_row, d_vec, out) = figure6_run(&mut db, &plan, reps);
        let speedup = d_row.as_secs_f64() / d_vec.as_secs_f64().max(1e-12);
        t.push(vec![
            format!("{n} (tiny)"),
            "0.5".into(),
            fmt_duration(d_row),
            fmt_duration(d_vec),
            format!("{speedup:.2}×"),
            out.to_string(),
        ]);
    }
    // Honest losing shape 2: LIMIT 1 behind a predicate — the row engine
    // stops at the first match, the batch engine has filtered a batch.
    {
        let n = sizes.last().copied().unwrap_or(2_000);
        let mut db = figure6_world(n);
        let stmt = figure6_stmt(n as i64, Some((0, 1)));
        let block = wow_rel::plan::build_query_block(&db, &stmt).unwrap();
        let plan = wow_rel::plan::optimize(&db, &block).unwrap();
        let (d_row, d_vec, out) = figure6_run(&mut db, &plan, reps);
        let speedup = d_row.as_secs_f64() / d_vec.as_secs_f64().max(1e-12);
        t.push(vec![
            format!("{n} LIMIT 1"),
            "1".into(),
            fmt_duration(d_row),
            fmt_duration(d_vec),
            format!("{speedup:.2}×"),
            out.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 5 — locking ablation
// ---------------------------------------------------------------------------

/// Table 5: read-modify-write races with and without the lock manager.
pub fn table5_locking(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 5",
        "lock manager ablation: racing read-modify-write increments",
        &[
            "configuration",
            "increments",
            "final value",
            "lost updates",
            "time",
        ],
        "locking loses nothing at modest overhead; the unsafe baseline loses updates",
    );
    let rounds = scale.pick(200, 2_000);
    for locking in [true, false] {
        let mut world = suppliers::build_world(
            WorldConfig {
                locking,
                ..WorldConfig::default()
            },
            &SuppliersConfig {
                suppliers: 3,
                parts: 3,
                shipments: 3,
                seed: 51,
            },
        );
        let a = world.open_session();
        let b = world.open_session();
        let info = world.db().catalog().table("shipment").unwrap().clone();
        let (rid, row) = world.db_mut().scan_table_raw(info.id).unwrap()[0].clone();
        let start_qty = match row.values[3] {
            Value::Int(q) => q,
            _ => unreachable!(),
        };
        // Interleaved read-modify-write: each round, both sessions read the
        // quantity, then both write their increment. With locking, the
        // second reader is denied until the first writer releases, so its
        // read happens after — no lost update. Without locking the classic
        // race loses one of the two increments every round.
        let (d, lost) = time_once(|| {
            let mut lost = 0u64;
            for _ in 0..rounds {
                let before = read_qty(&mut world, info.id, rid);
                // Session A: lock, read, write, unlock.
                let a_read = if world.try_lock(a, "shipment", LockMode::Exclusive) {
                    read_qty(&mut world, info.id, rid)
                } else {
                    before // denied: retry by reading stale (never happens: A goes first)
                };
                // Session B: tries to lock while A holds it.
                let b_granted = world.try_lock(b, "shipment", LockMode::Exclusive);
                let b_read_early = read_qty(&mut world, info.id, rid);
                // A writes and releases.
                write_qty(&mut world, rid, a_read + 1);
                world.release_locks(a);
                // B proceeds: if it was granted the lock concurrently (only
                // possible when locking is off), it uses its *early* read —
                // the lost-update interleaving. Denied B retries correctly.
                let b_read = if b_granted {
                    b_read_early
                } else {
                    assert!(world.try_lock(b, "shipment", LockMode::Exclusive));
                    read_qty(&mut world, info.id, rid)
                };
                write_qty(&mut world, rid, b_read + 1);
                world.release_locks(b);
                let after = read_qty(&mut world, info.id, rid);
                lost += (2 - (after - before)) as u64;
            }
            lost
        });
        let final_qty = read_qty(&mut world, info.id, rid);
        let expected = start_qty + 2 * rounds as i64;
        if locking {
            assert_eq!(final_qty, expected, "locking must lose nothing");
        }
        t.push(vec![
            if locking {
                "strict 2PL"
            } else {
                "no locking (unsafe)"
            }
            .into(),
            (2 * rounds).to_string(),
            format!("{final_qty} (want {expected})"),
            lost.to_string(),
            fmt_duration(d),
        ]);
    }
    t
}

fn read_qty(world: &mut World, table: wow_rel::catalog::TableId, rid: wow_storage::Rid) -> i64 {
    match world.db_mut().get_row(table, rid).unwrap().unwrap().values[3] {
        Value::Int(q) => q,
        _ => unreachable!(),
    }
}

fn write_qty(world: &mut World, rid: wow_storage::Rid, qty: i64) {
    let info = world.db().catalog().table("shipment").unwrap().clone();
    let mut row = world.db_mut().get_row(info.id, rid).unwrap().unwrap();
    row.values[3] = Value::Int(qty);
    world
        .db_mut()
        .update_rid("shipment", rid, row.values)
        .unwrap();
}

// ---------------------------------------------------------------------------
// Table 6 — WAL overhead and recovery
// ---------------------------------------------------------------------------

/// Table 6: insert throughput with/without the WAL, plus replay.
pub fn table6_wal(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 6",
        "write-ahead logging: overhead and recovery replay",
        &["configuration", "rows", "time", "µs/row"],
        "WAL adds bounded overhead; replay reconstructs exactly the committed rows",
    );
    let n = scale.pick(500, 10_000);
    let make_db = |wal: bool| {
        let mut db = Database::in_memory();
        if wal {
            db.attach_wal(Wal::in_memory());
        }
        db.create_table(
            "t",
            Schema::new(vec![
                Column::not_null("k", DataType::Int),
                Column::new("payload", DataType::Text),
            ]),
            &["k"],
        )
        .unwrap();
        db
    };
    let insert_all = |db: &mut Database| {
        for k in 0..n {
            db.insert(
                "t",
                vec![Value::Int(k as i64), Value::text(format!("row-{k:08}"))],
            )
            .unwrap();
        }
    };
    let mut plain = make_db(false);
    let (d_plain, _) = time_once(|| insert_all(&mut plain));
    let mut walled = make_db(true);
    let (d_wal, _) = time_once(|| insert_all(&mut walled));
    let mut wal = walled.take_wal().unwrap();
    // Replay starts from an *empty* database: since the WAL carries DDL,
    // the log itself recreates the table before the row inserts land.
    let mut recovered = Database::in_memory();
    let (d_replay, applied) = time_once(|| recovered.replay_wal(&mut wal).unwrap());
    assert_eq!(applied, n as u64 + 1, "n inserts + the CREATE TABLE");
    let tid = recovered.catalog().table("t").unwrap().id;
    assert_eq!(recovered.row_count(tid), n as u64);
    let us = |d: Duration| format!("{:.1}", d.as_micros() as f64 / n as f64);
    t.push(vec![
        "no WAL".into(),
        n.to_string(),
        fmt_duration(d_plain),
        us(d_plain),
    ]);
    t.push(vec![
        "WAL enabled".into(),
        n.to_string(),
        fmt_duration(d_wal),
        us(d_wal),
    ]);
    t.push(vec![
        "recovery replay".into(),
        n.to_string(),
        fmt_duration(d_replay),
        us(d_replay),
    ]);
    t
}

// ---------------------------------------------------------------------------
// Table 7 (ablation) — query modification vs view materialization
// ---------------------------------------------------------------------------

/// Table 7: answering a restricted query over a view by expansion (query
/// modification) vs by materializing the whole view and filtering the copy.
pub fn table7_expansion(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 7",
        "view access: query modification vs materialize-then-filter",
        &[
            "base rows",
            "result rows",
            "expansion",
            "materialization",
            "ratio",
        ],
        "expansion cost tracks the result; materialization pays for the whole view",
    );
    let sizes: Vec<usize> = scale.pick(vec![500], vec![1_000, 10_000, 50_000]);
    for n in sizes {
        let mut world = suppliers::build_world(
            WorldConfig::default(),
            &SuppliersConfig {
                suppliers: n,
                parts: 10,
                shipments: 10,
                seed: 71,
            },
        );
        let vc = world_views_clone(&world);
        // A selective restriction: one specific supplier number. Expansion
        // folds it into the plan (index probe on the pk); materialization
        // must construct all n rows first.
        let q = ViewQuery {
            pred: Some(Expr::Binary {
                op: BinOp::Eq,
                left: Box::new(Expr::ColumnRef("sno".into())),
                right: Box::new(Expr::Literal(Value::Int((n / 2) as i64))),
            }),
            ..Default::default()
        };
        let reps = scale.pick(3, 9);
        let exp = time_median(reps, || {
            run_view_query(world.db_mut(), &vc, "suppliers", &q).unwrap()
        });
        let mat = time_median(reps, || {
            wow_views::expand::query_via_materialization(world.db_mut(), &vc, "suppliers", &q)
                .unwrap()
        });
        let rows = run_view_query(world.db_mut(), &vc, "suppliers", &q).unwrap();
        let check =
            wow_views::expand::query_via_materialization(world.db_mut(), &vc, "suppliers", &q)
                .unwrap();
        assert_eq!(rows.tuples, check.tuples, "both strategies agree");
        t.push(vec![
            n.to_string(),
            rows.len().to_string(),
            fmt_duration(exp),
            fmt_duration(mat),
            format!("{:.1}×", mat.as_secs_f64() / exp.as_secs_f64().max(1e-12)),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 8 — instrumentation overhead: traced vs untraced hot paths
// ---------------------------------------------------------------------------

/// Table 8: the cost of the span tracer on the three hottest interactive
/// paths — window open, page forward, through-window commit with delta
/// propagation — measured with runtime tracing off and on.
pub fn table8_overhead(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 8",
        "instrumentation overhead: traced vs untraced hot paths",
        &["hot path", "untraced", "traced", "overhead"],
        "runtime tracing adds <5% to every hot path",
    );
    let n = scale.pick(300, 20_000);
    let reps = scale.pick(5, 60);
    // One world, both configurations interleaved over several rounds, with
    // the per-configuration minimum of the medians kept: separate worlds
    // (or one-shot ordering) let allocator and page-cache drift swamp the
    // ~200 ns a span actually costs.
    let mut world = student_world(n);
    let s = world.open_session();
    // A second window so commits exercise delta propagation.
    let _watcher = world.open_window(s, "students", None).unwrap();
    let editor = world.open_window(s, "students", None).unwrap();
    let pager = world.open_window(s, "students", None).unwrap();
    // [path][untraced, traced]
    let mut results = [[Duration::MAX; 2]; 3];
    let mut year = 10i64;
    for round in 0..scale.pick(2, 8) {
        // Alternate which configuration goes first so warm-up drift within
        // a round cannot systematically favour either side.
        let order = if round % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for traced in order {
            let ti = traced as usize;
            wow_obs::tracer().set_enabled(traced);
            let d = time_median(reps, || {
                let win = world.open_window(s, "students", None).unwrap();
                world.close_window(win).unwrap();
            });
            results[0][ti] = results[0][ti].min(d);
            let d = time_median(reps, || {
                if !world.browse_next_page(pager).unwrap() {
                    while world.browse_prev_page(pager).unwrap() {}
                }
            });
            results[1][ti] = results[1][ti].min(d);
            let d = time_median(reps, || {
                world.enter_edit(editor).unwrap();
                year += 1;
                world
                    .window_mut(editor)
                    .unwrap()
                    .form
                    .set_text(2, &(year % 90).to_string());
                world.commit(editor).unwrap();
            });
            results[2][ti] = results[2][ti].min(d);
        }
    }
    wow_obs::tracer().set_enabled(false);
    for (i, name) in ["browse open", "page forward", "delta commit"]
        .iter()
        .enumerate()
    {
        let [untraced, traced] = results[i];
        let overhead = (traced.as_secs_f64() / untraced.as_secs_f64().max(1e-12) - 1.0) * 100.0;
        t.push(vec![
            name.to_string(),
            fmt_duration(untraced),
            fmt_duration(traced),
            format!("{overhead:+.1}%"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 9 — window server: request and commit→push latency vs clients
// ---------------------------------------------------------------------------

/// Table 9: the `wow-net` window server under a concurrent TCP clerk load.
///
/// For each client count the server gets a fresh student world; one client
/// is a watcher measuring commit→push delivery, one is an editor stamping
/// marker commits, and the rest replay deterministic browse scripts. The
/// interesting column is commit→push p95: the time from a commit's `Ack`
/// until another connection holds the refreshed screenful.
pub fn table9_net(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 9",
        "window server: request and commit→push latency vs connected clients",
        &[
            "clients", "requests", "req p50", "req p95", "req p99", "push p50", "push p95",
            "pushes",
        ],
        "commit→push delivery stays in the low milliseconds as clients grow",
    );
    let n = scale.pick(200, 2_000);
    let counts: &[usize] = scale.pick(&[2, 4][..], &[1, 8, 64][..]);
    for &clients in counts {
        let server = wow_net::Server::start(
            student_world(n),
            "127.0.0.1:0",
            wow_net::ServerConfig::default(),
        )
        .expect("bench server must bind a loopback port");
        let cfg = wow_workload::netload::NetLoadConfig {
            clients,
            ops_per_client: scale.pick(6, 40),
            commits: scale.pick(6, 30),
            view: "students".into(),
            edit_field: 2, // `year`: an integer column on the first screenful
            commit_gap_ms: 2,
            seed: 7 + clients as u64,
        };
        let report =
            wow_workload::netload::run(server.local_addr(), &cfg).expect("net load run failed");
        server.shutdown();
        let ns = |v: u64| fmt_duration(Duration::from_nanos(v));
        let req = |p: f64| ns(NetLoadReport::percentile(report.request_ns.clone(), p));
        let push = |p: f64| ns(NetLoadReport::percentile(report.commit_push_ns.clone(), p));
        t.push(vec![
            clients.to_string(),
            report.requests.to_string(),
            req(50.0),
            req(95.0),
            req(99.0),
            push(50.0),
            push(95.0),
            report.pushes.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 10 — the durability ladder: commit cost vs crash protection
// ---------------------------------------------------------------------------

/// Table 10: transactional insert cost at each rung of the durability
/// ladder — no WAL, in-memory WAL, file-backed WAL without fsync, and
/// file-backed WAL with an fsync on every commit — plus the cost of crash
/// recovery (reopening the durable directory and replaying the log).
///
/// The fsync-per-commit configuration is deliberately the **last row**:
/// the CI bench gate reads it from there as the informational
/// `commit_fsync` metric. Each rung runs the same workload: `n`
/// transactions of one insert each against a keyed two-column table.
pub fn table10_durability(scale: Scale) -> Table {
    use wow_storage::wal::SyncPolicy;
    let mut t = Table::new(
        "Table 10",
        "durability ladder: commit cost from no WAL to fsync-per-commit",
        &["configuration", "commits", "total", "per commit"],
        "the fsync, not the logging, is the price of durable commits; recovery replays the committed prefix",
    );
    let n: usize = scale.pick(30, 300);
    let schema = || {
        Schema::new(vec![
            Column::not_null("k", DataType::Int),
            Column::new("payload", DataType::Text),
        ])
    };
    let run_txns = |db: &mut Database| {
        for k in 0..n {
            db.begin().unwrap();
            db.insert(
                "t",
                vec![Value::Int(k as i64), Value::text(format!("row-{k:08}"))],
            )
            .unwrap();
            db.commit().unwrap();
        }
    };
    let per = |d: Duration| fmt_duration(Duration::from_nanos((d.as_nanos() / n as u128) as u64));
    let mut push = |label: &str, d: Duration| {
        t.push(vec![label.into(), n.to_string(), fmt_duration(d), per(d)]);
    };

    // Rung 0: no WAL at all.
    let mut plain = Database::in_memory();
    plain.create_table("t", schema(), &["k"]).unwrap();
    let (d_plain, _) = time_once(|| run_txns(&mut plain));
    push("no WAL", d_plain);

    // Rung 1: logging on, but the log is a memory buffer.
    let mut mem = Database::in_memory();
    mem.attach_wal(Wal::in_memory());
    mem.create_table("t", schema(), &["k"]).unwrap();
    let (d_mem, _) = time_once(|| run_txns(&mut mem));
    push("in-memory WAL", d_mem);

    // Rungs 2 and 3 share a durable directory setup; a closure keeps the
    // plumbing (open, disable auto-checkpoints, pin the fsync policy so
    // `WOW_FSYNC` can't skew the bench) in one place.
    let durable_dir = |tag: &str| {
        let dir =
            std::env::temp_dir().join(format!("wow-bench-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    let open_with_policy = |dir: &std::path::Path, policy: SyncPolicy| {
        let mut db = Database::open_durable(dir).unwrap();
        db.set_checkpoint_every(0);
        let mut wal = db.take_wal().unwrap();
        wal.set_sync_policy(policy);
        db.attach_wal(wal);
        db.create_table("t", schema(), &["k"]).unwrap();
        db
    };

    // Rung 2: the log is a real file, but commits never fsync — fast, and
    // crash-safe against process death (the OS page cache survives a
    // `kill -9`), though not against power loss.
    let lazy_dir = durable_dir("lazy");
    let mut lazy = open_with_policy(&lazy_dir, SyncPolicy::Never);
    let (d_lazy, _) = time_once(|| run_txns(&mut lazy));
    push("file WAL, fsync never", d_lazy);

    // Crash recovery: drop the handle with no checkpoint (the moral
    // equivalent of `kill -9`) and time the reopen, which replays every
    // committed transaction from the log.
    drop(lazy);
    let (d_recover, recovered) = time_once(|| Database::open_durable(&lazy_dir).unwrap());
    let report = recovered.recovery_report().unwrap();
    assert_eq!(report.replayed_ops as usize, n + 1, "n inserts + the DDL");
    let tid = recovered.catalog().table("t").unwrap().id;
    assert_eq!(recovered.row_count(tid), n as u64);
    drop(recovered);
    push("crash recovery (reopen + replay)", d_recover);
    let _ = std::fs::remove_dir_all(&lazy_dir);

    // Rung 3, last row by contract: every commit pays a real fsync.
    let sync_dir = durable_dir("sync");
    let mut sync = open_with_policy(&sync_dir, SyncPolicy::Commit);
    let (d_sync, _) = time_once(|| run_txns(&mut sync));
    push("file WAL, fsync on commit", d_sync);
    drop(sync);
    let _ = std::fs::remove_dir_all(&sync_dir);

    t
}

// ---------------------------------------------------------------------------
// Instrumented workload — the percentile source for BENCH_*.json
// ---------------------------------------------------------------------------

/// Run a dedicated traced workload and return the full registry snapshot:
/// per-operation latency summaries plus every absorbed gauge (`pool.*`,
/// `world.*`, `locks.*`, `exec.*`, `rows.*`). This is what `repro` embeds
/// as the `metrics`/`counters` sections of `BENCH_*.json` (and what the CI
/// bench gate diffs across PRs): repeated window opens and page-forwards
/// over an indexed view, through-window commits delta-propagated to a
/// watcher, and a few rendered frames.
pub fn instrumented_workload(scale: Scale) -> wow_obs::MetricsSnapshot {
    let n = scale.pick(300, 100_000);
    // Enough samples at smoke scale that p95 reflects the warm path, not
    // the one cold-start outlier — the CI gate reads these percentiles.
    let opens = scale.pick(25, 30);
    let commits = scale.pick(25, 50);
    let mut world = student_world(n);
    let s = world.open_session();
    let _watcher = world.open_window(s, "students", None).unwrap();
    let editor = world.open_window(s, "students", None).unwrap();
    // Untraced warmup so the recorded percentiles describe the steady
    // state, not first-touch allocation and cold caches.
    for _ in 0..5 {
        let win = world.open_window(s, "students", None).unwrap();
        world.browse_next_page(win).unwrap();
        world.close_window(win).unwrap();
        world.enter_edit(editor).unwrap();
        world.window_mut(editor).unwrap().form.set_text(2, "3");
        world.commit(editor).unwrap();
    }
    wow_obs::metrics().reset();
    wow_obs::tracer().clear();
    wow_obs::tracer().set_enabled(true);
    for _ in 0..opens {
        let win = world.open_window(s, "students", None).unwrap();
        world.browse_next_page(win).unwrap();
        world.browse_next_page(win).unwrap();
        world.close_window(win).unwrap();
    }
    let mut year = 5i64;
    for _ in 0..commits {
        world.enter_edit(editor).unwrap();
        year += 1;
        world
            .window_mut(editor)
            .unwrap()
            .form
            .set_text(2, &(year % 90).to_string());
        world.commit(editor).unwrap();
        world.render();
    }
    // Plain queries so `query_exec` percentiles land in the snapshot (the
    // browse and commit paths above go through cursors and deltas, not the
    // top-level executor) — the bench gate reads `metrics.query_exec`.
    for i in 0..scale.pick(25, 40) {
        world
            .db_mut()
            .run(&format!(
                "RETRIEVE (s.sid, s.sname) WHERE s.year = {}",
                i % 4
            ))
            .unwrap();
    }
    // A short burst through the window server so `net_request` and
    // `net_push` percentiles land in the snapshot too (the CI bench gate
    // reports them informationally; they only record while the tracer is
    // on, so this runs before it is disabled).
    let server = wow_net::Server::start(
        student_world(scale.pick(60, 2_000)),
        "127.0.0.1:0",
        wow_net::ServerConfig::default(),
    )
    .expect("instrumented workload server must bind a loopback port");
    wow_workload::netload::run(
        server.local_addr(),
        &wow_workload::netload::NetLoadConfig {
            clients: scale.pick(3, 8),
            ops_per_client: scale.pick(5, 40),
            commits: scale.pick(5, 25),
            view: "students".into(),
            edit_field: 2,
            commit_gap_ms: 2,
            seed: 11,
        },
    )
    .expect("instrumented net load failed");
    server.shutdown();
    wow_obs::tracer().set_enabled(false);
    // Fold the legacy stats surfaces (PoolStats, WorldStats, lock/exec
    // counters, per-table row counts) into the same snapshot the
    // percentiles come from.
    world.export_metrics();
    wow_obs::metrics().snapshot()
}

/// Traced-vs-untraced wall time over the same query workload — the
/// "observability tax" the CI gate bounds at 5%.
#[derive(Debug, Clone, Copy)]
pub struct TracingOverhead {
    /// Median workload wall time with the tracer off.
    pub untraced_ns: u64,
    /// Median workload wall time with the tracer on (spans recorded,
    /// operators instrumented).
    pub traced_ns: u64,
    /// `traced_ns / untraced_ns`.
    pub ratio: f64,
}

/// Measure the cost of leaving the tracer on: the same query workload is
/// timed with tracing off and on, alternating, and the medians compared.
/// Alternation keeps slow drift (thermal, cache, scheduler) from landing
/// entirely on one side of the comparison.
pub fn tracing_overhead(scale: Scale) -> TracingOverhead {
    let n = scale.pick(2_000, 60_000);
    let reps = scale.pick(3, 7);
    let queries = scale.pick(8, 25);
    let mut world = student_world(n);
    let run_once = |world: &mut World| {
        for i in 0..queries {
            world
                .db_mut()
                .run(&format!(
                    "RETRIEVE (s.sname, s.gpa) WHERE s.year = {} AND s.gpa > 2.0 SORT BY s.gpa",
                    i % 4
                ))
                .unwrap();
        }
    };
    run_once(&mut world); // warmup: first-touch allocation, cold caches
    let mut untraced = Vec::with_capacity(reps);
    let mut traced = Vec::with_capacity(reps);
    for _ in 0..reps {
        wow_obs::tracer().set_enabled(false);
        let t0 = Instant::now();
        run_once(&mut world);
        untraced.push(t0.elapsed().as_nanos() as u64);
        wow_obs::tracer().set_enabled(true);
        let t0 = Instant::now();
        run_once(&mut world);
        traced.push(t0.elapsed().as_nanos() as u64);
    }
    wow_obs::tracer().set_enabled(false);
    untraced.sort_unstable();
    traced.sort_unstable();
    let u = untraced[reps / 2].max(1);
    let t = traced[reps / 2];
    TracingOverhead {
        untraced_ns: u,
        traced_ns: t,
        ratio: t as f64 / u as f64,
    }
}

/// The annotated plan behind `repro --explain`: one representative
/// filter/sort/limit query run through `EXPLAIN ANALYZE`.
pub fn explain_analyze_demo(scale: Scale) -> String {
    let n = scale.pick(500, 20_000);
    let mut world = student_world(n);
    let rows = world
        .db_mut()
        .run(
            "EXPLAIN ANALYZE RETRIEVE (s.sname, s.gpa) \
             WHERE s.year = 2 AND s.gpa > 2.0 SORT BY s.gpa LIMIT 10",
        )
        .unwrap();
    rows.tuples
        .iter()
        .map(|t| t.values[0].to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Run every experiment at a scale.
pub fn run_all(scale: Scale) -> Vec<Table> {
    vec![
        table1_form_compile(scale),
        table2_browse(scale),
        table2b_limit_pushdown(scale),
        table3_view_update(scale),
        table4_qbf(scale),
        figure1_redraw(scale),
        figure2_join_view(scale),
        figure3_scan_crossover(scale),
        figure4_propagate(scale),
        figure5_parallel_scaling(scale),
        figure6_vectorized(scale),
        table5_locking(scale),
        table6_wal(scale),
        table7_expansion(scale),
        table8_overhead(scale),
        table9_net(scale),
        table10_durability(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both tests below toggle the process-global tracer; serialize them so
    /// neither disables tracing mid-measurement of the other.
    static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn every_experiment_runs_at_smoke_scale() {
        let _serial = TRACE_LOCK.lock().unwrap();
        for table in run_all(Scale::Smoke) {
            assert!(!table.rows.is_empty(), "{} produced no rows", table.id);
            // Render must not panic and must carry the id.
            let text = crate::render_table(&table);
            assert!(text.contains(&table.id));
        }
    }

    #[test]
    fn instrumented_workload_yields_required_percentiles() {
        let _serial = TRACE_LOCK.lock().unwrap();
        let snap = instrumented_workload(Scale::Smoke);
        for required in ["browse_open", "commit", "delta_refresh", "query_exec"] {
            let (_, h) = snap
                .ops
                .iter()
                .find(|(op, _)| op.name() == required)
                .unwrap_or_else(|| panic!("workload must record {required}"));
            assert!(h.count > 0);
            assert!(h.p50_ns <= h.p95_ns && h.p95_ns <= h.p99_ns);
        }
        // All three legacy stats surfaces made it into the one snapshot.
        for gauge in ["pool.hits", "world.commits", "rows.student"] {
            assert!(snap.counter(gauge).is_some(), "missing gauge {gauge}");
        }
    }
}
