//! A minimal JSON reader for the bench gate.
//!
//! The offline build has no serde_json; `repro` hand-writes its JSON and
//! the CI regression gate needs to read it (and the checked-in baseline
//! from the previous PR) back. This is a ~hundred-line recursive-descent
//! parser over exactly the JSON subset those files use — objects, arrays,
//! strings with simple escapes, numbers, booleans, null.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64 — the bench files stay well inside 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (empty for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a JSON document. Returns `Err` with a byte offset and message on
/// malformed input.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "bad utf-8 in string".to_string());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let c = char::from_u32(hex).unwrap_or('\u{fffd}');
                        out.extend_from_slice(c.to_string().as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        members.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_bench_shape() {
        let src = r#"{"bench":"PR4","scale":"Smoke","experiments":[
            {"id":"Table 2","headers":["a","b"],"rows":[["100","163.2 µs"]]}],
            "metrics":{"browse_open":{"count":10,"p95_ns":12345}}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("PR4"));
        let exps = v.get("experiments").unwrap().items();
        assert_eq!(exps.len(), 1);
        assert_eq!(
            exps[0].get("rows").unwrap().items()[0].items()[1].as_str(),
            Some("163.2 µs")
        );
        let p95 = v
            .get("metrics")
            .and_then(|m| m.get("browse_open"))
            .and_then(|o| o.get("p95_ns"))
            .and_then(Json::as_f64);
        assert_eq!(p95, Some(12345.0));
    }

    #[test]
    fn escapes_and_numbers() {
        let v = parse(r#"["a\"b\\c\nd", -1.5e3, true, false, null, "µs"]"#).unwrap();
        assert_eq!(v.items()[0].as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.items()[1].as_f64(), Some(-1500.0));
        assert_eq!(v.items()[2], Json::Bool(true));
        assert_eq!(v.items()[4], Json::Null);
        assert_eq!(v.items()[5].as_str(), Some("µs"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn unicode_escape() {
        let v = parse(r#""µs""#).unwrap();
        assert_eq!(v.as_str(), Some("µs"));
    }
}
