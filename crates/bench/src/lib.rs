//! # wow-bench
//!
//! The evaluation harness: one module per table/figure of the
//! (reconstructed) evaluation, each returning a structured result that the
//! `repro` binary renders and `EXPERIMENTS.md` records. The Criterion
//! targets under `benches/` wrap the same code paths for statistically
//! careful micro-numbers; the `repro` binary favours end-to-end shape.
//!
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured notes.

pub mod experiments;
pub mod json;
pub mod table;

pub use table::{render_table, Table};

use std::time::{Duration, Instant};

/// Time one invocation.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Median wall time of `reps` invocations (reps ≥ 1).
pub fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    assert!(reps >= 1);
    let mut times: Vec<Duration> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Pretty-print a duration with an adaptive unit.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_constant_work_is_positive() {
        let d = time_median(5, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn duration_formatting_units() {
        assert!(fmt_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(50)).ends_with(" s"));
    }
}
