//! Result tables: the shape every experiment reports in.

/// A rendered experiment result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id ("Table 1", "Figure 3", ...).
    pub id: String,
    /// One-line question the experiment answers.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// The qualitative claim the numbers should exhibit.
    pub expectation: String,
}

impl Table {
    /// Build a table.
    pub fn new(id: &str, title: &str, headers: &[&str], expectation: &str) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            expectation: expectation.to_string(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity");
        self.rows.push(row);
    }
}

/// Render a table as aligned text.
pub fn render_table(t: &Table) -> String {
    let mut widths: Vec<usize> = t.headers.iter().map(|h| h.chars().count()).collect();
    for row in &t.rows {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.chars().count());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {}: {} ==\n", t.id, t.title));
    let line = |cells: &[String], widths: &[usize]| -> String {
        let mut s = String::new();
        for (c, w) in cells.iter().zip(widths) {
            let pad = w - c.chars().count();
            s.push_str(c);
            s.push_str(&" ".repeat(pad + 2));
        }
        s.trim_end().to_string()
    };
    out.push_str(&line(&t.headers, &widths));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  "),
    );
    out.push('\n');
    for row in &t.rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out.push_str(&format!("expected shape: {}\n", t.expectation));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Table 0", "demo", &["n", "time"], "grows");
        t.push(vec!["1".into(), "10 µs".into()]);
        t.push(vec!["1000".into(), "1.2 ms".into()]);
        let s = render_table(&t);
        assert!(s.contains("Table 0"));
        assert!(s.contains("n     time"));
        assert!(s.contains("expected shape: grows"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("T", "x", &["a", "b"], "");
        t.push(vec!["only-one".into()]);
    }
}
