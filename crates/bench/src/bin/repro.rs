//! `repro` — regenerate every table and figure of the evaluation.
//!
//! ```text
//! cargo run -p wow-bench --bin repro --release            # everything
//! cargo run -p wow-bench --bin repro --release -- table2  # one experiment
//! cargo run -p wow-bench --bin repro --release -- --smoke # tiny sizes
//! ```

use wow_bench::experiments::{self, Scale};
use wow_bench::render_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Full
    };
    let filter: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let runs: Vec<(&str, fn(Scale) -> wow_bench::Table)> = vec![
        ("table1", experiments::table1_form_compile),
        ("table2", experiments::table2_browse),
        ("table3", experiments::table3_view_update),
        ("table4", experiments::table4_qbf),
        ("figure1", experiments::figure1_redraw),
        ("figure2", experiments::figure2_join_view),
        ("figure3", experiments::figure3_scan_crossover),
        ("figure4", experiments::figure4_propagate),
        ("table5", experiments::table5_locking),
        ("table6", experiments::table6_wal),
        ("table7", experiments::table7_expansion),
    ];
    println!("Windows on the World — evaluation reproduction (scale: {scale:?})");
    println!("(reconstructed experiments; see DESIGN.md for the paper-text mismatch note)\n");
    let mut ran = 0;
    for (key, f) in runs {
        if !filter.is_empty() && !filter.iter().any(|w| w.as_str() == key) {
            continue;
        }
        let table = f(scale);
        println!("{}", render_table(&table));
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched; known keys: table1..table7, figure1..figure4");
        std::process::exit(2);
    }
}
