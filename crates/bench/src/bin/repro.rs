//! `repro` — regenerate every table and figure of the evaluation.
//!
//! ```text
//! cargo run -p wow-bench --bin repro --release             # everything
//! cargo run -p wow-bench --bin repro --release -- table2   # one experiment
//! cargo run -p wow-bench --bin repro --release -- --smoke  # tiny sizes
//! cargo run -p wow-bench --bin repro --release -- --metrics # dump percentiles
//! cargo run -p wow-bench --bin repro --release -- --explain # annotated plan demo
//! ```
//!
//! Besides the rendered text, a machine-readable `BENCH_PR10.json` with the
//! same rows — plus a `metrics` section carrying p50/p95/p99 latency
//! percentiles per traced operation and a `tracing` section with the
//! traced-vs-untraced overhead ratio the CI gate bounds — is written to
//! the working directory (disable with `--no-json`). Two more artifacts
//! ride along for CI: `METRICS.prom` (the Prometheus-format metrics dump,
//! same text the wire-level `MetricsDump` request returns) and
//! `SLOW_QUERIES.log` (the tracer's slow-query log). `--metrics`
//! additionally prints the percentile section as a human-readable table;
//! `--explain` prints an `EXPLAIN ANALYZE` annotated plan for a
//! representative query and exits. The percentiles come from running the
//! instrumented workload (`experiments::instrumented_workload`) with the
//! span tracer on, so `BENCH_PR10.json` is what the CI `bench_gate` binary
//! diffs against the checked-in baseline.

use wow_bench::experiments::{self, Scale, TracingOverhead};
use wow_bench::{fmt_duration, render_table, Table};
use wow_obs::MetricsSnapshot;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_array(items: impl Iterator<Item = String>) -> String {
    format!("[{}]", items.collect::<Vec<_>>().join(","))
}

/// Serialize the run. Hand-rolled: the offline build has no serde_json.
fn to_json(
    scale: Scale,
    tables: &[Table],
    metrics: &MetricsSnapshot,
    overhead: Option<TracingOverhead>,
) -> String {
    let experiments = json_array(tables.iter().map(|t| {
        let headers = json_array(t.headers.iter().map(|h| format!("\"{}\"", json_escape(h))));
        let rows = json_array(
            t.rows
                .iter()
                .map(|r| json_array(r.iter().map(|c| format!("\"{}\"", json_escape(c))))),
        );
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"headers\":{},\"rows\":{},\"expectation\":\"{}\"}}",
            json_escape(&t.id),
            json_escape(&t.title),
            headers,
            rows,
            json_escape(&t.expectation)
        )
    }));
    let ops = metrics
        .ops
        .iter()
        .map(|(op, s)| {
            format!(
                "\"{}\":{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                json_escape(op.name()),
                s.count,
                s.mean_ns,
                s.p50_ns,
                s.p95_ns,
                s.p99_ns,
                s.max_ns
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let counters = metrics
        .counters
        .iter()
        .map(|(name, v)| format!("\"{}\":{v}", json_escape(name)))
        .collect::<Vec<_>>()
        .join(",");
    let tracing = match overhead {
        Some(o) => format!(
            ",\"tracing\":{{\"untraced_ns\":{},\"traced_ns\":{},\"overhead_ratio\":{:.4}}}",
            o.untraced_ns, o.traced_ns, o.ratio
        ),
        None => String::new(),
    };
    format!(
        "{{\"bench\":\"PR10\",\"scale\":\"{scale:?}\",\"experiments\":{experiments},\
         \"metrics\":{{{ops}}},\"counters\":{{{counters}}}{tracing}}}\n"
    )
}

fn print_metrics(metrics: &MetricsSnapshot) {
    println!("Traced-operation latency percentiles (instrumented workload)");
    println!(
        "  {:<14} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "op", "count", "mean", "p50", "p95", "p99", "max"
    );
    for (op, s) in &metrics.ops {
        let d = |ns: u64| fmt_duration(std::time::Duration::from_nanos(ns));
        println!(
            "  {:<14} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            op.name(),
            s.count,
            d(s.mean_ns),
            d(s.p50_ns),
            d(s.p95_ns),
            d(s.p99_ns),
            d(s.max_ns)
        );
    }
    println!();
    println!("Gauges (pool / world / locks / exec / rows)");
    for (name, v) in &metrics.counters {
        println!("  {name:<26} {v}");
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Full
    };
    if args.iter().any(|a| a == "--explain") {
        println!("EXPLAIN ANALYZE demo (student world, filter + sort + limit):\n");
        println!("{}", experiments::explain_analyze_demo(scale));
        return;
    }
    let write_json = !args.iter().any(|a| a == "--no-json");
    let dump_metrics = args.iter().any(|a| a == "--metrics");
    let filter: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let runs: Vec<(&str, fn(Scale) -> Table)> = vec![
        ("table1", experiments::table1_form_compile),
        ("table2", experiments::table2_browse),
        ("table2b", experiments::table2b_limit_pushdown),
        ("table3", experiments::table3_view_update),
        ("table4", experiments::table4_qbf),
        ("figure1", experiments::figure1_redraw),
        ("figure2", experiments::figure2_join_view),
        ("figure3", experiments::figure3_scan_crossover),
        ("figure4", experiments::figure4_propagate),
        ("figure5", experiments::figure5_parallel_scaling),
        ("figure6", experiments::figure6_vectorized),
        ("table5", experiments::table5_locking),
        ("table6", experiments::table6_wal),
        ("table7", experiments::table7_expansion),
        ("table8", experiments::table8_overhead),
        ("table9", experiments::table9_net),
        ("table10", experiments::table10_durability),
    ];
    println!("Windows on the World — evaluation reproduction (scale: {scale:?})");
    println!("(reconstructed experiments; see DESIGN.md for the paper-text mismatch note)\n");
    let mut tables = Vec::new();
    for (key, f) in runs {
        if !filter.is_empty() && !filter.iter().any(|w| w.as_str() == key) {
            continue;
        }
        let table = f(scale);
        println!("{}", render_table(&table));
        tables.push(table);
    }
    if tables.is_empty() {
        eprintln!("no experiment matched; known keys: table1..table10, table2b, figure1..figure6");
        std::process::exit(2);
    }
    // Percentiles only accompany a full (unfiltered) run: a filtered run is
    // someone iterating on one experiment, and the workload costs seconds.
    // A 1 ms slow threshold (vs the 100 ms production default) makes the
    // workload's heavier root spans land in the slow-query log artifact;
    // the env override survives the per-World threshold resets that
    // constructing bench worlds would otherwise apply.
    let metrics = if filter.is_empty() && (write_json || dump_metrics) {
        if std::env::var_os("WOW_SLOW_NS").is_none() {
            std::env::set_var("WOW_SLOW_NS", "1000000");
        }
        wow_obs::tracer().set_slow_threshold_ns(wow_obs::resolve_slow_threshold_ns(1_000_000));
        experiments::instrumented_workload(scale)
    } else {
        MetricsSnapshot::default()
    };
    if dump_metrics && !metrics.ops.is_empty() {
        print_metrics(&metrics);
    }
    if write_json {
        let overhead = experiments::tracing_overhead(scale);
        println!(
            "tracing overhead: untraced {} vs traced {} ({:.2}% — gate limit 5%)",
            fmt_duration(std::time::Duration::from_nanos(overhead.untraced_ns)),
            fmt_duration(std::time::Duration::from_nanos(overhead.traced_ns)),
            (overhead.ratio - 1.0) * 100.0
        );
        let path = "BENCH_PR10.json";
        match std::fs::write(path, to_json(scale, &tables, &metrics, Some(overhead))) {
            Ok(()) => println!("wrote {path} ({} experiments)", tables.len()),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
        match std::fs::write("METRICS.prom", wow_obs::prometheus(&metrics)) {
            Ok(()) => println!("wrote METRICS.prom"),
            Err(e) => eprintln!("could not write METRICS.prom: {e}"),
        }
        let slow = wow_obs::tracer().slow_snapshot();
        let mut log = String::from("# slow-query log: root spans over the slow threshold\n");
        for s in &slow {
            log.push_str(&format!(
                "trace={} span={} op={} dur_ns={} arg={}\n",
                s.trace_id,
                s.span_id,
                s.op.name(),
                s.dur_ns,
                s.arg
            ));
        }
        match std::fs::write("SLOW_QUERIES.log", log) {
            Ok(()) => println!("wrote SLOW_QUERIES.log ({} entries)", slow.len()),
            Err(e) => eprintln!("could not write SLOW_QUERIES.log: {e}"),
        }
    }
}
