//! `bench_gate` — CI regression gate over the repro output.
//!
//! ```text
//! cargo run -p wow-bench --bin bench_gate --release -- BENCH_PR4.json BENCH_PR3.json
//! ```
//!
//! Compares the freshly generated bench file (first arg, default
//! `BENCH_PR4.json`) against the checked-in baseline from the previous PR
//! (second arg, default `BENCH_PR3.json`) and exits non-zero when:
//!
//! * a required percentile field is missing from the current file
//!   (`metrics.{browse_open,commit,delta_refresh}.{p50,p95,p99}_ns`), or
//! * the browse-open or delta-commit p95 regressed more than 2× over the
//!   baseline.
//!
//! The baseline may predate the `metrics` section (PR3 did): in that case
//! the gate falls back to the duration cells of the rendered tables —
//! Table 2's "open (indexed)" column and Figure 4's "delta commit" column,
//! last (largest-cardinality) row — parsed from strings like "163.2 µs".

use wow_bench::json::{parse, Json};

/// The regression threshold: fail when current p95 exceeds 2× baseline.
const MAX_RATIO: f64 = 2.0;

/// Parse a rendered duration cell ("8314 ns", "163.2 µs", "30.91 ms",
/// "1.20 s") into nanoseconds.
fn parse_duration_ns(cell: &str) -> Option<f64> {
    let cell = cell.trim();
    let split = cell.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))?;
    let value: f64 = cell[..split].parse().ok()?;
    let scale = match cell[split..].trim() {
        "ns" => 1.0,
        "µs" | "us" => 1_000.0,
        "ms" => 1_000_000.0,
        "s" => 1_000_000_000.0,
        _ => return None,
    };
    Some(value * scale)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// p95 for `op` from a file's `metrics` section, if present.
fn metrics_p95(doc: &Json, op: &str) -> Option<f64> {
    doc.get("metrics")?.get(op)?.get("p95_ns")?.as_f64()
}

/// A duration cell from the last row of the experiment titled `id`,
/// in the column named `column`.
fn table_cell_ns(doc: &Json, id: &str, column: &str) -> Option<f64> {
    let exp = doc
        .get("experiments")?
        .items()
        .iter()
        .find(|e| e.get("id").and_then(Json::as_str) == Some(id))?;
    let col = exp
        .get("headers")?
        .items()
        .iter()
        .position(|h| h.as_str() == Some(column))?;
    let last = exp.get("rows")?.items().last()?;
    parse_duration_ns(last.items().get(col)?.as_str()?)
}

/// Baseline p95 for a gated op: prefer the metrics section (baselines from
/// PR4 on have one), else fall back to the rendered table cell.
fn baseline_ns(doc: &Json, op: &str, table: &str, column: &str) -> Option<f64> {
    metrics_p95(doc, op).or_else(|| table_cell_ns(doc, table, column))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let current_path = args.first().map(String::as_str).unwrap_or("BENCH_PR4.json");
    let baseline_path = args.get(1).map(String::as_str).unwrap_or("BENCH_PR3.json");

    let (current, baseline) = match (load(current_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            std::process::exit(1);
        }
    };

    let mut failures = Vec::new();

    // Required percentile fields: the whole point of BENCH_PR4.json is to
    // carry these, so their absence is itself a gate failure.
    for op in ["browse_open", "commit", "delta_refresh"] {
        for field in ["p50_ns", "p95_ns", "p99_ns"] {
            let present = current
                .get("metrics")
                .and_then(|m| m.get(op))
                .and_then(|o| o.get(field))
                .and_then(Json::as_f64)
                .is_some();
            if !present {
                failures.push(format!("{current_path}: missing metrics.{op}.{field}"));
            }
        }
    }

    // Regression checks: browse-open and delta-commit p95 vs 2× baseline.
    let gates = [
        ("browse_open", "Table 2", "open (indexed)"),
        ("commit", "Figure 4", "delta commit"),
    ];
    for (op, table, column) in gates {
        let cur = metrics_p95(&current, op);
        let base = baseline_ns(&baseline, op, table, column);
        match (cur, base) {
            (Some(cur), Some(base)) if base > 0.0 => {
                let ratio = cur / base;
                let verdict = if ratio > MAX_RATIO { "FAIL" } else { "ok" };
                println!(
                    "{op:<14} p95 {:>12.0} ns vs baseline {:>12.0} ns  ({ratio:.2}×)  {verdict}",
                    cur, base
                );
                if ratio > MAX_RATIO {
                    failures.push(format!(
                        "{op} p95 regressed {ratio:.2}× (limit {MAX_RATIO}×) vs {baseline_path}"
                    ));
                }
            }
            (cur, base) => {
                if cur.is_none() {
                    failures.push(format!("{current_path}: no p95 for {op}"));
                }
                if base.is_none() {
                    failures.push(format!(
                        "{baseline_path}: no baseline for {op} (metrics.{op}.p95_ns or {table} \"{column}\")"
                    ));
                }
            }
        }
    }

    if failures.is_empty() {
        println!("bench_gate: all checks passed");
    } else {
        for f in &failures {
            eprintln!("bench_gate: {f}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::parse_duration_ns;

    #[test]
    fn duration_cells_parse() {
        assert_eq!(parse_duration_ns("8314 ns"), Some(8314.0));
        assert_eq!(parse_duration_ns("163.2 µs"), Some(163_200.0));
        assert_eq!(parse_duration_ns("163.2 us"), Some(163_200.0));
        assert_eq!(parse_duration_ns("30.91 ms"), Some(30_910_000.0));
        assert_eq!(parse_duration_ns("1.20 s"), Some(1_200_000_000.0));
        assert_eq!(parse_duration_ns("seq"), None);
        assert_eq!(parse_duration_ns("1713.3×"), None);
    }
}
