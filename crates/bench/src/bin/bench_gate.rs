//! `bench_gate` — CI regression gate over the repro output.
//!
//! ```text
//! cargo run -p wow-bench --bin bench_gate --release -- BENCH_PR10.json BENCH_PR9.json
//! ```
//!
//! Compares the freshly generated bench file (first arg, default
//! `BENCH_PR10.json`) against the checked-in baseline from the previous PR
//! (second arg, default `BENCH_PR9.json`) and exits non-zero when:
//!
//! * a required percentile field is missing from the current file
//!   (`metrics.{browse_open,commit,delta_refresh,query_exec,net_request,net_push}
//!   .{p50,p95,p99}_ns`), or
//! * the browse-open, delta-commit, or query-exec p95 regressed more
//!   than 2× over the baseline. `query_exec` has been enforcing since
//!   PR7 and now guards the vectorized executor's hot path, or
//! * the `tracing.overhead_ratio` section is missing, or the measured
//!   traced-vs-untraced executor overhead exceeds 5% — always-on causal
//!   tracing must stay cheap enough to leave on.
//!
//! `commit_fsync` — the per-commit cost of the fully durable
//! fsync-on-commit configuration, read from the last row of Table 10 —
//! is informational in this PR: it is new, so the previous baseline has
//! no value for it, and its absolute number is dominated by the host's
//! storage stack (fs, page cache, whether fsync is honored at all in a
//! container). It is printed and recorded so the next PR has a baseline.
//!
//! `net_request`/`net_push` stay informational: their server-side spans
//! include world-lock queueing under an 8-client burst, which is
//! dominated by how contended the host is on a given day — re-running
//! the *unchanged* PR7 code on a busier machine reproduced a 3.7×
//! `net_request` p95 swing while the client-observed latencies of
//! Table 9 improved. A 2× gate on those numbers would flag machine
//! weather, not regressions.
//!
//! A baseline may predate an enforcing metric's `metrics` section
//! entirely; the older metrics then fall back to the duration cells of
//! the rendered tables (Table 2's "open (indexed)" column, Figure 4's
//! "delta commit" column, last row).

use wow_bench::json::{parse, Json};

/// The regression threshold: fail when current p95 exceeds 2× baseline.
const MAX_RATIO: f64 = 2.0;

/// The tracing-overhead ceiling: traced runs may cost at most 5% more
/// wall time than untraced runs of the same workload.
const MAX_TRACING_OVERHEAD: f64 = 1.05;

/// Parse a rendered duration cell ("8314 ns", "163.2 µs", "30.91 ms",
/// "1.20 s") into nanoseconds.
fn parse_duration_ns(cell: &str) -> Option<f64> {
    let cell = cell.trim();
    let split = cell.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))?;
    let value: f64 = cell[..split].parse().ok()?;
    let scale = match cell[split..].trim() {
        "ns" => 1.0,
        "µs" | "us" => 1_000.0,
        "ms" => 1_000_000.0,
        "s" => 1_000_000_000.0,
        _ => return None,
    };
    Some(value * scale)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// p95 for `op` from a file's `metrics` section, if present.
fn metrics_p95(doc: &Json, op: &str) -> Option<f64> {
    doc.get("metrics")?.get(op)?.get("p95_ns")?.as_f64()
}

/// A duration cell from the last row of the experiment titled `id`,
/// in the column named `column`.
fn table_cell_ns(doc: &Json, id: &str, column: &str) -> Option<f64> {
    let exp = doc
        .get("experiments")?
        .items()
        .iter()
        .find(|e| e.get("id").and_then(Json::as_str) == Some(id))?;
    let col = exp
        .get("headers")?
        .items()
        .iter()
        .position(|h| h.as_str() == Some(column))?;
    let last = exp.get("rows")?.items().last()?;
    parse_duration_ns(last.items().get(col)?.as_str()?)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let current_path = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_PR10.json");
    let baseline_path = args.get(1).map(String::as_str).unwrap_or("BENCH_PR9.json");

    let (current, baseline) = match (load(current_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            std::process::exit(1);
        }
    };

    let mut failures = Vec::new();

    // Required percentile fields: the whole point of BENCH_PR8.json is to
    // carry these, so their absence is itself a gate failure.
    for op in [
        "browse_open",
        "commit",
        "delta_refresh",
        "query_exec",
        "net_request",
        "net_push",
    ] {
        for field in ["p50_ns", "p95_ns", "p99_ns"] {
            let present = current
                .get("metrics")
                .and_then(|m| m.get(op))
                .and_then(|o| o.get(field))
                .and_then(Json::as_f64)
                .is_some();
            if !present {
                failures.push(format!("{current_path}: missing metrics.{op}.{field}"));
            }
        }
    }

    // Regression checks: p95 vs 2× baseline. `enforcing: false` marks a
    // metric whose value is printed for the record but never fails the
    // gate — either because it is new in this PR (no meaningful baseline
    // yet) or, for the net ops, because the number is dominated by host
    // contention rather than code (see the module doc). An enforcing gate
    // with a table fallback can still read its baseline from an older
    // file that predates the `metrics` section. The same fallback applies
    // to the *current* side for gates whose value lives only in a table
    // (`commit_fsync` reads Table 10's last row, not the metrics section).
    let gates = [
        ("browse_open", Some(("Table 2", "open (indexed)")), true),
        ("commit", Some(("Figure 4", "delta commit")), true),
        ("query_exec", None, true),
        ("net_request", None, false),
        ("net_push", None, false),
        ("commit_fsync", Some(("Table 10", "per commit")), false),
    ];
    for (op, fallback, enforcing) in gates {
        let cur = metrics_p95(&current, op).or_else(|| {
            fallback.and_then(|(table, column)| table_cell_ns(&current, table, column))
        });
        let base = metrics_p95(&baseline, op).or_else(|| {
            fallback.and_then(|(table, column)| table_cell_ns(&baseline, table, column))
        });
        match (cur, base) {
            (Some(cur), Some(base)) if base > 0.0 => {
                let ratio = cur / base;
                let verdict = if ratio <= MAX_RATIO {
                    "ok"
                } else if enforcing {
                    "FAIL"
                } else {
                    "high (informational)"
                };
                println!(
                    "{op:<14} p95 {:>12.0} ns vs baseline {:>12.0} ns  ({ratio:.2}×)  {verdict}",
                    cur, base
                );
                if enforcing && ratio > MAX_RATIO {
                    failures.push(format!(
                        "{op} p95 regressed {ratio:.2}× (limit {MAX_RATIO}×) vs {baseline_path}"
                    ));
                }
            }
            (Some(cur), _) if !enforcing => {
                println!(
                    "{op:<14} p95 {cur:>12.0} ns (no baseline in {baseline_path}; recorded for the next PR)"
                );
            }
            (cur, base) => {
                if cur.is_none() {
                    failures.push(format!("{current_path}: no p95 for {op}"));
                }
                if base.is_none() {
                    match fallback {
                        Some((table, column)) => failures.push(format!(
                            "{baseline_path}: no baseline for {op} (metrics.{op}.p95_ns or {table} \"{column}\")"
                        )),
                        None => failures.push(format!(
                            "{baseline_path}: no baseline for {op} (metrics.{op}.p95_ns)"
                        )),
                    }
                }
            }
        }
    }

    // Tracing overhead: read from the current file only — the measurement
    // is self-relative (traced vs untraced in the same process), so no
    // baseline is involved and machine weather cancels out.
    match current
        .get("tracing")
        .and_then(|t| t.get("overhead_ratio"))
        .and_then(Json::as_f64)
    {
        Some(ratio) => {
            let verdict = if ratio <= MAX_TRACING_OVERHEAD {
                "ok"
            } else {
                "FAIL"
            };
            println!(
                "tracing overhead {:.2}% (limit {:.0}%)  {verdict}",
                (ratio - 1.0) * 100.0,
                (MAX_TRACING_OVERHEAD - 1.0) * 100.0
            );
            if ratio > MAX_TRACING_OVERHEAD {
                failures.push(format!(
                    "tracing overhead {ratio:.3}× exceeds {MAX_TRACING_OVERHEAD}×"
                ));
            }
        }
        None => failures.push(format!("{current_path}: missing tracing.overhead_ratio")),
    }

    if failures.is_empty() {
        println!("bench_gate: all checks passed");
    } else {
        for f in &failures {
            eprintln!("bench_gate: {f}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::parse_duration_ns;

    #[test]
    fn duration_cells_parse() {
        assert_eq!(parse_duration_ns("8314 ns"), Some(8314.0));
        assert_eq!(parse_duration_ns("163.2 µs"), Some(163_200.0));
        assert_eq!(parse_duration_ns("163.2 us"), Some(163_200.0));
        assert_eq!(parse_duration_ns("30.91 ms"), Some(30_910_000.0));
        assert_eq!(parse_duration_ns("1.20 s"), Some(1_200_000_000.0));
        assert_eq!(parse_duration_ns("seq"), None);
        assert_eq!(parse_duration_ns("1713.3×"), None);
    }
}
