//! Criterion target for Table 1: form compilation vs schema width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wow_forms::compiler::compile_form_all_writable;
use wow_rel::schema::{Column, Schema};
use wow_rel::types::DataType;

fn bench_form_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_form_compile");
    for k in [2usize, 8, 32, 64] {
        let schema = Schema::new(
            (0..k)
                .map(|i| Column::new(format!("attr_{i}_name"), DataType::Text))
                .collect(),
        );
        g.bench_with_input(BenchmarkId::from_parameter(k), &schema, |b, s| {
            b.iter(|| compile_form_all_writable("f", "F", s))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_form_compile);
criterion_main!(benches);
