//! Criterion target for Table 7: query modification vs materialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wow_core::config::WorldConfig;
use wow_rel::expr::{BinOp, Expr};
use wow_rel::value::Value;
use wow_views::expand::{query_via_materialization, run_view_query, ViewQuery};
use wow_views::ViewCatalog;
use wow_workload::suppliers::{build_world, SuppliersConfig};

fn bench_expansion(c: &mut Criterion) {
    let mut g = c.benchmark_group("table7_expansion");
    g.sample_size(20);
    for n in [1_000usize, 10_000] {
        let mut world = build_world(
            WorldConfig::default(),
            &SuppliersConfig {
                suppliers: n,
                parts: 10,
                shipments: 10,
                seed: 71,
            },
        );
        let mut vc = ViewCatalog::new();
        for name in world.views().names() {
            vc.register(world.views().get(&name).unwrap().clone())
                .unwrap();
        }
        let q = ViewQuery {
            pred: Some(Expr::Binary {
                op: BinOp::Eq,
                left: Box::new(Expr::ColumnRef("sno".into())),
                right: Box::new(Expr::Literal(Value::Int((n / 2) as i64))),
            }),
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("expansion", n), &n, |b, _| {
            b.iter(|| run_view_query(world.db_mut(), &vc, "suppliers", &q).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("materialization", n), &n, |b, _| {
            b.iter(|| query_via_materialization(world.db_mut(), &vc, "suppliers", &q).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_expansion);
criterion_main!(benches);
