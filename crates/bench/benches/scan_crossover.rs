//! Criterion target for Figure 3: index vs sequential scan by selectivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wow_rel::db::Database;
use wow_rel::exec::{execute, KeyBound, PhysicalPlan};
use wow_rel::expr::{BinOp, Expr};
use wow_rel::value::Value;

fn setup(n: usize) -> Database {
    let mut db = Database::in_memory();
    db.run(
        "CREATE TABLE nums (k INT KEY, v INT NOT NULL, pad TEXT)
         CREATE INDEX nums_v ON nums (v)",
    )
    .unwrap();
    let pad = "x".repeat(40);
    for k in 0..n {
        db.insert(
            "nums",
            vec![
                Value::Int(k as i64),
                Value::Int(((k * 2654435761) % n) as i64),
                Value::text(pad.clone()),
            ],
        )
        .unwrap();
    }
    db
}

fn bench_scan_crossover(c: &mut Criterion) {
    let n = 20_000usize;
    let mut db = setup(n);
    let mut g = c.benchmark_group("figure3_scan_crossover");
    g.sample_size(20);
    for sel_bp in [10u64, 100, 1000, 5000] {
        // basis points of selectivity
        let threshold = ((n as u64 * sel_bp) / 10_000).max(1) as i64;
        let schema = db.catalog().table("nums").unwrap().schema.qualified("x");
        let pred = Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(Expr::ColumnRef("x.v".into())),
            right: Box::new(Expr::Literal(Value::Int(threshold))),
        }
        .resolve(&schema)
        .unwrap();
        let seq = PhysicalPlan::SeqScan {
            table: "nums".into(),
            alias: "x".into(),
            pred: Some(pred),
        };
        let index = PhysicalPlan::IndexRange {
            table: "nums".into(),
            alias: "x".into(),
            index: "nums_v".into(),
            lower: None,
            upper: Some(KeyBound {
                values: vec![Value::Int(threshold)],
                inclusive: false,
            }),
            residual: None,
        };
        g.bench_with_input(BenchmarkId::new("index", sel_bp), &sel_bp, |b, _| {
            b.iter(|| execute(&mut db, &index).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("seq", sel_bp), &sel_bp, |b, _| {
            b.iter(|| execute(&mut db, &seq).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scan_crossover);
criterion_main!(benches);
