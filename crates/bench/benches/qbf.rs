//! Criterion target for Table 4: QBF synthesis and execution vs QUEL.

use criterion::{criterion_group, criterion_main, Criterion};
use wow_core::config::WorldConfig;
use wow_forms::compiler::compile_form_all_writable;
use wow_forms::qbf::form_predicate;
use wow_views::expand::{run_view_query, view_schema, ViewQuery};
use wow_views::ViewCatalog;
use wow_workload::suppliers::{build_world, SuppliersConfig};

fn bench_qbf(c: &mut Criterion) {
    let cfg = SuppliersConfig {
        suppliers: 1000,
        parts: 50,
        shipments: 100,
        seed: 11,
    };
    let mut world = build_world(WorldConfig::default(), &cfg);
    let schema = view_schema(world.db(), world.views(), "suppliers").unwrap();
    let spec = compile_form_all_writable("suppliers", "Suppliers", &schema);
    let entries: Vec<String> = vec!["".into(), "".into(), "london".into(), ">15".into()];
    let mut vc = ViewCatalog::new();
    for name in world.views().names() {
        vc.register(world.views().get(&name).unwrap().clone())
            .unwrap();
    }
    let mut g = c.benchmark_group("table4_qbf");
    g.bench_function("synthesize", |b| {
        b.iter(|| form_predicate(&spec, &entries).unwrap())
    });
    let pred = form_predicate(&spec, &entries).unwrap();
    g.bench_function("qbf_execute", |b| {
        b.iter(|| {
            let q = ViewQuery {
                pred: pred.clone(),
                ..Default::default()
            };
            run_view_query(world.db_mut(), &vc, "suppliers", &q).unwrap()
        })
    });
    g.bench_function("quel_execute", |b| {
        b.iter(|| {
            world
                .db_mut()
                .run(r#"RETRIEVE (s.sno, s.sname, s.city, s.status) WHERE s.city = "london" AND s.status > 15"#)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_qbf);
criterion_main!(benches);
