//! Criterion target for Figure 1: damage-tracked vs full redraw.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wow_core::config::WorldConfig;
use wow_tui::geom::{Rect, Size};
use wow_workload::suppliers::{build_world, SuppliersConfig};

fn bench_redraw(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure1_redraw");
    for wcount in [1usize, 4, 16] {
        let mut world = build_world(
            WorldConfig {
                screen: Size::new(160, 48),
                ..WorldConfig::default()
            },
            &SuppliersConfig {
                suppliers: 50,
                parts: 20,
                shipments: 100,
                seed: 21,
            },
        );
        let s = world.open_session();
        let mut wins = Vec::new();
        for i in 0..wcount {
            let rect = Rect::new((i as i32 % 4) * 38, (i as i32 / 4) * 11, 38, 11);
            wins.push(world.open_window(s, "suppliers", Some(rect)).unwrap());
        }
        world.render();
        let mut toggle = false;
        g.bench_with_input(BenchmarkId::new("damage", wcount), &wcount, |b, _| {
            b.iter(|| {
                toggle = !toggle;
                world.set_status(wins[0], if toggle { "A" } else { "B" });
                world.render().len()
            })
        });
        g.bench_with_input(BenchmarkId::new("full", wcount), &wcount, |b, _| {
            b.iter(|| world.render_snapshot().len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_redraw);
criterion_main!(benches);
