//! Criterion target for Table 2: incremental vs materialized browse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wow_core::browse::BrowseCursor;
use wow_core::config::WorldConfig;
use wow_core::world::World;
use wow_rel::quel::ast::SortKey;
use wow_rel::value::Value;
use wow_views::expand::ViewQuery;
use wow_views::updatable::analyze;
use wow_views::ViewCatalog;

fn student_world(n: usize) -> World {
    let mut world = World::new(WorldConfig::default());
    world
        .db_mut()
        .run("CREATE TABLE student (sid INT KEY, sname TEXT NOT NULL, year INT)")
        .unwrap();
    for sid in 0..n {
        world
            .db_mut()
            .insert(
                "student",
                vec![
                    Value::Int(sid as i64),
                    Value::text(format!("student-{sid:07}")),
                    Value::Int((sid % 4 + 1) as i64),
                ],
            )
            .unwrap();
    }
    world
        .define_view(
            "students",
            "RANGE OF s IS student RETRIEVE (s.sid, s.sname, s.year)",
        )
        .unwrap();
    world
}

fn bench_browse(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_browse");
    g.sample_size(20);
    for n in [1_000usize, 10_000] {
        let mut world = student_world(n);
        let upd = analyze(world.db(), world.views(), "students").unwrap();
        g.bench_with_input(BenchmarkId::new("open_indexed", n), &n, |b, _| {
            b.iter(|| BrowseCursor::indexed(world.db_mut(), &upd, "pk_student", 16, None).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("open_materialized", n), &n, |b, _| {
            b.iter(|| {
                let query = ViewQuery {
                    sort: vec![SortKey {
                        column: "sid".into(),
                        ascending: true,
                    }],
                    ..Default::default()
                };
                BrowseCursor::materialized(
                    world.db_mut(),
                    &ViewCatalog::new(),
                    "students",
                    query,
                    Some(&upd),
                )
                .unwrap()
            })
        });
        let mut cursor =
            BrowseCursor::indexed(world.db_mut(), &upd, "pk_student", 16, None).unwrap();
        g.bench_with_input(BenchmarkId::new("page_indexed", n), &n, |b, _| {
            b.iter(|| {
                if !cursor
                    .next_page(world.db_mut(), &ViewCatalog::new())
                    .unwrap()
                {
                    // wrap around
                    cursor = BrowseCursor::indexed(world.db_mut(), &upd, "pk_student", 16, None)
                        .unwrap();
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_browse);
criterion_main!(benches);
