//! Criterion target for Figure 4: commit propagation vs dependent windows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wow_core::config::WorldConfig;
use wow_tui::geom::Size;
use wow_workload::suppliers::{build_world, SuppliersConfig};

fn bench_propagate(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure4_propagate");
    g.sample_size(20);
    for k in [1usize, 4, 16] {
        let mut world = build_world(
            WorldConfig {
                screen: Size::new(200, 60),
                ..WorldConfig::default()
            },
            &SuppliersConfig {
                suppliers: 200,
                parts: 100,
                shipments: 400,
                seed: 41,
            },
        );
        let s = world.open_session();
        let editor = world.open_window(s, "suppliers", None).unwrap();
        for i in 0..k {
            let view = if i % 2 == 0 {
                "london_suppliers"
            } else {
                "suppliers"
            };
            world.open_window(s, view, None).unwrap();
        }
        for _ in 0..4 {
            world.open_window(s, "parts", None).unwrap();
        }
        let mut toggle = 100i64;
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                world.enter_edit(editor).unwrap();
                toggle += 1;
                world
                    .window_mut(editor)
                    .unwrap()
                    .form
                    .set_text(3, &toggle.to_string());
                world.commit(editor).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_propagate);
criterion_main!(benches);
