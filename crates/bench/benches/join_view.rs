//! Criterion target for Figure 2: hash join vs nested loop over a join view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wow_core::config::WorldConfig;
use wow_rel::expr::{BinOp, Expr};
use wow_rel::value::Value;
use wow_views::expand::{run_view_query, ViewQuery};
use wow_views::ViewCatalog;
use wow_workload::suppliers::{build_world, SuppliersConfig};

fn bench_join_view(c: &mut Criterion) {
    let cfg = SuppliersConfig {
        suppliers: 200,
        parts: 50,
        shipments: 5_000,
        seed: 31,
    };
    let mut world = build_world(WorldConfig::default(), &cfg);
    let mut vc = ViewCatalog::new();
    for name in world.views().names() {
        vc.register(world.views().get(&name).unwrap().clone())
            .unwrap();
    }
    let mut g = c.benchmark_group("figure2_join_view");
    g.sample_size(20);
    for sel_pct in [1u64, 20, 50] {
        let threshold = (1000 * sel_pct / 100).max(1) as i64;
        let pred = Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(Expr::ColumnRef("qty".into())),
            right: Box::new(Expr::Literal(Value::Int(threshold))),
        };
        let query = ViewQuery {
            pred: Some(pred),
            ..Default::default()
        };
        g.bench_with_input(
            BenchmarkId::new("expanded_hash_join", sel_pct),
            &sel_pct,
            |b, _| {
                b.iter(|| run_view_query(world.db_mut(), &vc, "shipment_detail", &query).unwrap())
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_join_view);
criterion_main!(benches);
