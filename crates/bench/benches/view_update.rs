//! Criterion target for Table 3: direct vs through-view updates.

use criterion::{criterion_group, criterion_main, Criterion};
use wow_core::config::WorldConfig;
use wow_rel::value::Value;
use wow_views::translate::{update_through_view, view_rows_with_rids, CheckOption};
use wow_views::updatable::analyze;
use wow_workload::suppliers::{build_world, SuppliersConfig};

fn bench_view_update(c: &mut Criterion) {
    let cfg = SuppliersConfig {
        suppliers: 500,
        parts: 10,
        shipments: 10,
        seed: 7,
    };
    let mut world = build_world(WorldConfig::default(), &cfg);
    let upd = analyze(world.db(), world.views(), "suppliers").unwrap();
    let rows = view_rows_with_rids(world.db_mut(), &upd).unwrap();
    let mut i = 0usize;
    let mut g = c.benchmark_group("table3_view_update");
    g.bench_function("direct", |b| {
        b.iter(|| {
            let (rid, row) = &rows[i % rows.len()];
            i += 1;
            let mut vals = row.values.clone();
            vals[3] = Value::Int((i % 50) as i64);
            world.db_mut().update_rid("supplier", *rid, vals).unwrap()
        })
    });
    g.bench_function("through_view", |b| {
        b.iter(|| {
            let (rid, _) = &rows[i % rows.len()];
            i += 1;
            update_through_view(
                world.db_mut(),
                &upd,
                *rid,
                &[(3, Value::Int((i % 50) as i64))],
                CheckOption::Checked,
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_view_update);
criterion_main!(benches);
