//! Criterion target for Table 5: lock acquire/release cost per commit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wow_core::config::WorldConfig;
use wow_workload::suppliers::{build_world, SuppliersConfig};

fn bench_locking(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_locking");
    for locking in [true, false] {
        let mut world = build_world(
            WorldConfig {
                locking,
                ..WorldConfig::default()
            },
            &SuppliersConfig {
                suppliers: 100,
                parts: 10,
                shipments: 10,
                seed: 51,
            },
        );
        let s = world.open_session();
        let win = world.open_window(s, "suppliers", None).unwrap();
        let mut v = 0i64;
        let label = if locking {
            "locked_commit"
        } else {
            "unlocked_commit"
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &locking, |b, _| {
            b.iter(|| {
                world.enter_edit(win).unwrap();
                v += 1;
                world
                    .window_mut(win)
                    .unwrap()
                    .form
                    .set_text(3, &(v % 97).to_string());
                world.commit(win).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_locking);
criterion_main!(benches);
