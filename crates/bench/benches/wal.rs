//! Criterion target for Table 6: insert cost with and without the WAL.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wow_rel::db::Database;
use wow_rel::schema::{Column, Schema};
use wow_rel::types::DataType;
use wow_rel::value::Value;
use wow_storage::wal::Wal;

fn make_db(wal: bool) -> Database {
    let mut db = Database::in_memory();
    if wal {
        db.attach_wal(Wal::in_memory());
    }
    db.create_table(
        "t",
        Schema::new(vec![
            Column::not_null("k", DataType::Int),
            Column::new("payload", DataType::Text),
        ]),
        &["k"],
    )
    .unwrap();
    db
}

fn bench_wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6_wal");
    for wal in [false, true] {
        let mut db = make_db(wal);
        let mut k = 0i64;
        let label = if wal {
            "insert_with_wal"
        } else {
            "insert_no_wal"
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &wal, |b, _| {
            b.iter(|| {
                k += 1;
                db.insert("t", vec![Value::Int(k), Value::text(format!("row-{k:08}"))])
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wal);
criterion_main!(benches);
