//! The ANSI backend: escape sequences to a real terminal.

use super::Backend;
use crate::buffer::Patch;
use crate::cell::Style;
use std::io::Write;

/// Renders patches as ANSI cursor-move + SGR sequences into any writer.
///
/// Runs of horizontally adjacent patches with the same style are coalesced
/// into one cursor move and one style change — the escape-byte economy that
/// mattered at 9600 baud and still keeps scrollback clean today.
pub struct AnsiBackend<W: Write> {
    out: W,
    /// Bytes written (bench counter; the 9600-baud proxy).
    pub bytes_written: u64,
}

impl<W: Write> AnsiBackend<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> AnsiBackend<W> {
        AnsiBackend {
            out,
            bytes_written: 0,
        }
    }

    /// Emit the "enter UI" prologue: clear screen, hide cursor.
    pub fn enter(&mut self) -> std::io::Result<()> {
        self.write_str("\x1b[2J\x1b[H\x1b[?25l")
    }

    /// Emit the "leave UI" epilogue: reset attributes, show cursor.
    pub fn leave(&mut self) -> std::io::Result<()> {
        self.write_str("\x1b[0m\x1b[?25h\n")
    }

    fn write_str(&mut self, s: &str) -> std::io::Result<()> {
        self.bytes_written += s.len() as u64;
        self.out.write_all(s.as_bytes())
    }

    fn sgr(style: Style) -> String {
        let mut codes = vec![0u8]; // reset first: styles are absolute
        if style.bold {
            codes.push(1);
        }
        if style.underline {
            codes.push(4);
        }
        if style.reverse {
            codes.push(7);
        }
        codes.push(style.fg.fg_code());
        codes.push(style.bg.bg_code());
        let inner: Vec<String> = codes.iter().map(|c| c.to_string()).collect();
        format!("\x1b[{}m", inner.join(";"))
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> Backend for AnsiBackend<W> {
    fn present(&mut self, patches: &[Patch]) {
        let mut i = 0;
        let mut buf = String::new();
        while i < patches.len() {
            let start = &patches[i];
            // Collect a horizontal same-style run.
            let mut run = String::new();
            run.push(start.cell.ch);
            let mut j = i + 1;
            while j < patches.len()
                && patches[j].y == start.y
                && patches[j].x == patches[j - 1].x + 1
                && patches[j].cell.style == start.cell.style
            {
                run.push(patches[j].cell.ch);
                j += 1;
            }
            // 1-based cursor addressing.
            buf.push_str(&format!("\x1b[{};{}H", start.y + 1, start.x + 1));
            buf.push_str(&Self::sgr(start.cell.style));
            buf.push_str(&run);
            i = j;
        }
        let _ = self.write_str(&buf);
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, Color};

    fn patch(x: u16, y: u16, ch: char, style: Style) -> Patch {
        Patch {
            x,
            y,
            cell: Cell::new(ch, style),
        }
    }

    #[test]
    fn emits_cursor_moves_and_text() {
        let mut b = AnsiBackend::new(Vec::new());
        b.present(&[
            patch(2, 1, 'h', Style::plain()),
            patch(3, 1, 'i', Style::plain()),
        ]);
        let out = String::from_utf8(b.into_inner()).unwrap();
        assert!(out.contains("\x1b[2;3H"), "{out:?}");
        assert!(out.contains("hi"), "run coalesced: {out:?}");
        assert_eq!(out.matches('H').count(), 1, "one cursor move for the run");
    }

    #[test]
    fn style_changes_break_runs() {
        let mut b = AnsiBackend::new(Vec::new());
        b.present(&[
            patch(0, 0, 'a', Style::plain()),
            patch(1, 0, 'b', Style::plain().fg(Color::Red)),
        ]);
        let out = String::from_utf8(b.into_inner()).unwrap();
        assert!(out.contains("\x1b[0;31;49m"), "{out:?}");
        assert_eq!(out.matches('H').count(), 2);
    }

    #[test]
    fn gaps_break_runs() {
        let mut b = AnsiBackend::new(Vec::new());
        b.present(&[
            patch(0, 0, 'a', Style::plain()),
            patch(5, 0, 'b', Style::plain()),
        ]);
        let out = String::from_utf8(b.into_inner()).unwrap();
        assert_eq!(out.matches('H').count(), 2);
    }

    #[test]
    fn enter_and_leave_sequences() {
        let mut b = AnsiBackend::new(Vec::new());
        b.enter().unwrap();
        b.leave().unwrap();
        let out = String::from_utf8(b.into_inner()).unwrap();
        assert!(out.starts_with("\x1b[2J"));
        assert!(out.contains("\x1b[?25l"));
        assert!(out.contains("\x1b[?25h"));
    }

    #[test]
    fn byte_counter_advances() {
        let mut b = AnsiBackend::new(Vec::new());
        b.present(&[patch(0, 0, 'x', Style::plain())]);
        assert!(b.bytes_written > 0);
    }
}
