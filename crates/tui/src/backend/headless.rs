//! The headless backend: an in-memory terminal for tests and benches.

use super::Backend;
use crate::buffer::{Patch, ScreenBuffer};
use crate::geom::Size;

/// An in-memory "terminal" that applies patches to a screen buffer and
/// counts the work done — every test and every Figure 1 measurement runs
/// against this.
#[derive(Debug)]
pub struct HeadlessBackend {
    screen: ScreenBuffer,
    /// Total cells written over the backend's lifetime.
    pub cells_written: u64,
    /// Present calls.
    pub frames: u64,
}

impl HeadlessBackend {
    /// A blank terminal of the given size.
    pub fn new(size: Size) -> HeadlessBackend {
        HeadlessBackend {
            screen: ScreenBuffer::new(size),
            cells_written: 0,
            frames: 0,
        }
    }

    /// The current screen contents.
    pub fn screen(&self) -> &ScreenBuffer {
        &self.screen
    }

    /// The screen as text lines (assertions).
    pub fn lines(&self) -> Vec<String> {
        self.screen.to_strings()
    }

    /// Reset counters (between bench phases).
    pub fn reset_counters(&mut self) {
        self.cells_written = 0;
        self.frames = 0;
    }
}

impl Backend for HeadlessBackend {
    fn present(&mut self, patches: &[Patch]) {
        self.frames += 1;
        self.cells_written += patches.len() as u64;
        for p in patches {
            self.screen.set(p.x as i32, p.y as i32, p.cell);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;

    #[test]
    fn applies_patches_and_counts() {
        let mut b = HeadlessBackend::new(Size::new(4, 2));
        b.present(&[
            Patch {
                x: 0,
                y: 0,
                cell: Cell::plain('h'),
            },
            Patch {
                x: 1,
                y: 0,
                cell: Cell::plain('i'),
            },
        ]);
        assert_eq!(b.lines()[0], "hi  ");
        assert_eq!(b.cells_written, 2);
        assert_eq!(b.frames, 1);
        b.reset_counters();
        assert_eq!(b.cells_written, 0);
    }

    #[test]
    fn out_of_bounds_patches_are_clipped() {
        let mut b = HeadlessBackend::new(Size::new(2, 1));
        b.present(&[Patch {
            x: 9,
            y: 9,
            cell: Cell::plain('x'),
        }]);
        assert_eq!(b.lines()[0], "  ");
    }
}
