//! Presentation backends: where patches go.

pub mod ansi;
pub mod headless;

pub use ansi::AnsiBackend;
pub use headless::HeadlessBackend;

use crate::buffer::Patch;

/// A sink for cell patches.
pub trait Backend {
    /// Apply a batch of patches (one frame's damage).
    fn present(&mut self, patches: &[Patch]);

    /// Flush any buffered output to the device.
    fn flush(&mut self) {}
}
