//! Screen buffers: the drawing surface and the diff primitive.

use crate::cell::{Cell, Style};
use crate::geom::{Point, Rect, Size};

/// A change to one cell (the unit of damage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Patch {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
    /// New cell value.
    pub cell: Cell,
}

/// A rectangular grid of cells.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenBuffer {
    size: Size,
    cells: Vec<Cell>,
}

impl ScreenBuffer {
    /// A blank buffer of the given size.
    pub fn new(size: Size) -> ScreenBuffer {
        ScreenBuffer {
            size,
            cells: vec![Cell::default(); size.area()],
        }
    }

    /// Buffer size.
    pub fn size(&self) -> Size {
        self.size
    }

    /// The full-buffer rect.
    pub fn rect(&self) -> Rect {
        Rect::of_size(self.size)
    }

    fn index(&self, x: i32, y: i32) -> Option<usize> {
        if x < 0 || y < 0 || x >= self.size.w as i32 || y >= self.size.h as i32 {
            return None;
        }
        Some(y as usize * self.size.w as usize + x as usize)
    }

    /// Read a cell (out-of-bounds reads yield a blank).
    pub fn get(&self, x: i32, y: i32) -> Cell {
        self.index(x, y).map(|i| self.cells[i]).unwrap_or_default()
    }

    /// Write a cell (out-of-bounds writes are clipped away).
    pub fn set(&mut self, x: i32, y: i32, cell: Cell) {
        if let Some(i) = self.index(x, y) {
            self.cells[i] = cell;
        }
    }

    /// Clear to blanks.
    pub fn clear(&mut self) {
        self.cells.fill(Cell::default());
    }

    /// Fill a rect with a styled character.
    pub fn fill(&mut self, rect: Rect, ch: char, style: Style) {
        let r = rect.intersect(self.rect());
        for y in r.y..r.bottom() {
            for x in r.x..r.right() {
                self.set(x, y, Cell::new(ch, style));
            }
        }
    }

    /// Draw text starting at a point, clipped to `clip`. Returns the number
    /// of characters actually drawn.
    pub fn draw_text(&mut self, at: Point, text: &str, style: Style, clip: Rect) -> usize {
        let clip = clip.intersect(self.rect());
        let mut x = at.x;
        let mut drawn = 0;
        for ch in text.chars() {
            if ch == '\n' {
                break;
            }
            if clip.contains(Point::new(x, at.y)) {
                self.set(x, at.y, Cell::new(ch, style));
                drawn += 1;
            }
            x += 1;
            if x >= clip.right() {
                break;
            }
        }
        drawn
    }

    /// Draw a single-line box border around `rect` with an optional title
    /// centered-left on the top edge.
    pub fn draw_border(&mut self, rect: Rect, title: Option<&str>, style: Style) {
        if rect.w < 2 || rect.h < 2 {
            return;
        }
        let (l, r, t, b) = (rect.x, rect.right() - 1, rect.y, rect.bottom() - 1);
        self.set(l, t, Cell::new('+', style));
        self.set(r, t, Cell::new('+', style));
        self.set(l, b, Cell::new('+', style));
        self.set(r, b, Cell::new('+', style));
        for x in l + 1..r {
            self.set(x, t, Cell::new('-', style));
            self.set(x, b, Cell::new('-', style));
        }
        for y in t + 1..b {
            self.set(l, y, Cell::new('|', style));
            self.set(r, y, Cell::new('|', style));
        }
        if let Some(title) = title {
            let avail = rect.w.saturating_sub(4) as usize;
            if avail > 0 {
                let shown: String = title.chars().take(avail).collect();
                let text = format!(" {shown} ");
                self.draw_text(Point::new(l + 1, t), &text, style, rect.row(0));
            }
        }
    }

    /// Copy `src` onto `self` with its top-left at `at`, clipped.
    pub fn blit(&mut self, src: &ScreenBuffer, at: Point) {
        for y in 0..src.size.h as i32 {
            for x in 0..src.size.w as i32 {
                self.set(at.x + x, at.y + y, src.get(x, y));
            }
        }
    }

    /// The cells that differ from `prev`, in row-major order.
    ///
    /// This is the damage primitive: rendering cost downstream is
    /// proportional to the patch count, not the screen size. Buffers must
    /// be the same size (resize implies a full repaint and is handled a
    /// level up).
    pub fn diff(&self, prev: &ScreenBuffer) -> Vec<Patch> {
        assert_eq!(self.size, prev.size, "diff requires equal sizes");
        let mut out = Vec::new();
        for (i, (new, old)) in self.cells.iter().zip(&prev.cells).enumerate() {
            if new != old {
                out.push(Patch {
                    x: (i % self.size.w as usize) as u16,
                    y: (i / self.size.w as usize) as u16,
                    cell: *new,
                });
            }
        }
        out
    }

    /// Render the glyphs as lines of text (styles dropped) — the form every
    /// test asserts against.
    pub fn to_strings(&self) -> Vec<String> {
        (0..self.size.h as i32)
            .map(|y| {
                (0..self.size.w as i32)
                    .map(|x| self.get(x, y).ch)
                    .collect::<String>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Color;

    fn buf(w: u16, h: u16) -> ScreenBuffer {
        ScreenBuffer::new(Size::new(w, h))
    }

    #[test]
    fn get_set_and_bounds() {
        let mut b = buf(4, 2);
        b.set(1, 1, Cell::plain('x'));
        assert_eq!(b.get(1, 1).ch, 'x');
        // Out of bounds is safe.
        b.set(-1, 0, Cell::plain('!'));
        b.set(4, 0, Cell::plain('!'));
        b.set(0, 2, Cell::plain('!'));
        assert_eq!(b.get(99, 99).ch, ' ');
        assert!(b.to_strings().iter().all(|row| !row.contains('!')));
    }

    #[test]
    fn draw_text_clips() {
        let mut b = buf(8, 2);
        let clip = Rect::new(0, 0, 8, 2);
        let n = b.draw_text(Point::new(5, 0), "hello", Style::plain(), clip);
        assert_eq!(n, 3, "only 3 chars fit before the clip edge");
        assert_eq!(b.to_strings()[0], "     hel");
        // Newlines stop drawing.
        let n = b.draw_text(Point::new(0, 1), "ab\ncd", Style::plain(), clip);
        assert_eq!(n, 2);
        assert_eq!(b.to_strings()[1], "ab      ");
    }

    #[test]
    fn draw_border_with_title() {
        let mut b = buf(10, 4);
        b.draw_border(Rect::new(0, 0, 10, 4), Some("emp"), Style::plain());
        let rows = b.to_strings();
        assert_eq!(rows[0], "+ emp ---+");
        assert_eq!(rows[1], "|        |");
        assert_eq!(rows[3], "+--------+");
    }

    #[test]
    fn long_titles_truncate() {
        let mut b = buf(8, 3);
        b.draw_border(
            Rect::new(0, 0, 8, 3),
            Some("averylongtitle"),
            Style::plain(),
        );
        assert_eq!(b.to_strings()[0], "+ aver +");
    }

    #[test]
    fn degenerate_borders_are_skipped() {
        let mut b = buf(8, 3);
        b.draw_border(Rect::new(0, 0, 1, 3), Some("t"), Style::plain());
        assert_eq!(b.to_strings()[0], "        ");
    }

    #[test]
    fn fill_respects_clip() {
        let mut b = buf(4, 4);
        b.fill(Rect::new(2, 2, 10, 10), '#', Style::plain());
        let rows = b.to_strings();
        assert_eq!(rows[0], "    ");
        assert_eq!(rows[2], "  ##");
        assert_eq!(rows[3], "  ##");
    }

    #[test]
    fn blit_copies_with_offset() {
        let mut small = buf(2, 2);
        small.fill(small.rect(), 'o', Style::plain());
        let mut big = buf(5, 3);
        big.blit(&small, Point::new(3, 1));
        let rows = big.to_strings();
        assert_eq!(rows[1], "   oo");
        assert_eq!(rows[2], "   oo");
    }

    #[test]
    fn diff_reports_exact_changes() {
        let a = buf(4, 2);
        let mut b = a.clone();
        assert!(b.diff(&a).is_empty(), "identical buffers have no damage");
        b.set(3, 1, Cell::new('z', Style::plain().fg(Color::Red)));
        b.set(0, 0, Cell::plain('a'));
        let patches = b.diff(&a);
        assert_eq!(patches.len(), 2);
        assert_eq!(
            (patches[0].x, patches[0].y, patches[0].cell.ch),
            (0, 0, 'a')
        );
        assert_eq!(
            (patches[1].x, patches[1].y, patches[1].cell.ch),
            (3, 1, 'z')
        );
    }

    #[test]
    fn style_only_changes_are_damage() {
        let a = buf(2, 1);
        let mut b = a.clone();
        b.set(0, 0, Cell::new(' ', Style::plain().reverse()));
        assert_eq!(b.diff(&a).len(), 1);
    }

    #[test]
    #[should_panic(expected = "equal sizes")]
    fn diff_size_mismatch_panics() {
        let _ = buf(2, 2).diff(&buf(3, 2));
    }
}
