//! # wow-tui
//!
//! A deterministic terminal windowing substrate — the stand-in for the
//! 1983 bit-mapped workstation display (per the reproduction note: *"GUI
//! toolkits less mature; TUI works fine"*).
//!
//! The pieces:
//!
//! * [`geom`] — points, sizes, rectangles, clipping.
//! * [`cell`] — the character cell: glyph + style.
//! * [`buffer`] — screen buffers: draw text/borders, fill, **diff** (the
//!   primitive behind damage tracking).
//! * [`window`] — a window: a framed, titled region with its own content
//!   buffer.
//! * [`tree`] — the window tree: z-order, focus, composition onto a screen
//!   buffer.
//! * [`damage`] — the damage tracker: composes frames and yields the
//!   minimal cell patches between them (Figure 1's subject).
//! * [`event`] — key events.
//! * [`focus`] — focus rings over widgets.
//! * [`widget`] — label, text field, table grid, menu bar, status bar.
//! * [`backend`] — where patches go: an ANSI terminal or a headless
//!   capture used by every test and bench.
//!
//! Everything is synchronous and allocation-conscious; rendering the same
//! scene twice emits zero patches, which is what makes the forms layer's
//! refresh loop cheap.

pub mod backend;
pub mod buffer;
pub mod cell;
pub mod damage;
pub mod event;
pub mod focus;
pub mod geom;
pub mod tree;
pub mod widget;
pub mod window;

pub use buffer::ScreenBuffer;
pub use cell::{Cell, Color, Style};
pub use event::Key;
pub use geom::{Point, Rect, Size};
pub use tree::{WindowId, WindowTree};
