//! Character cells and styles.

/// The classic 8 terminal colors plus the terminal default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Color {
    /// Terminal default.
    #[default]
    Default,
    /// Black.
    Black,
    /// Red.
    Red,
    /// Green.
    Green,
    /// Yellow.
    Yellow,
    /// Blue.
    Blue,
    /// Magenta.
    Magenta,
    /// Cyan.
    Cyan,
    /// White.
    White,
}

impl Color {
    /// ANSI SGR foreground code.
    pub fn fg_code(self) -> u8 {
        match self {
            Color::Default => 39,
            Color::Black => 30,
            Color::Red => 31,
            Color::Green => 32,
            Color::Yellow => 33,
            Color::Blue => 34,
            Color::Magenta => 35,
            Color::Cyan => 36,
            Color::White => 37,
        }
    }

    /// ANSI SGR background code.
    pub fn bg_code(self) -> u8 {
        self.fg_code() + 10
    }
}

/// Visual attributes of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Style {
    /// Foreground color.
    pub fg: Color,
    /// Background color.
    pub bg: Color,
    /// Bold.
    pub bold: bool,
    /// Reverse video (how 1983 showed focus).
    pub reverse: bool,
    /// Underline (how 1983 showed editable fields).
    pub underline: bool,
}

impl Style {
    /// The default style.
    pub fn plain() -> Style {
        Style::default()
    }

    /// Builder: set foreground.
    pub fn fg(mut self, c: Color) -> Style {
        self.fg = c;
        self
    }

    /// Builder: set background.
    pub fn bg(mut self, c: Color) -> Style {
        self.bg = c;
        self
    }

    /// Builder: bold.
    pub fn bold(mut self) -> Style {
        self.bold = true;
        self
    }

    /// Builder: reverse video.
    pub fn reverse(mut self) -> Style {
        self.reverse = true;
        self
    }

    /// Builder: underline.
    pub fn underline(mut self) -> Style {
        self.underline = true;
        self
    }
}

/// One screen cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cell {
    /// The glyph.
    pub ch: char,
    /// Its style.
    pub style: Style,
}

impl Default for Cell {
    fn default() -> Self {
        Cell {
            ch: ' ',
            style: Style::default(),
        }
    }
}

impl Cell {
    /// A styled cell.
    pub fn new(ch: char, style: Style) -> Cell {
        Cell { ch, style }
    }

    /// An unstyled cell.
    pub fn plain(ch: char) -> Cell {
        Cell {
            ch,
            style: Style::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cell_is_blank() {
        let c = Cell::default();
        assert_eq!(c.ch, ' ');
        assert_eq!(c.style, Style::default());
    }

    #[test]
    fn style_builders_compose() {
        let s = Style::plain()
            .fg(Color::Red)
            .bg(Color::Blue)
            .bold()
            .reverse();
        assert_eq!(s.fg, Color::Red);
        assert_eq!(s.bg, Color::Blue);
        assert!(s.bold && s.reverse && !s.underline);
    }

    #[test]
    fn ansi_codes() {
        assert_eq!(Color::Red.fg_code(), 31);
        assert_eq!(Color::Red.bg_code(), 41);
        assert_eq!(Color::Default.fg_code(), 39);
        assert_eq!(Color::Default.bg_code(), 49);
    }

    #[test]
    fn cells_compare_by_value() {
        assert_eq!(Cell::plain('x'), Cell::plain('x'));
        assert_ne!(Cell::plain('x'), Cell::plain('y'));
        assert_ne!(Cell::new('x', Style::plain().bold()), Cell::plain('x'));
    }
}
