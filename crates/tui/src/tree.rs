//! The window tree: z-order, focus, and composition.

use crate::buffer::ScreenBuffer;
use crate::geom::{Rect, Size};
use crate::window::Window;
use std::collections::HashMap;

/// Identifier of a window within a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WindowId(pub u32);

/// The set of windows on one screen, ordered bottom → top.
///
/// The focused window is always composed last (topmost); `Ctrl-W`-style
/// cycling is [`WindowTree::focus_next`].
#[derive(Debug, Default)]
pub struct WindowTree {
    windows: HashMap<WindowId, Window>,
    /// Bottom-to-top order.
    order: Vec<WindowId>,
    focused: Option<WindowId>,
    next_id: u32,
}

impl WindowTree {
    /// An empty tree.
    pub fn new() -> WindowTree {
        WindowTree::default()
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the tree has no windows.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Create a window; it becomes topmost and focused.
    pub fn create(&mut self, rect: Rect, title: impl Into<String>) -> WindowId {
        let id = WindowId(self.next_id);
        self.next_id += 1;
        self.windows.insert(id, Window::new(rect, title));
        self.order.push(id);
        self.focused = Some(id);
        id
    }

    /// Close a window. Focus moves to the new topmost window.
    pub fn close(&mut self, id: WindowId) -> bool {
        if self.windows.remove(&id).is_none() {
            return false;
        }
        self.order.retain(|&w| w != id);
        if self.focused == Some(id) {
            self.focused = self.order.last().copied();
        }
        true
    }

    /// Borrow a window.
    pub fn get(&self, id: WindowId) -> Option<&Window> {
        self.windows.get(&id)
    }

    /// Mutably borrow a window.
    pub fn get_mut(&mut self, id: WindowId) -> Option<&mut Window> {
        self.windows.get_mut(&id)
    }

    /// The focused window id.
    pub fn focused(&self) -> Option<WindowId> {
        self.focused
    }

    /// Focus (and raise) a window.
    pub fn focus(&mut self, id: WindowId) -> bool {
        if !self.windows.contains_key(&id) {
            return false;
        }
        self.order.retain(|&w| w != id);
        self.order.push(id);
        self.focused = Some(id);
        true
    }

    /// Cycle focus to the next window (bottom of the z-order comes next,
    /// so repeated cycling visits every window).
    pub fn focus_next(&mut self) -> Option<WindowId> {
        let &next = self.order.first()?;
        self.focus(next);
        Some(next)
    }

    /// Ids bottom → top.
    pub fn z_order(&self) -> &[WindowId] {
        &self.order
    }

    /// The topmost visible window containing screen point `(x, y)`.
    pub fn window_at(&self, x: i32, y: i32) -> Option<WindowId> {
        self.order
            .iter()
            .rev()
            .find(|id| {
                self.windows
                    .get(id)
                    .is_some_and(|w| w.visible && w.rect().contains(crate::geom::Point::new(x, y)))
            })
            .copied()
    }

    /// Compose every visible window onto a fresh screen buffer of `size`.
    pub fn compose(&self, size: Size) -> ScreenBuffer {
        let mut screen = ScreenBuffer::new(size);
        for id in &self.order {
            let w = &self.windows[id];
            w.compose_onto(&mut screen, self.focused == Some(*id));
        }
        screen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Style;
    use crate::geom::Point;

    #[test]
    fn create_focus_close() {
        let mut t = WindowTree::new();
        let a = t.create(Rect::new(0, 0, 6, 3), "a");
        let b = t.create(Rect::new(2, 1, 6, 3), "b");
        assert_eq!(t.focused(), Some(b));
        assert_eq!(t.len(), 2);
        assert!(t.focus(a));
        assert_eq!(t.focused(), Some(a));
        assert_eq!(t.z_order().last(), Some(&a), "focus raises");
        assert!(t.close(a));
        assert_eq!(t.focused(), Some(b));
        assert!(!t.close(a), "double close is a no-op");
    }

    #[test]
    fn focus_next_cycles_through_all() {
        let mut t = WindowTree::new();
        let a = t.create(Rect::new(0, 0, 4, 3), "a");
        let b = t.create(Rect::new(0, 0, 4, 3), "b");
        let c = t.create(Rect::new(0, 0, 4, 3), "c");
        assert_eq!(t.focused(), Some(c));
        let mut seen = vec![c];
        for _ in 0..2 {
            seen.push(t.focus_next().unwrap());
        }
        seen.sort();
        let mut all = vec![a, b, c];
        all.sort();
        assert_eq!(seen, all);
        // One more full cycle returns to the start.
        t.focus_next();
        assert_eq!(t.focused(), Some(c));
    }

    #[test]
    fn composition_respects_z_order() {
        let mut t = WindowTree::new();
        let a = t.create(Rect::new(0, 0, 8, 4), "a");
        let _b = t.create(Rect::new(4, 1, 8, 4), "b");
        t.get_mut(a).unwrap().content_mut().draw_text(
            Point::new(0, 0),
            "AAAAAA",
            Style::plain(),
            Rect::new(0, 0, 6, 2),
        );
        let screen = t.compose(Size::new(14, 6));
        let rows = screen.to_strings();
        // Window b overlaps a's right side; its frame wins there.
        assert!(rows[1].contains('A'));
        assert_eq!(screen.get(4, 1).ch, '+', "b's corner occludes a");
        // Raise a: now a's content covers b's left edge.
        t.focus(a);
        let screen = t.compose(Size::new(14, 6));
        assert_eq!(screen.get(4, 1).ch, 'A');
    }

    #[test]
    fn window_at_honors_z_and_visibility() {
        let mut t = WindowTree::new();
        let a = t.create(Rect::new(0, 0, 8, 4), "a");
        let b = t.create(Rect::new(2, 1, 8, 4), "b");
        assert_eq!(t.window_at(3, 2), Some(b));
        assert_eq!(t.window_at(0, 0), Some(a));
        assert_eq!(t.window_at(50, 50), None);
        t.get_mut(b).unwrap().visible = false;
        assert_eq!(t.window_at(3, 2), Some(a));
    }

    #[test]
    fn compose_empty_tree_is_blank() {
        let t = WindowTree::new();
        let screen = t.compose(Size::new(4, 2));
        assert_eq!(screen.to_strings(), vec!["    ", "    "]);
    }
}
