//! Damage tracking: the minimal set of cell writes between frames.
//!
//! The 1983 claim this module supports (Figure 1): with damage tracking,
//! the cost of a screen update is proportional to what actually changed —
//! one field edit in one window — rather than to the number of open
//! windows. [`DamageTracker::frame`] is the tracked path; the full-repaint
//! baseline just emits every cell.

use crate::buffer::{Patch, ScreenBuffer};
use crate::geom::Size;

/// Tracks the previously presented frame and yields minimal patches.
#[derive(Debug)]
pub struct DamageTracker {
    prev: Option<ScreenBuffer>,
    /// Patches emitted over the tracker's lifetime (bench counter).
    pub cells_emitted: u64,
    /// Frames processed.
    pub frames: u64,
}

impl DamageTracker {
    /// A tracker with no previous frame (first frame is a full repaint).
    pub fn new() -> DamageTracker {
        DamageTracker {
            prev: None,
            cells_emitted: 0,
            frames: 0,
        }
    }

    /// Diff `next` against the previous frame, returning the patches to
    /// present, and remember `next`. A size change forces a full repaint.
    pub fn frame(&mut self, next: &ScreenBuffer) -> Vec<Patch> {
        let mut span = wow_obs::span(wow_obs::Op::TuiRedraw);
        self.frames += 1;
        let patches = match &self.prev {
            Some(prev) if prev.size() == next.size() => next.diff(prev),
            _ => full_repaint(next),
        };
        self.cells_emitted += patches.len() as u64;
        span.arg(patches.len() as u64);
        self.prev = Some(next.clone());
        patches
    }

    /// Forget the previous frame (forces the next frame to repaint fully).
    pub fn invalidate(&mut self) {
        self.prev = None;
    }

    /// The size of the last presented frame.
    pub fn last_size(&self) -> Option<Size> {
        self.prev.as_ref().map(|b| b.size())
    }
}

impl Default for DamageTracker {
    fn default() -> Self {
        Self::new()
    }
}

/// The baseline: every cell of the frame as a patch (what a tracker-less
/// redraw must write).
pub fn full_repaint(buf: &ScreenBuffer) -> Vec<Patch> {
    let size = buf.size();
    let mut out = Vec::with_capacity(size.area());
    for y in 0..size.h {
        for x in 0..size.w {
            out.push(Patch {
                x,
                y,
                cell: buf.get(x as i32, y as i32),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::geom::Size;

    #[test]
    fn first_frame_is_full() {
        let mut t = DamageTracker::new();
        let b = ScreenBuffer::new(Size::new(4, 2));
        let patches = t.frame(&b);
        assert_eq!(patches.len(), 8);
        assert_eq!(t.cells_emitted, 8);
    }

    #[test]
    fn unchanged_frame_emits_nothing() {
        let mut t = DamageTracker::new();
        let b = ScreenBuffer::new(Size::new(4, 2));
        t.frame(&b);
        assert!(t.frame(&b).is_empty());
        assert_eq!(t.frames, 2);
    }

    #[test]
    fn localized_change_emits_one_patch() {
        let mut t = DamageTracker::new();
        let mut b = ScreenBuffer::new(Size::new(80, 24));
        t.frame(&b);
        b.set(40, 12, Cell::plain('x'));
        let patches = t.frame(&b);
        assert_eq!(patches.len(), 1);
        assert_eq!((patches[0].x, patches[0].y), (40, 12));
    }

    #[test]
    fn resize_forces_full_repaint() {
        let mut t = DamageTracker::new();
        t.frame(&ScreenBuffer::new(Size::new(4, 2)));
        let patches = t.frame(&ScreenBuffer::new(Size::new(6, 2)));
        assert_eq!(patches.len(), 12);
        assert_eq!(t.last_size(), Some(Size::new(6, 2)));
    }

    #[test]
    fn invalidate_forces_full_repaint() {
        let mut t = DamageTracker::new();
        let b = ScreenBuffer::new(Size::new(4, 2));
        t.frame(&b);
        t.invalidate();
        assert_eq!(t.frame(&b).len(), 8);
    }

    #[test]
    fn full_repaint_covers_every_cell() {
        let b = ScreenBuffer::new(Size::new(3, 3));
        assert_eq!(full_repaint(&b).len(), 9);
    }
}
