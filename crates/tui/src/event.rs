//! Input events.

/// A key press, the only input a 1983 terminal gave us.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Key {
    /// A printable character.
    Char(char),
    /// Enter / Return.
    Enter,
    /// Escape.
    Esc,
    /// Tab (next field).
    Tab,
    /// Shift-Tab (previous field).
    BackTab,
    /// Arrow up.
    Up,
    /// Arrow down.
    Down,
    /// Arrow left.
    Left,
    /// Arrow right.
    Right,
    /// Backspace.
    Backspace,
    /// Delete.
    Delete,
    /// Home.
    Home,
    /// End.
    End,
    /// Page up (browse backward).
    PageUp,
    /// Page down (browse forward).
    PageDown,
    /// A function key (1-12).
    F(u8),
    /// Control chord, e.g. `Ctrl('w')` cycles windows.
    Ctrl(char),
}

/// An input or environment event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A key press.
    Key(Key),
    /// The terminal was resized.
    Resize(u16, u16),
}

/// Parse a compact script notation into key events — tests and the example
/// binaries drive the UI with strings like `"<tab>hello<enter><pgdn>"`.
///
/// Angle-bracket tokens (case-insensitive): `enter esc tab backtab up down
/// left right backspace del home end pgup pgdn f1..f12 c-X`. Everything
/// else is literal characters.
pub fn parse_script(script: &str) -> Vec<Key> {
    let mut out = Vec::new();
    let chars: Vec<char> = script.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '<' {
            if let Some(close) = chars[i..].iter().position(|&c| c == '>') {
                let token: String = chars[i + 1..i + close].iter().collect();
                if let Some(key) = token_to_key(&token) {
                    out.push(key);
                    i += close + 1;
                    continue;
                }
            }
        }
        out.push(Key::Char(chars[i]));
        i += 1;
    }
    out
}

fn token_to_key(token: &str) -> Option<Key> {
    let t = token.to_ascii_lowercase();
    Some(match t.as_str() {
        "enter" => Key::Enter,
        "esc" => Key::Esc,
        "tab" => Key::Tab,
        "backtab" => Key::BackTab,
        "up" => Key::Up,
        "down" => Key::Down,
        "left" => Key::Left,
        "right" => Key::Right,
        "backspace" => Key::Backspace,
        "del" => Key::Delete,
        "home" => Key::Home,
        "end" => Key::End,
        "pgup" => Key::PageUp,
        "pgdn" => Key::PageDown,
        _ => {
            if let Some(rest) = t.strip_prefix("c-") {
                let mut cs = rest.chars();
                let c = cs.next()?;
                if cs.next().is_some() {
                    return None;
                }
                return Some(Key::Ctrl(c));
            }
            if let Some(rest) = t.strip_prefix('f') {
                let n: u8 = rest.parse().ok()?;
                if (1..=12).contains(&n) {
                    return Some(Key::F(n));
                }
            }
            return None;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_characters() {
        assert_eq!(parse_script("ab"), vec![Key::Char('a'), Key::Char('b')]);
    }

    #[test]
    fn tokens_parse() {
        assert_eq!(
            parse_script("<tab>x<enter><pgdn><c-w><f3>"),
            vec![
                Key::Tab,
                Key::Char('x'),
                Key::Enter,
                Key::PageDown,
                Key::Ctrl('w'),
                Key::F(3),
            ]
        );
    }

    #[test]
    fn unknown_tokens_are_literal() {
        let keys = parse_script("<nope>");
        assert_eq!(keys.len(), 6); // '<','n','o','p','e','>'
        assert_eq!(keys[0], Key::Char('<'));
    }

    #[test]
    fn unclosed_bracket_is_literal() {
        assert_eq!(
            parse_script("<ta"),
            vec![Key::Char('<'), Key::Char('t'), Key::Char('a')]
        );
    }

    #[test]
    fn f_keys_bounds() {
        assert_eq!(parse_script("<f12>"), vec![Key::F(12)]);
        assert_eq!(parse_script("<f13>").len(), 5, "f13 is not a key");
    }
}
