//! Focus rings: Tab/Shift-Tab traversal over a window's widgets.

/// A cyclic focus order over `n` focusable slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FocusRing {
    len: usize,
    current: usize,
}

impl FocusRing {
    /// A ring over `len` slots, starting at slot 0.
    pub fn new(len: usize) -> FocusRing {
        FocusRing { len, current: 0 }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The focused slot, or `None` for an empty ring.
    pub fn current(&self) -> Option<usize> {
        (self.len > 0).then_some(self.current)
    }

    /// Focus the next slot (Tab).
    #[allow(clippy::should_implement_trait)] // not an iterator: mutates focus, wraps around
    pub fn next(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        self.current = (self.current + 1) % self.len;
        Some(self.current)
    }

    /// Focus the previous slot (Shift-Tab).
    pub fn prev(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        self.current = (self.current + self.len - 1) % self.len;
        Some(self.current)
    }

    /// Jump to a slot (clamped).
    pub fn set(&mut self, slot: usize) {
        if self.len > 0 {
            self.current = slot.min(self.len - 1);
        }
    }

    /// Resize the ring (e.g. a form gained a field), keeping focus stable
    /// when possible.
    pub fn resize(&mut self, len: usize) {
        self.len = len;
        if len == 0 {
            self.current = 0;
        } else if self.current >= len {
            self.current = len - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_forward_and_back() {
        let mut r = FocusRing::new(3);
        assert_eq!(r.current(), Some(0));
        assert_eq!(r.next(), Some(1));
        assert_eq!(r.next(), Some(2));
        assert_eq!(r.next(), Some(0));
        assert_eq!(r.prev(), Some(2));
    }

    #[test]
    fn empty_ring_is_inert() {
        let mut r = FocusRing::new(0);
        assert_eq!(r.current(), None);
        assert_eq!(r.next(), None);
        assert_eq!(r.prev(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn set_clamps() {
        let mut r = FocusRing::new(3);
        r.set(99);
        assert_eq!(r.current(), Some(2));
    }

    #[test]
    fn resize_keeps_focus_stable() {
        let mut r = FocusRing::new(5);
        r.set(4);
        r.resize(3);
        assert_eq!(r.current(), Some(2));
        r.resize(10);
        assert_eq!(r.current(), Some(2));
        r.resize(0);
        assert_eq!(r.current(), None);
    }
}
