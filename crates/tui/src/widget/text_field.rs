//! A single-line editable text field.

use super::{Response, Widget};
use crate::buffer::ScreenBuffer;
use crate::cell::{Cell, Style};
use crate::event::Key;
use crate::geom::Rect;

/// A single-line editor with a cursor and horizontal scrolling.
///
/// Focused fields render underlined with the cursor cell in reverse video;
/// unfocused fields render plain — the visual grammar of 1983 form
/// packages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextField {
    value: Vec<char>,
    cursor: usize,
    /// Maximum length in characters (0 = unlimited).
    pub max_len: usize,
}

impl TextField {
    /// An empty field.
    pub fn new() -> TextField {
        TextField {
            value: Vec::new(),
            cursor: 0,
            max_len: 0,
        }
    }

    /// A field pre-filled with `value`, cursor at the end.
    pub fn with_value(value: &str) -> TextField {
        let value: Vec<char> = value.chars().collect();
        let cursor = value.len();
        TextField {
            value,
            cursor,
            max_len: 0,
        }
    }

    /// The current text.
    pub fn value(&self) -> String {
        self.value.iter().collect()
    }

    /// Replace the text (cursor moves to the end).
    pub fn set_value(&mut self, value: &str) {
        self.value = value.chars().collect();
        self.cursor = self.value.len();
    }

    /// Cursor position in characters.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Whether the field holds no text.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

impl Default for TextField {
    fn default() -> Self {
        Self::new()
    }
}

impl Widget for TextField {
    fn render(&self, buf: &mut ScreenBuffer, area: Rect, focused: bool) {
        if area.is_empty() {
            return;
        }
        let width = area.w as usize;
        // Horizontal scroll: keep the cursor visible in the last column at
        // most.
        let start = if self.cursor >= width {
            self.cursor + 1 - width
        } else {
            0
        };
        let base = if focused {
            Style::plain().underline()
        } else {
            Style::plain()
        };
        for col in 0..width {
            let idx = start + col;
            let ch = self.value.get(idx).copied().unwrap_or(' ');
            let mut style = base;
            if focused && idx == self.cursor {
                style.reverse = true;
            }
            buf.set(area.x + col as i32, area.y, Cell::new(ch, style));
        }
    }

    fn handle_key(&mut self, key: Key) -> Response {
        match key {
            Key::Char(c) => {
                if self.max_len > 0 && self.value.len() >= self.max_len {
                    return Response::Consumed;
                }
                self.value.insert(self.cursor, c);
                self.cursor += 1;
                Response::Consumed
            }
            Key::Backspace => {
                if self.cursor > 0 {
                    self.cursor -= 1;
                    self.value.remove(self.cursor);
                }
                Response::Consumed
            }
            Key::Delete => {
                if self.cursor < self.value.len() {
                    self.value.remove(self.cursor);
                }
                Response::Consumed
            }
            Key::Left => {
                self.cursor = self.cursor.saturating_sub(1);
                Response::Consumed
            }
            Key::Right => {
                self.cursor = (self.cursor + 1).min(self.value.len());
                Response::Consumed
            }
            Key::Home => {
                self.cursor = 0;
                Response::Consumed
            }
            Key::End => {
                self.cursor = self.value.len();
                Response::Consumed
            }
            Key::Enter => Response::Submit,
            Key::Esc => Response::Cancel,
            _ => Response::Ignored,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_script;
    use crate::geom::Size;

    fn type_into(f: &mut TextField, script: &str) {
        for k in parse_script(script) {
            f.handle_key(k);
        }
    }

    #[test]
    fn typing_and_editing() {
        let mut f = TextField::new();
        type_into(&mut f, "helo");
        assert_eq!(f.value(), "helo");
        type_into(&mut f, "<left><left>l");
        assert_eq!(f.value(), "hello", "insert mid-string");
        type_into(&mut f, "<home><del>");
        assert_eq!(f.value(), "ello");
        type_into(&mut f, "<end>!<backspace><backspace>");
        assert_eq!(f.value(), "ell");
    }

    #[test]
    fn cursor_clamps_at_edges() {
        let mut f = TextField::with_value("ab");
        type_into(&mut f, "<right><right><right>");
        assert_eq!(f.cursor(), 2);
        type_into(&mut f, "<left><left><left><left>");
        assert_eq!(f.cursor(), 0);
        type_into(&mut f, "<backspace>");
        assert_eq!(f.value(), "ab", "backspace at start is a no-op");
    }

    #[test]
    fn max_len_enforced() {
        let mut f = TextField::new();
        f.max_len = 3;
        type_into(&mut f, "abcdef");
        assert_eq!(f.value(), "abc");
    }

    #[test]
    fn enter_and_esc_bubble_up() {
        let mut f = TextField::new();
        assert_eq!(f.handle_key(Key::Enter), Response::Submit);
        assert_eq!(f.handle_key(Key::Esc), Response::Cancel);
        assert_eq!(f.handle_key(Key::PageDown), Response::Ignored);
    }

    #[test]
    fn renders_with_cursor_and_scroll() {
        let mut buf = ScreenBuffer::new(Size::new(5, 1));
        let f = TextField::with_value("ab");
        f.render(&mut buf, Rect::new(0, 0, 5, 1), true);
        assert_eq!(buf.to_strings()[0], "ab   ");
        // Cursor (at index 2) is the reversed cell.
        assert!(buf.get(2, 0).style.reverse);
        assert!(buf.get(0, 0).style.underline);
        // Long values scroll so the cursor stays visible.
        let f = TextField::with_value("abcdefghij");
        f.render(&mut buf, Rect::new(0, 0, 5, 1), true);
        assert_eq!(buf.to_strings()[0], "ghij ");
    }

    #[test]
    fn unfocused_render_is_plain() {
        let mut buf = ScreenBuffer::new(Size::new(5, 1));
        let f = TextField::with_value("ab");
        f.render(&mut buf, Rect::new(0, 0, 5, 1), false);
        assert!(!buf.get(0, 0).style.underline);
        assert!(!buf.get(2, 0).style.reverse);
    }

    #[test]
    fn set_value_resets_cursor() {
        let mut f = TextField::with_value("abc");
        f.set_value("xy");
        assert_eq!(f.value(), "xy");
        assert_eq!(f.cursor(), 2);
        assert!(!f.is_empty());
    }
}
