//! Widgets: the building blocks forms are made of.

pub mod label;
pub mod menu;
pub mod status;
pub mod table_grid;
pub mod text_field;

pub use label::Label;
pub use menu::MenuBar;
pub use status::StatusBar;
pub use table_grid::TableGrid;
pub use text_field::TextField;

use crate::buffer::ScreenBuffer;
use crate::event::Key;
use crate::geom::Rect;

/// What a widget did with a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// Not interested; the container should handle it.
    Ignored,
    /// Consumed (state may have changed; repaint).
    Consumed,
    /// The user activated/submitted (Enter on a menu item, etc.).
    Submit,
    /// The user cancelled (Esc).
    Cancel,
}

/// A renderable, key-driven widget.
pub trait Widget {
    /// Paint into `buf`, constrained to `area`. `focused` selects the
    /// focused visual treatment.
    fn render(&self, buf: &mut ScreenBuffer, area: Rect, focused: bool);

    /// React to a key. Default: ignore everything.
    fn handle_key(&mut self, key: Key) -> Response {
        let _ = key;
        Response::Ignored
    }
}
