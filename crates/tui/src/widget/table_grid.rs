//! A scrolling table grid — the multi-record browse surface.

use super::{Response, Widget};
use crate::buffer::ScreenBuffer;
use crate::cell::Style;
use crate::event::Key;
use crate::geom::{Point, Rect};

/// A grid of rows with a header, a selection bar, and vertical scrolling.
///
/// The grid shows `area.h - 1` data rows below the header; Up/Down move the
/// selection, PageUp/PageDown jump by a screenful (the browse unit of the
/// paper), Home/End jump to the extremes. Scrolling keeps the selection
/// visible.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableGrid {
    /// Column headers.
    pub headers: Vec<String>,
    /// Column widths (cells).
    pub widths: Vec<u16>,
    /// Row data (display strings, already formatted by the forms layer).
    pub rows: Vec<Vec<String>>,
    /// Selected row index.
    selected: usize,
    /// First visible row index.
    offset: usize,
}

impl TableGrid {
    /// An empty grid with the given columns.
    pub fn new(headers: Vec<String>, widths: Vec<u16>) -> TableGrid {
        assert_eq!(headers.len(), widths.len());
        TableGrid {
            headers,
            widths,
            rows: Vec::new(),
            selected: 0,
            offset: 0,
        }
    }

    /// Replace the rows, clamping selection/scroll.
    pub fn set_rows(&mut self, rows: Vec<Vec<String>>) {
        self.rows = rows;
        if self.rows.is_empty() {
            self.selected = 0;
            self.offset = 0;
        } else {
            self.selected = self.selected.min(self.rows.len() - 1);
            self.offset = self.offset.min(self.selected);
        }
    }

    /// The selected row index (0 when empty).
    pub fn selected(&self) -> usize {
        self.selected
    }

    /// The first visible row index.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Select a row, scrolling if needed on next render.
    pub fn select(&mut self, row: usize) {
        if !self.rows.is_empty() {
            self.selected = row.min(self.rows.len() - 1);
        }
    }

    /// Data rows visible for a given area height.
    pub fn page_size(&self, area: Rect) -> usize {
        (area.h as usize).saturating_sub(1)
    }

    /// Adjust scroll so the selection is visible within `visible` rows.
    fn normalize(&mut self, visible: usize) {
        if visible == 0 {
            return;
        }
        if self.selected < self.offset {
            self.offset = self.selected;
        } else if self.selected >= self.offset + visible {
            self.offset = self.selected + 1 - visible;
        }
    }

    /// Move the selection by a signed amount (used for paging).
    pub fn move_selection(&mut self, delta: isize) {
        if self.rows.is_empty() {
            return;
        }
        let n = self.rows.len() as isize;
        let next = (self.selected as isize + delta).clamp(0, n - 1);
        self.selected = next as usize;
    }

    /// Handle a key given the current viewport height; the plain
    /// [`Widget::handle_key`] assumes a 10-row page.
    pub fn handle_key_with_page(&mut self, key: Key, page: usize) -> Response {
        match key {
            Key::Up => {
                self.move_selection(-1);
                Response::Consumed
            }
            Key::Down => {
                self.move_selection(1);
                Response::Consumed
            }
            Key::PageUp => {
                self.move_selection(-(page.max(1) as isize));
                Response::Consumed
            }
            Key::PageDown => {
                self.move_selection(page.max(1) as isize);
                Response::Consumed
            }
            Key::Home => {
                self.selected = 0;
                Response::Consumed
            }
            Key::End => {
                if !self.rows.is_empty() {
                    self.selected = self.rows.len() - 1;
                }
                Response::Consumed
            }
            Key::Enter => Response::Submit,
            Key::Esc => Response::Cancel,
            _ => Response::Ignored,
        }
    }
}

impl Widget for TableGrid {
    fn render(&self, buf: &mut ScreenBuffer, area: Rect, focused: bool) {
        if area.is_empty() {
            return;
        }
        // Header.
        let header_style = Style::plain().bold();
        let mut x = area.x;
        for (h, w) in self.headers.iter().zip(&self.widths) {
            let cell_clip = Rect::new(x, area.y, *w, 1).intersect(area);
            buf.draw_text(Point::new(x, area.y), h, header_style, cell_clip);
            x += *w as i32 + 1;
        }
        // Rows.
        let visible = self.page_size(area);
        // Render-time normalization keeps scroll math in one place.
        let mut offset = self.offset;
        if self.selected < offset {
            offset = self.selected;
        } else if visible > 0 && self.selected >= offset + visible {
            offset = self.selected + 1 - visible;
        }
        for (vis_i, row_i) in (offset..self.rows.len()).take(visible).enumerate() {
            let y = area.y + 1 + vis_i as i32;
            let is_sel = row_i == self.selected;
            let style = if is_sel && focused {
                Style::plain().reverse()
            } else {
                Style::plain()
            };
            if is_sel && focused {
                buf.fill(Rect::new(area.x, y, area.w, 1), ' ', style);
            }
            let mut x = area.x;
            for (val, w) in self.rows[row_i].iter().zip(&self.widths) {
                let cell_clip = Rect::new(x, y, *w, 1).intersect(area);
                buf.draw_text(Point::new(x, y), val, style, cell_clip);
                x += *w as i32 + 1;
            }
        }
    }

    fn handle_key(&mut self, key: Key) -> Response {
        let r = self.handle_key_with_page(key, 10);
        self.normalize(10);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Size;

    fn grid(n: usize) -> TableGrid {
        let mut g = TableGrid::new(vec!["id".into(), "name".into()], vec![4, 8]);
        g.set_rows(
            (0..n)
                .map(|i| vec![format!("{i}"), format!("row{i}")])
                .collect(),
        );
        g
    }

    #[test]
    fn renders_header_and_rows() {
        let mut buf = ScreenBuffer::new(Size::new(14, 4));
        let g = grid(2);
        g.render(&mut buf, Rect::new(0, 0, 14, 4), false);
        let rows = buf.to_strings();
        assert_eq!(rows[0], "id   name     ");
        assert_eq!(rows[1], "0    row0     ");
        assert_eq!(rows[2], "1    row1     ");
    }

    #[test]
    fn selection_bar_renders_reversed_when_focused() {
        let mut buf = ScreenBuffer::new(Size::new(14, 4));
        let mut g = grid(3);
        g.select(1);
        g.render(&mut buf, Rect::new(0, 0, 14, 4), true);
        assert!(buf.get(0, 2).style.reverse);
        assert!(!buf.get(0, 1).style.reverse);
    }

    #[test]
    fn navigation_keys() {
        let mut g = grid(30);
        assert_eq!(g.handle_key(Key::Down), Response::Consumed);
        assert_eq!(g.selected(), 1);
        g.handle_key(Key::PageDown);
        assert_eq!(g.selected(), 11);
        g.handle_key(Key::PageUp);
        assert_eq!(g.selected(), 1);
        g.handle_key(Key::End);
        assert_eq!(g.selected(), 29);
        g.handle_key(Key::Home);
        assert_eq!(g.selected(), 0);
        g.handle_key(Key::Up);
        assert_eq!(g.selected(), 0, "clamped at top");
    }

    #[test]
    fn scroll_follows_selection() {
        let mut g = grid(30);
        for _ in 0..15 {
            g.handle_key(Key::Down);
        }
        assert_eq!(g.selected(), 15);
        assert!(g.offset() > 0, "scrolled down");
        // Render 5 visible rows: offset must keep selection on screen.
        let mut buf = ScreenBuffer::new(Size::new(14, 6));
        g.render(&mut buf, Rect::new(0, 0, 14, 6), true);
        let rows = buf.to_strings();
        assert!(
            rows.iter().any(|r| r.contains("row15")),
            "selection visible: {rows:?}"
        );
    }

    #[test]
    fn empty_grid_is_safe() {
        let mut g = grid(0);
        assert_eq!(g.handle_key(Key::Down), Response::Consumed);
        assert_eq!(g.handle_key(Key::End), Response::Consumed);
        assert_eq!(g.selected(), 0);
        let mut buf = ScreenBuffer::new(Size::new(14, 3));
        g.render(&mut buf, Rect::new(0, 0, 14, 3), true);
        assert_eq!(buf.to_strings()[1], "              ");
    }

    #[test]
    fn set_rows_clamps_selection() {
        let mut g = grid(30);
        g.select(29);
        g.set_rows(vec![vec!["0".into(), "only".into()]]);
        assert_eq!(g.selected(), 0);
    }

    #[test]
    fn enter_submits() {
        let mut g = grid(3);
        assert_eq!(g.handle_key(Key::Enter), Response::Submit);
        assert_eq!(g.handle_key(Key::Esc), Response::Cancel);
        assert_eq!(g.handle_key(Key::Char('z')), Response::Ignored);
    }
}
