//! A static text label.

use super::Widget;
use crate::buffer::ScreenBuffer;
use crate::cell::Style;
use crate::geom::{Point, Rect};

/// Static text (captions, prompts, read-only values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// The text.
    pub text: String,
    /// Style.
    pub style: Style,
}

impl Label {
    /// A plain label.
    pub fn new(text: impl Into<String>) -> Label {
        Label {
            text: text.into(),
            style: Style::plain(),
        }
    }

    /// A styled label.
    pub fn styled(text: impl Into<String>, style: Style) -> Label {
        Label {
            text: text.into(),
            style,
        }
    }
}

impl Widget for Label {
    fn render(&self, buf: &mut ScreenBuffer, area: Rect, _focused: bool) {
        buf.draw_text(Point::new(area.x, area.y), &self.text, self.style, area);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Size;

    #[test]
    fn renders_clipped() {
        let mut buf = ScreenBuffer::new(Size::new(6, 1));
        Label::new("hello world").render(&mut buf, Rect::new(0, 0, 6, 1), false);
        assert_eq!(buf.to_strings()[0], "hello ");
    }

    #[test]
    fn keys_are_ignored() {
        use super::super::{Response, Widget};
        use crate::event::Key;
        let mut l = Label::new("x");
        assert_eq!(l.handle_key(Key::Enter), Response::Ignored);
    }
}
