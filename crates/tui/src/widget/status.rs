//! A status bar: left-aligned message, right-aligned hint.

use super::Widget;
use crate::buffer::ScreenBuffer;
use crate::cell::Style;
use crate::geom::{Point, Rect};

/// A one-row status line rendered in reverse video.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatusBar {
    /// Left-aligned text (messages, errors).
    pub left: String,
    /// Right-aligned text (key hints, row counts).
    pub right: String,
}

impl StatusBar {
    /// An empty status bar.
    pub fn new() -> StatusBar {
        StatusBar::default()
    }

    /// Set the message.
    pub fn set(&mut self, left: impl Into<String>, right: impl Into<String>) {
        self.left = left.into();
        self.right = right.into();
    }
}

impl Widget for StatusBar {
    fn render(&self, buf: &mut ScreenBuffer, area: Rect, _focused: bool) {
        let style = Style::plain().reverse();
        buf.fill(area.row(0), ' ', style);
        buf.draw_text(Point::new(area.x, area.y), &self.left, style, area.row(0));
        let rlen = self.right.chars().count() as i32;
        let rx = (area.right() - rlen).max(area.x);
        buf.draw_text(Point::new(rx, area.y), &self.right, style, area.row(0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Size;

    #[test]
    fn left_and_right_alignment() {
        let mut buf = ScreenBuffer::new(Size::new(20, 1));
        let mut s = StatusBar::new();
        s.set("3 rows", "PgDn=more");
        s.render(&mut buf, Rect::new(0, 0, 20, 1), false);
        assert_eq!(buf.to_strings()[0], "3 rows     PgDn=more");
        assert!(buf.get(0, 0).style.reverse);
    }

    #[test]
    fn overlong_right_clips_at_left_edge() {
        let mut buf = ScreenBuffer::new(Size::new(6, 1));
        let mut s = StatusBar::new();
        s.set("", "much too long");
        s.render(&mut buf, Rect::new(0, 0, 6, 1), false);
        assert_eq!(buf.to_strings()[0], "much t");
    }
}
