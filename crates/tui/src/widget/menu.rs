//! A horizontal menu bar.

use super::{Response, Widget};
use crate::buffer::ScreenBuffer;
use crate::cell::Style;
use crate::event::Key;
use crate::geom::{Point, Rect};

/// A one-row menu: `Browse  Edit  Query  Quit`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MenuBar {
    /// The items.
    pub items: Vec<String>,
    selected: usize,
}

impl MenuBar {
    /// A menu over items (must be non-empty to be useful).
    pub fn new(items: Vec<String>) -> MenuBar {
        MenuBar { items, selected: 0 }
    }

    /// Selected item index.
    pub fn selected(&self) -> usize {
        self.selected
    }

    /// Selected item label.
    pub fn selected_item(&self) -> Option<&str> {
        self.items.get(self.selected).map(|s| s.as_str())
    }

    /// Select by label; returns whether it existed.
    pub fn select_label(&mut self, label: &str) -> bool {
        if let Some(i) = self.items.iter().position(|s| s == label) {
            self.selected = i;
            true
        } else {
            false
        }
    }
}

impl Widget for MenuBar {
    fn render(&self, buf: &mut ScreenBuffer, area: Rect, focused: bool) {
        let mut x = area.x;
        for (i, item) in self.items.iter().enumerate() {
            let style = if i == self.selected && focused {
                Style::plain().reverse()
            } else if i == self.selected {
                Style::plain().bold()
            } else {
                Style::plain()
            };
            let text = format!(" {item} ");
            buf.draw_text(Point::new(x, area.y), &text, style, area);
            x += text.chars().count() as i32;
        }
    }

    fn handle_key(&mut self, key: Key) -> Response {
        if self.items.is_empty() {
            return Response::Ignored;
        }
        match key {
            Key::Left => {
                self.selected = (self.selected + self.items.len() - 1) % self.items.len();
                Response::Consumed
            }
            Key::Right | Key::Tab => {
                self.selected = (self.selected + 1) % self.items.len();
                Response::Consumed
            }
            Key::Enter => Response::Submit,
            Key::Esc => Response::Cancel,
            Key::Char(c) => {
                // First-letter accelerator, the 1983 idiom.
                let lower = c.to_ascii_lowercase();
                if let Some(i) = self.items.iter().position(|s| {
                    s.chars()
                        .next()
                        .is_some_and(|f| f.to_ascii_lowercase() == lower)
                }) {
                    self.selected = i;
                    Response::Submit
                } else {
                    Response::Ignored
                }
            }
            _ => Response::Ignored,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Size;

    fn menu() -> MenuBar {
        MenuBar::new(vec!["Browse".into(), "Edit".into(), "Quit".into()])
    }

    #[test]
    fn arrows_cycle() {
        let mut m = menu();
        m.handle_key(Key::Right);
        assert_eq!(m.selected_item(), Some("Edit"));
        m.handle_key(Key::Left);
        m.handle_key(Key::Left);
        assert_eq!(m.selected_item(), Some("Quit"), "wraps");
    }

    #[test]
    fn accelerators_select_and_submit() {
        let mut m = menu();
        assert_eq!(m.handle_key(Key::Char('q')), Response::Submit);
        assert_eq!(m.selected_item(), Some("Quit"));
        assert_eq!(m.handle_key(Key::Char('z')), Response::Ignored);
    }

    #[test]
    fn renders_with_selection_highlight() {
        let mut buf = ScreenBuffer::new(Size::new(24, 1));
        let m = menu();
        m.render(&mut buf, Rect::new(0, 0, 24, 1), true);
        assert_eq!(buf.to_strings()[0], " Browse  Edit  Quit     ");
        assert!(buf.get(1, 0).style.reverse);
        assert!(!buf.get(10, 0).style.reverse);
    }

    #[test]
    fn select_label() {
        let mut m = menu();
        assert!(m.select_label("Edit"));
        assert_eq!(m.selected(), 1);
        assert!(!m.select_label("Nope"));
    }

    #[test]
    fn empty_menu_ignores_keys() {
        let mut m = MenuBar::new(vec![]);
        assert_eq!(m.handle_key(Key::Right), Response::Ignored);
        assert_eq!(m.selected_item(), None);
    }
}
