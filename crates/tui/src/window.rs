//! A window: a framed, titled screen region with its own content buffer.

use crate::buffer::ScreenBuffer;
use crate::cell::Style;
use crate::geom::{Rect, Size};

/// A window on the screen.
///
/// The window owns a content buffer sized to its *interior* (the frame
/// shrinks the content by one cell on each side). The compositor blits the
/// interior and draws the frame; widgets draw into the interior buffer via
/// [`Window::content_mut`].
#[derive(Debug, Clone)]
pub struct Window {
    /// Frame rectangle in screen coordinates.
    rect: Rect,
    /// Title shown on the top border.
    pub title: String,
    /// Whether the window participates in composition.
    pub visible: bool,
    /// Interior content.
    content: ScreenBuffer,
}

impl Window {
    /// Create a window with the given frame rect.
    pub fn new(rect: Rect, title: impl Into<String>) -> Window {
        Window {
            rect,
            title: title.into(),
            visible: true,
            content: ScreenBuffer::new(Self::interior_size(rect)),
        }
    }

    fn interior_size(rect: Rect) -> Size {
        Size::new(rect.w.saturating_sub(2), rect.h.saturating_sub(2))
    }

    /// The frame rect (screen coordinates).
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// The interior rect (screen coordinates).
    pub fn interior(&self) -> Rect {
        self.rect.inset(1)
    }

    /// The interior rect in window-local coordinates (origin 0,0).
    pub fn local(&self) -> Rect {
        Rect::of_size(self.content.size())
    }

    /// Read the content buffer.
    pub fn content(&self) -> &ScreenBuffer {
        &self.content
    }

    /// Draw into the content buffer.
    pub fn content_mut(&mut self) -> &mut ScreenBuffer {
        &mut self.content
    }

    /// Move the window; contents are preserved.
    pub fn move_to(&mut self, x: i32, y: i32) {
        self.rect.x = x;
        self.rect.y = y;
    }

    /// Resize the frame; contents are cleared (widgets repaint next frame).
    pub fn resize(&mut self, w: u16, h: u16) {
        self.rect.w = w;
        self.rect.h = h;
        self.content = ScreenBuffer::new(Self::interior_size(self.rect));
    }

    /// Compose this window onto a screen buffer: frame, title, interior.
    /// `focused` draws the frame in reverse video, the 1983 focus cue.
    pub fn compose_onto(&self, screen: &mut ScreenBuffer, focused: bool) {
        if !self.visible {
            return;
        }
        let style = if focused {
            Style::plain().reverse()
        } else {
            Style::plain()
        };
        // Opaque background for the whole frame so windows occlude.
        screen.fill(self.rect, ' ', Style::plain());
        screen.draw_border(self.rect, Some(&self.title), style);
        let interior = self.interior();
        screen.blit(
            &self.content,
            crate::geom::Point::new(interior.x, interior.y),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::geom::Point;

    #[test]
    fn interior_is_inset_by_frame() {
        let w = Window::new(Rect::new(2, 1, 10, 5), "t");
        assert_eq!(w.interior(), Rect::new(3, 2, 8, 3));
        assert_eq!(w.local(), Rect::new(0, 0, 8, 3));
    }

    #[test]
    fn compose_draws_frame_title_and_content() {
        let mut w = Window::new(Rect::new(0, 0, 10, 4), "emp");
        let local = w.local();
        w.content_mut()
            .draw_text(Point::new(0, 0), "hi", Style::plain(), local);
        let mut screen = ScreenBuffer::new(Size::new(12, 5));
        w.compose_onto(&mut screen, false);
        let rows = screen.to_strings();
        assert_eq!(rows[0], "+ emp ---+  ");
        assert_eq!(rows[1], "|hi      |  ");
    }

    #[test]
    fn hidden_windows_do_not_compose() {
        let mut w = Window::new(Rect::new(0, 0, 6, 3), "x");
        w.visible = false;
        let mut screen = ScreenBuffer::new(Size::new(8, 4));
        w.compose_onto(&mut screen, false);
        assert!(screen.to_strings().iter().all(|r| r.trim().is_empty()));
    }

    #[test]
    fn focused_frame_is_reverse_video() {
        let w = Window::new(Rect::new(0, 0, 6, 3), "x");
        let mut screen = ScreenBuffer::new(Size::new(8, 4));
        w.compose_onto(&mut screen, true);
        assert!(screen.get(0, 0).style.reverse);
    }

    #[test]
    fn move_preserves_content_resize_clears() {
        let mut w = Window::new(Rect::new(0, 0, 8, 4), "x");
        w.content_mut().set(0, 0, Cell::plain('k'));
        w.move_to(3, 3);
        assert_eq!(w.content().get(0, 0).ch, 'k');
        assert_eq!(w.rect(), Rect::new(3, 3, 8, 4));
        w.resize(12, 6);
        assert_eq!(w.content().get(0, 0).ch, ' ');
        assert_eq!(w.local(), Rect::new(0, 0, 10, 4));
    }

    #[test]
    fn tiny_windows_have_empty_interiors() {
        let w = Window::new(Rect::new(0, 0, 2, 2), "x");
        assert!(w.local().is_empty());
    }
}
