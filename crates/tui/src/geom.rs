//! Screen geometry: points, sizes, rectangles.

/// A screen position (column, row), 0-based, top-left origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Point {
    /// Column.
    pub x: i32,
    /// Row.
    pub y: i32,
}

impl Point {
    /// Construct a point.
    pub fn new(x: i32, y: i32) -> Point {
        Point { x, y }
    }
}

/// A size in cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Size {
    /// Width in columns.
    pub w: u16,
    /// Height in rows.
    pub h: u16,
}

impl Size {
    /// Construct a size.
    pub fn new(w: u16, h: u16) -> Size {
        Size { w, h }
    }

    /// Total cells.
    pub fn area(self) -> usize {
        self.w as usize * self.h as usize
    }
}

/// An axis-aligned rectangle of cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Left column.
    pub x: i32,
    /// Top row.
    pub y: i32,
    /// Width.
    pub w: u16,
    /// Height.
    pub h: u16,
}

impl Rect {
    /// Construct a rect.
    pub fn new(x: i32, y: i32, w: u16, h: u16) -> Rect {
        Rect { x, y, w, h }
    }

    /// A rect at the origin with the given size.
    pub fn of_size(size: Size) -> Rect {
        Rect::new(0, 0, size.w, size.h)
    }

    /// Right edge (exclusive).
    pub fn right(self) -> i32 {
        self.x + self.w as i32
    }

    /// Bottom edge (exclusive).
    pub fn bottom(self) -> i32 {
        self.y + self.h as i32
    }

    /// Whether the rect has zero area.
    pub fn is_empty(self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Whether a point lies inside.
    pub fn contains(self, p: Point) -> bool {
        p.x >= self.x && p.x < self.right() && p.y >= self.y && p.y < self.bottom()
    }

    /// The intersection of two rects (possibly empty).
    pub fn intersect(self, other: Rect) -> Rect {
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let right = self.right().min(other.right());
        let bottom = self.bottom().min(other.bottom());
        if right <= x || bottom <= y {
            return Rect::new(x, y, 0, 0);
        }
        Rect::new(x, y, (right - x) as u16, (bottom - y) as u16)
    }

    /// Whether two rects share any cell.
    pub fn intersects(self, other: Rect) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Translate by a delta.
    pub fn translated(self, dx: i32, dy: i32) -> Rect {
        Rect::new(self.x + dx, self.y + dy, self.w, self.h)
    }

    /// Shrink by a uniform margin (used to get a window's interior).
    pub fn inset(self, margin: u16) -> Rect {
        let m2 = margin as i32 * 2;
        if (self.w as i32) <= m2 || (self.h as i32) <= m2 {
            return Rect::new(self.x + margin as i32, self.y + margin as i32, 0, 0);
        }
        Rect::new(
            self.x + margin as i32,
            self.y + margin as i32,
            self.w - margin * 2,
            self.h - margin * 2,
        )
    }

    /// The `n`-th row of the rect as a 1-cell-high rect.
    pub fn row(self, n: u16) -> Rect {
        if n >= self.h {
            return Rect::new(self.x, self.bottom(), 0, 0);
        }
        Rect::new(self.x, self.y + n as i32, self.w, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_edges() {
        let r = Rect::new(2, 3, 4, 2); // cols 2..6, rows 3..5
        assert!(r.contains(Point::new(2, 3)));
        assert!(r.contains(Point::new(5, 4)));
        assert!(!r.contains(Point::new(6, 4)));
        assert!(!r.contains(Point::new(5, 5)));
        assert!(!r.contains(Point::new(1, 3)));
    }

    #[test]
    fn intersect_overlapping() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(b), Rect::new(5, 5, 5, 5));
        assert!(a.intersects(b));
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = Rect::new(0, 0, 5, 5);
        let b = Rect::new(5, 0, 5, 5);
        assert!(a.intersect(b).is_empty());
        assert!(!a.intersects(b));
    }

    #[test]
    fn intersect_negative_coords() {
        let a = Rect::new(-3, -3, 6, 6);
        let b = Rect::new(0, 0, 10, 10);
        assert_eq!(a.intersect(b), Rect::new(0, 0, 3, 3));
    }

    #[test]
    fn inset_normal_and_degenerate() {
        let r = Rect::new(0, 0, 10, 6);
        assert_eq!(r.inset(1), Rect::new(1, 1, 8, 4));
        let tiny = Rect::new(0, 0, 2, 2);
        assert!(tiny.inset(1).is_empty());
    }

    #[test]
    fn row_slicing() {
        let r = Rect::new(1, 1, 5, 3);
        assert_eq!(r.row(0), Rect::new(1, 1, 5, 1));
        assert_eq!(r.row(2), Rect::new(1, 3, 5, 1));
        assert!(r.row(3).is_empty());
    }

    #[test]
    fn translated_moves() {
        assert_eq!(
            Rect::new(1, 1, 2, 2).translated(-1, 3),
            Rect::new(0, 4, 2, 2)
        );
    }

    #[test]
    fn size_area() {
        assert_eq!(Size::new(80, 24).area(), 1920);
    }
}
