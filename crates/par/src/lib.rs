//! `wow-par`: a dependency-free scoped worker pool.
//!
//! The build environment has no registry access, so this crate hand-rolls
//! the small slice of rayon/crossbeam the workspace needs: chunked
//! scatter/gather over scoped threads with an atomic task injector. There
//! are no long-lived worker threads — each [`Pool::scope`] call spawns up
//! to `workers` OS threads via [`std::thread::scope`], which keeps the
//! design free of lifetime erasure (`'static` bounds) and shutdown
//! protocol, at the cost of a thread-spawn per parallel region. The
//! regions this pool serves (multi-page scans, hash-join builds,
//! multi-window refresh fan-out) run for hundreds of microseconds to
//! milliseconds, so the ~10µs spawn cost amortizes away; work below that
//! scale should stay on the serial path (see the threshold constants in
//! the consuming crates).
//!
//! Semantics:
//!
//! * **Order-preserving gather**: [`Pool::map`] returns results in input
//!   order regardless of which worker ran which task.
//! * **Panic propagation**: a panicking task poisons the region; the first
//!   panic payload is re-raised on the submitting thread after all workers
//!   have stopped (remaining queued tasks are abandoned).
//! * **`workers == 1` is exact serial execution**: tasks run inline on the
//!   submitting thread, in submission order, with no thread spawned — so a
//!   size-1 pool is bit-for-bit the serial code path.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod stats;

/// Upper bound on auto-detected pool size; parallel regions here are
/// memory-bandwidth bound well before 16 cores help.
pub const MAX_AUTO_WORKERS: usize = 8;

/// Resolve a worker count: the `WOW_WORKERS` environment variable wins
/// (so CI can force 1 and 4), then an explicit non-zero request, then
/// [`std::thread::available_parallelism`] clamped to [`MAX_AUTO_WORKERS`].
pub fn resolve_workers(requested: usize) -> usize {
    if let Ok(v) = std::env::var("WOW_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_AUTO_WORKERS)
}

/// A scoped worker pool. Cheap to construct and copy: the struct holds only
/// the target width; threads are spawned per scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::new(resolve_workers(0))
    }
}

impl Pool {
    /// A pool that runs scopes on up to `workers` threads (minimum 1).
    pub fn new(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
        }
    }

    /// A single-threaded pool (exact serial behavior).
    pub fn serial() -> Pool {
        Pool::new(1)
    }

    /// The configured width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run a set of spawned tasks to completion, then return. Tasks are
    /// picked up by up to `workers` threads from a shared injector; with
    /// one worker they run inline in submission order.
    pub fn scope<'env, F>(&self, build: F)
    where
        F: FnOnce(&mut Scope<'env>),
    {
        let mut scope = Scope { tasks: Vec::new() };
        build(&mut scope);
        self.run_tasks(scope.tasks);
    }

    /// Apply `f` to every element of `items` (receiving the element index),
    /// gathering results in input order. `f` may run concurrently on up to
    /// `workers` threads; panics propagate to the caller.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.workers == 1 || n <= 1 {
            stats::note_tasks(n as u64);
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let fref = &f;
        let slots_ref = &slots;
        let results_ref = &results;
        self.scope(|s| {
            for i in 0..n {
                s.spawn(move || {
                    let item = slots_ref[i]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("task taken once");
                    let r = fref(i, item);
                    *results_ref[i].lock().unwrap() = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("task completed"))
            .collect()
    }

    /// Split `0..len` into contiguous chunks (at least `min_chunk` items
    /// each, roughly `2 × workers` chunks total) and apply `f` to each
    /// range concurrently, gathering chunk results in range order.
    /// The chunk decomposition is a pure function of `(len, workers,
    /// min_chunk)`, so output order is deterministic.
    pub fn map_chunks<R, F>(&self, len: usize, min_chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(std::ops::Range<usize>) -> R + Sync,
    {
        let ranges = chunk_ranges(len, self.workers, min_chunk);
        stats::note_chunks(ranges.len() as u64);
        self.map(ranges, |_, r| f(r))
    }

    /// Execute boxed tasks across the pool with panic propagation. The
    /// submitting thread's [`wow_obs::TraceContext`] is captured here and
    /// installed in every worker, so spans recorded inside tasks parent to
    /// the span that scattered the work — a fresh OS thread has no other
    /// way to learn which request it is serving.
    fn run_tasks(&self, tasks: Vec<Task<'_>>) {
        let n = tasks.len();
        stats::note_tasks(n as u64);
        if n == 0 {
            return;
        }
        if self.workers == 1 || n == 1 {
            // Inline on the submitting thread: the context is already
            // installed there, making a size-1 pool bit-for-bit serial.
            for t in tasks {
                t();
            }
            return;
        }
        let ctx = wow_obs::current_context();
        let slots: Vec<Mutex<Option<Task<'_>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let next = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let panic_box: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let nthreads = self.workers.min(n);
        std::thread::scope(|s| {
            for _ in 0..nthreads {
                s.spawn(|| {
                    let _trace = wow_obs::install_context(ctx);
                    loop {
                        if poisoned.load(Ordering::Acquire) {
                            return;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return;
                        }
                        let task = slots[i]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .take()
                            .expect("each task runs once");
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                            poisoned.store(true, Ordering::Release);
                            let mut slot = panic_box.lock().unwrap_or_else(|e| e.into_inner());
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            return;
                        }
                    }
                });
            }
        });
        if let Some(payload) = panic_box.into_inner().unwrap_or_else(|e| e.into_inner()) {
            resume_unwind(payload);
        }
    }
}

type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Task collector handed to the closure of [`Pool::scope`].
pub struct Scope<'env> {
    tasks: Vec<Task<'env>>,
}

impl<'env> Scope<'env> {
    /// Queue a task for the scope. Tasks may run on any worker thread in
    /// any order; with a single-worker pool they run in spawn order.
    pub fn spawn<F>(&mut self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.tasks.push(Box::new(f));
    }
}

/// Contiguous chunk decomposition of `0..len`: aims for `2 × workers`
/// chunks so faster workers can steal remaining ranges, but never splits
/// below `min_chunk` items per chunk.
pub fn chunk_ranges(len: usize, workers: usize, min_chunk: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    let target = (workers.max(1) * 2).min(len.div_ceil(min_chunk)).max(1);
    let chunk = len.div_ceil(target);
    let mut out = Vec::with_capacity(target);
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_order() {
        for workers in [1, 2, 4, 7] {
            let pool = Pool::new(workers);
            let items: Vec<usize> = (0..101).collect();
            let out = pool.map(items, |i, x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..101).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_chunks_covers_range_in_order() {
        for workers in [1, 3, 8] {
            let pool = Pool::new(workers);
            let parts = pool.map_chunks(1000, 10, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, (0..1000).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunk_ranges_respects_min_chunk() {
        let ranges = chunk_ranges(100, 8, 64);
        assert_eq!(ranges.len(), 2, "min_chunk bounds the split: {ranges:?}");
        assert!(ranges.iter().all(|r| r.len() >= 36));
        assert!(chunk_ranges(0, 4, 1).is_empty());
        let one = chunk_ranges(1, 8, 1);
        assert_eq!(one, vec![0..1]);
    }

    #[test]
    fn scope_runs_all_tasks() {
        let pool = Pool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let pool = Pool::serial();
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..10 {
                s.spawn({
                    let order = &order;
                    move || order.lock().unwrap().push(i)
                });
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn panics_propagate_to_caller() {
        for workers in [1, 4] {
            let pool = Pool::new(workers);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|s| {
                    s.spawn(|| {});
                    s.spawn(|| panic!("boom"));
                    s.spawn(|| {});
                });
            }));
            let payload = result.expect_err("panic must propagate");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
            assert_eq!(msg, "boom", "original payload survives (workers={workers})");
        }
    }

    #[test]
    fn resolve_workers_prefers_request() {
        // Note: WOW_WORKERS is unset in the test environment unless CI sets
        // it; when it is set, the env wins by design and this assertion
        // still holds for the n > 0 path only when unset.
        if std::env::var("WOW_WORKERS").is_err() {
            assert_eq!(resolve_workers(3), 3);
            assert!(resolve_workers(0) >= 1);
        }
        assert!(resolve_workers(0) >= 1);
    }

    #[test]
    fn workers_inherit_submitter_trace_context() {
        let ctx = wow_obs::TraceContext::mint();
        let _g = wow_obs::install_context(Some(ctx));
        let pool = Pool::new(4);
        let seen = Mutex::new(Vec::new());
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn({
                    let seen = &seen;
                    move || seen.lock().unwrap().push(wow_obs::current_context())
                });
            }
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 16);
        assert!(
            seen.iter()
                .all(|c| c.map(|c| c.trace_id) == Some(ctx.trace_id)),
            "every worker must observe the submitting thread's trace"
        );
    }

    #[test]
    fn stats_record_layer_decisions() {
        stats::reset();
        stats::decision(stats::Layer::Scan, true);
        stats::decision(stats::Layer::Scan, false);
        stats::decision(stats::Layer::JoinBuild, true);
        stats::decision(stats::Layer::Fanout, false);
        let snap = stats::snapshot();
        assert_eq!(snap.scan_parallel, 1);
        assert_eq!(snap.scan_serial, 1);
        assert_eq!(snap.join_parallel, 1);
        assert_eq!(snap.join_serial, 0);
        assert_eq!(snap.fanout_serial, 1);
    }
}
