//! Process-wide pool counters backing the `__wow_pool` system view and
//! the `par.*` metric gauges.
//!
//! Counters are plain relaxed atomics: they are monotone tallies read for
//! observability, never used for synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

static TASKS: AtomicU64 = AtomicU64::new(0);
static CHUNKS: AtomicU64 = AtomicU64::new(0);
static SCAN_PAR: AtomicU64 = AtomicU64::new(0);
static SCAN_SER: AtomicU64 = AtomicU64::new(0);
static JOIN_PAR: AtomicU64 = AtomicU64::new(0);
static JOIN_SER: AtomicU64 = AtomicU64::new(0);
static FANOUT_PAR: AtomicU64 = AtomicU64::new(0);
static FANOUT_SER: AtomicU64 = AtomicU64::new(0);

/// The subsystem making a parallel-vs-serial decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Base-table scan partitioning in the executor.
    Scan,
    /// Hash-join build-side partitioning in the executor.
    JoinBuild,
    /// Multi-window refresh fan-out in the world layer.
    Fanout,
}

/// Record that `layer` chose the parallel (`true`) or serial (`false`)
/// path for one operation.
pub fn decision(layer: Layer, parallel: bool) {
    let c = match (layer, parallel) {
        (Layer::Scan, true) => &SCAN_PAR,
        (Layer::Scan, false) => &SCAN_SER,
        (Layer::JoinBuild, true) => &JOIN_PAR,
        (Layer::JoinBuild, false) => &JOIN_SER,
        (Layer::Fanout, true) => &FANOUT_PAR,
        (Layer::Fanout, false) => &FANOUT_SER,
    };
    c.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_tasks(n: u64) {
    TASKS.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn note_chunks(n: u64) {
    CHUNKS.fetch_add(n, Ordering::Relaxed);
}

/// Point-in-time copy of every counter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Tasks executed through any [`crate::Pool`] (including inline serial
    /// runs, so serial and parallel configurations are comparable).
    pub tasks: u64,
    /// Chunk ranges produced by [`crate::Pool::map_chunks`].
    pub chunks: u64,
    /// Scan operations that took the parallel path.
    pub scan_parallel: u64,
    /// Scan operations that stayed serial (below threshold or 1 worker).
    pub scan_serial: u64,
    /// Hash-join builds that took the parallel path.
    pub join_parallel: u64,
    /// Hash-join builds that stayed serial.
    pub join_serial: u64,
    /// Refresh fan-outs that took the parallel path.
    pub fanout_parallel: u64,
    /// Refresh fan-outs that stayed serial.
    pub fanout_serial: u64,
}

impl PoolSnapshot {
    /// `(name, value)` pairs in stable order, for system-table export.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("tasks", self.tasks),
            ("chunks", self.chunks),
            ("scan_parallel", self.scan_parallel),
            ("scan_serial", self.scan_serial),
            ("join_parallel", self.join_parallel),
            ("join_serial", self.join_serial),
            ("fanout_parallel", self.fanout_parallel),
            ("fanout_serial", self.fanout_serial),
        ]
    }
}

/// Snapshot every counter.
pub fn snapshot() -> PoolSnapshot {
    PoolSnapshot {
        tasks: TASKS.load(Ordering::Relaxed),
        chunks: CHUNKS.load(Ordering::Relaxed),
        scan_parallel: SCAN_PAR.load(Ordering::Relaxed),
        scan_serial: SCAN_SER.load(Ordering::Relaxed),
        join_parallel: JOIN_PAR.load(Ordering::Relaxed),
        join_serial: JOIN_SER.load(Ordering::Relaxed),
        fanout_parallel: FANOUT_PAR.load(Ordering::Relaxed),
        fanout_serial: FANOUT_SER.load(Ordering::Relaxed),
    }
}

/// Zero every counter (tests and bench isolation).
pub fn reset() {
    for c in [
        &TASKS,
        &CHUNKS,
        &SCAN_PAR,
        &SCAN_SER,
        &JOIN_PAR,
        &JOIN_SER,
        &FANOUT_PAR,
        &FANOUT_SER,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}
