//! Optimizer correctness: randomly generated queries must produce exactly
//! the same multiset of rows through the optimizer as through a brute-force
//! reference evaluator (cross join + filter + project, no indexes, no join
//! reordering, no pushdown).

use proptest::prelude::*;
use wow_rel::db::Database;
use wow_rel::eval::{eval, eval_pred};
use wow_rel::expr::{BinOp, Expr};
use wow_rel::plan::{build_query_block, optimize};
use wow_rel::quel::ast::{RetrieveStmt, SortKey, Target};
use wow_rel::schema::Schema;
use wow_rel::tuple::Tuple;
use wow_rel::value::Value;

/// Build a small, fully indexed world with deterministic data.
fn world(rows_a: &[(i64, i64, &str)], rows_b: &[(i64, i64)]) -> Database {
    let mut db = Database::in_memory();
    db.run(
        "CREATE TABLE ta (id INT KEY, x INT, tag TEXT)
         CREATE TABLE tb (id INT KEY, x INT)
         CREATE INDEX ta_x ON ta (x)
         CREATE INDEX tb_x ON tb (x) USING HASH
         RANGE OF a IS ta
         RANGE OF b IS tb",
    )
    .unwrap();
    for (id, x, tag) in rows_a {
        db.insert(
            "ta",
            vec![Value::Int(*id), Value::Int(*x), Value::text(*tag)],
        )
        .unwrap();
    }
    for (id, x) in rows_b {
        db.insert("tb", vec![Value::Int(*id), Value::Int(*x)])
            .unwrap();
    }
    db
}

/// The reference evaluator: cross-join every used range, filter with the
/// whole WHERE, project the targets. No optimizer code involved.
fn brute_force(db: &mut Database, stmt: &RetrieveStmt, uses_b: bool) -> Vec<Tuple> {
    let ta = db.catalog().table("ta").unwrap().clone();
    let tb = db.catalog().table("tb").unwrap().clone();
    let schema_a = ta.schema.qualified("a");
    let schema_b = tb.schema.qualified("b");
    let rows_a: Vec<Tuple> = db
        .scan_table_raw(ta.id)
        .unwrap()
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    let rows_b: Vec<Tuple> = db
        .scan_table_raw(tb.id)
        .unwrap()
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    let (joined_schema, joined_rows): (Schema, Vec<Tuple>) = if uses_b {
        let schema = Schema::join(&schema_a, "l", &schema_b, "r");
        let mut rows = Vec::new();
        for a in &rows_a {
            for b in &rows_b {
                rows.push(a.concat(b));
            }
        }
        (schema, rows)
    } else {
        (schema_a, rows_a)
    };
    let pred = stmt
        .where_
        .clone()
        .map(|w| w.resolve(&joined_schema).unwrap());
    let targets: Vec<Expr> = stmt
        .targets
        .iter()
        .map(|t| match t {
            Target::Expr { expr, .. } => expr.clone().resolve(&joined_schema).unwrap(),
            Target::Agg { .. } => unreachable!("no aggregates in this generator"),
        })
        .collect();
    let mut out = Vec::new();
    for row in joined_rows {
        let keep = match &pred {
            Some(p) => eval_pred(p, &row).unwrap(),
            None => true,
        };
        if !keep {
            continue;
        }
        let vals: Vec<Value> = targets.iter().map(|t| eval(t, &row).unwrap()).collect();
        out.push(Tuple::new(vals));
    }
    out
}

fn canon(mut rows: Vec<Tuple>) -> Vec<String> {
    let mut out: Vec<String> = rows.drain(..).map(|t| t.to_string()).collect();
    out.sort();
    out
}

/// One conjunct over the generated schema.
#[derive(Debug, Clone)]
enum Conj {
    AXCmp(BinOp, i64),
    ATagEq(String),
    ATagLike(String),
    BXCmp(BinOp, i64),
    JoinAxBx,
    JoinAidBid,
    AXIsNullTest(bool),
}

impl Conj {
    fn to_expr(&self) -> Expr {
        let col = |n: &str| Box::new(Expr::ColumnRef(n.to_string()));
        let lit = |v: Value| Box::new(Expr::Literal(v));
        match self {
            Conj::AXCmp(op, v) => Expr::Binary {
                op: *op,
                left: col("a.x"),
                right: lit(Value::Int(*v)),
            },
            Conj::ATagEq(s) => Expr::Binary {
                op: BinOp::Eq,
                left: col("a.tag"),
                right: lit(Value::text(s.clone())),
            },
            Conj::ATagLike(p) => Expr::Like {
                expr: col("a.tag"),
                pattern: p.clone(),
            },
            Conj::BXCmp(op, v) => Expr::Binary {
                op: *op,
                left: col("b.x"),
                right: lit(Value::Int(*v)),
            },
            Conj::JoinAxBx => Expr::Binary {
                op: BinOp::Eq,
                left: col("a.x"),
                right: col("b.x"),
            },
            Conj::JoinAidBid => Expr::Binary {
                op: BinOp::Eq,
                left: col("a.id"),
                right: col("b.id"),
            },
            Conj::AXIsNullTest(negated) => {
                let test = Expr::IsNull(col("a.x"));
                if *negated {
                    Expr::Unary {
                        op: wow_rel::expr::UnOp::Not,
                        expr: Box::new(test),
                    }
                } else {
                    test
                }
            }
        }
    }

    fn uses_b(&self) -> bool {
        matches!(self, Conj::BXCmp(..) | Conj::JoinAxBx | Conj::JoinAidBid)
    }
}

fn conj_strategy() -> impl Strategy<Value = Conj> {
    let cmp = prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ];
    prop_oneof![
        (cmp.clone(), -2i64..8).prop_map(|(op, v)| Conj::AXCmp(op, v)),
        prop_oneof![Just("red"), Just("blue"), Just("green")]
            .prop_map(|s| Conj::ATagEq(s.to_string())),
        prop_oneof![Just("r*"), Just("*e"), Just("b?ue"), Just("*")]
            .prop_map(|p| Conj::ATagLike(p.to_string())),
        (cmp, -2i64..8).prop_map(|(op, v)| Conj::BXCmp(op, v)),
        Just(Conj::JoinAxBx),
        Just(Conj::JoinAidBid),
        any::<bool>().prop_map(Conj::AXIsNullTest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]
    #[test]
    fn optimized_plans_match_brute_force(
        conjs in proptest::collection::vec(conj_strategy(), 0..4),
        rows_a in proptest::collection::vec(
            ((-2i64..8), prop_oneof![Just("red"), Just("blue"), Just("green")]),
            0..12,
        ),
        rows_b in proptest::collection::vec(-2i64..8, 0..10),
        project_b in any::<bool>(),
    ) {
        let rows_a: Vec<(i64, i64, &str)> = rows_a
            .iter()
            .enumerate()
            .map(|(i, (x, tag))| (i as i64, *x, *tag))
            .collect();
        let rows_b: Vec<(i64, i64)> = rows_b
            .iter()
            .enumerate()
            .map(|(i, x)| (i as i64, *x))
            .collect();
        let mut db = world(&rows_a, &rows_b);

        // Build the statement.
        let uses_b_in_where = conjs.iter().any(Conj::uses_b);
        let uses_b = uses_b_in_where || project_b;
        let mut targets = vec![
            Target::Expr { name: None, expr: Expr::ColumnRef("a.id".into()) },
            Target::Expr { name: None, expr: Expr::ColumnRef("a.x".into()) },
            Target::Expr { name: None, expr: Expr::ColumnRef("a.tag".into()) },
        ];
        if project_b {
            targets.push(Target::Expr { name: None, expr: Expr::ColumnRef("b.x".into()) });
        }
        let where_ = if conjs.is_empty() {
            None
        } else {
            Some(Expr::conjunction(conjs.iter().map(Conj::to_expr).collect()))
        };
        let stmt = RetrieveStmt {
            unique: false,
            targets,
            where_,
            group_by: vec![],
            sort_by: vec![SortKey { column: "a.id".into(), ascending: true }],
            limit: None,
        };

        // The reference answer (ignore its row order; we compare multisets).
        let expect = canon(brute_force(&mut db, &stmt, uses_b));

        // The optimizer's answer.
        let block = build_query_block(&db, &stmt).unwrap();
        let plan = optimize(&db, &block).unwrap();
        let got = wow_rel::exec::execute(&mut db, &plan).unwrap();
        prop_assert_eq!(canon(got.tuples), expect, "plan:\n{}", plan.explain());
    }
}
