//! End-to-end tests of the QUEL pipeline: parse → plan → optimize → execute.

use wow_rel::db::Database;
use wow_rel::value::Value;

/// The classic suppliers-and-parts world, QUEL edition.
fn world() -> Database {
    let mut db = Database::in_memory();
    db.run(
        r#"
        CREATE TABLE supplier (sno INT KEY, sname TEXT NOT NULL, city TEXT)
        CREATE TABLE part (pno INT KEY, pname TEXT NOT NULL, color TEXT, weight FLOAT)
        CREATE TABLE shipment (sno INT NOT NULL, pno INT NOT NULL, qty INT)
        CREATE INDEX ship_sno ON shipment (sno) USING HASH
        CREATE INDEX ship_pno ON shipment (pno)
        RANGE OF s IS supplier
        RANGE OF p IS part
        RANGE OF sp IS shipment
    "#,
    )
    .unwrap();
    for (sno, sname, city) in [
        (1, "Smith", "London"),
        (2, "Jones", "Paris"),
        (3, "Blake", "Paris"),
        (4, "Clark", "London"),
        (5, "Adams", "Athens"),
    ] {
        db.run(&format!(
            r#"APPEND TO supplier (sno = {sno}, sname = "{sname}", city = "{city}")"#
        ))
        .unwrap();
    }
    for (pno, pname, color, weight) in [
        (1, "Nut", "Red", 12.0),
        (2, "Bolt", "Green", 17.0),
        (3, "Screw", "Blue", 17.0),
        (4, "Screw", "Red", 14.0),
        (5, "Cam", "Blue", 12.0),
        (6, "Cog", "Red", 19.0),
    ] {
        db.run(&format!(
            r#"APPEND TO part (pno = {pno}, pname = "{pname}", color = "{color}", weight = {weight})"#
        ))
        .unwrap();
    }
    for (sno, pno, qty) in [
        (1, 1, 300),
        (1, 2, 200),
        (1, 3, 400),
        (1, 4, 200),
        (1, 5, 100),
        (1, 6, 100),
        (2, 1, 300),
        (2, 2, 400),
        (3, 2, 200),
        (4, 2, 200),
        (4, 4, 300),
        (4, 5, 400),
    ] {
        db.run(&format!(
            "APPEND TO shipment (sno = {sno}, pno = {pno}, qty = {qty})"
        ))
        .unwrap();
    }
    db
}

#[test]
fn simple_projection_and_filter() {
    let mut db = world();
    let rows = db
        .run(r#"RETRIEVE (s.sname) WHERE s.city = "Paris" SORT BY s.sname"#)
        .unwrap();
    let names: Vec<String> = rows
        .tuples
        .iter()
        .map(|t| t.values[0].to_string())
        .collect();
    assert_eq!(names, vec!["Blake", "Jones"]);
}

#[test]
fn computed_targets() {
    let mut db = world();
    let rows = db
        .run("RETRIEVE (p.pname, grams = p.weight * 454.0) WHERE p.pno = 1")
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.schema.columns[1].name, "grams");
    assert_eq!(rows.tuples[0].values[1], Value::Float(12.0 * 454.0));
}

#[test]
fn two_way_join() {
    let mut db = world();
    let rows = db
        .run(r#"RETRIEVE (s.sname, sp.qty) WHERE s.sno = sp.sno AND sp.pno = 2 SORT BY s.sname"#)
        .unwrap();
    // Suppliers shipping part 2: Smith 200, Jones 400, Blake 200, Clark 200.
    assert_eq!(rows.len(), 4);
    let got: Vec<(String, String)> = rows
        .tuples
        .iter()
        .map(|t| (t.values[0].to_string(), t.values[1].to_string()))
        .collect();
    assert_eq!(got[0], ("Blake".to_string(), "200".to_string()));
    assert_eq!(got[3], ("Smith".to_string(), "200".to_string()));
}

#[test]
fn three_way_join() {
    let mut db = world();
    let rows = db
        .run(
            r#"RETRIEVE (s.sname, p.pname)
               WHERE s.sno = sp.sno AND sp.pno = p.pno AND p.color = "Red" AND s.city = "London"
               SORT BY s.sname, p.pname"#,
        )
        .unwrap();
    // London suppliers shipping red parts:
    // Smith ships Nut(1,red), Screw#4(red), Cog(6,red); Clark ships Screw#4(red).
    let got: Vec<(String, String)> = rows
        .tuples
        .iter()
        .map(|t| (t.values[0].to_string(), t.values[1].to_string()))
        .collect();
    assert_eq!(
        got,
        vec![
            ("Clark".into(), "Screw".into()),
            ("Smith".into(), "Cog".into()),
            ("Smith".into(), "Nut".into()),
            ("Smith".into(), "Screw".into()),
        ]
    );
}

#[test]
fn aggregates_grouped() {
    let mut db = world();
    let rows = db
        .run(
            "RETRIEVE (sp.sno, total = SUM(sp.qty), n = COUNT(*))
             GROUP BY sp.sno SORT BY sp.sno",
        )
        .unwrap();
    assert_eq!(rows.len(), 4);
    // Supplier 1 ships 1300 over 6 shipments.
    assert_eq!(rows.tuples[0].values[0], Value::Int(1));
    assert_eq!(rows.tuples[0].values[1], Value::Int(1300));
    assert_eq!(rows.tuples[0].values[2], Value::Int(6));
}

#[test]
fn global_aggregates() {
    let mut db = world();
    let rows = db
        .run(
            "RETRIEVE (n = COUNT(*), hi = MAX(p.weight), lo = MIN(p.weight), mean = AVG(p.weight))",
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.tuples[0].values[0], Value::Int(6));
    assert_eq!(rows.tuples[0].values[1], Value::Float(19.0));
    assert_eq!(rows.tuples[0].values[2], Value::Float(12.0));
}

#[test]
fn aggregate_over_join() {
    let mut db = world();
    let rows = db
        .run(
            r#"RETRIEVE (s.city, shipped = SUM(sp.qty))
               WHERE s.sno = sp.sno
               GROUP BY s.city SORT BY s.city"#,
        )
        .unwrap();
    // London = Smith(1300) + Clark(900) = 2200; Paris = Jones(700) + Blake(200) = 900.
    assert_eq!(rows.len(), 2);
    assert_eq!(rows.tuples[0].values[0], Value::text("London"));
    assert_eq!(rows.tuples[0].values[1], Value::Int(2200));
    assert_eq!(rows.tuples[1].values[1], Value::Int(900));
}

#[test]
fn like_patterns() {
    let mut db = world();
    let rows = db
        .run(r#"RETRIEVE (p.pname) WHERE p.pname LIKE "S*" SORT BY p.pno"#)
        .unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn sort_desc_and_limit() {
    let mut db = world();
    let rows = db
        .run("RETRIEVE (sp.qty) SORT BY sp.qty DESC LIMIT 3")
        .unwrap();
    let qtys: Vec<String> = rows
        .tuples
        .iter()
        .map(|t| t.values[0].to_string())
        .collect();
    assert_eq!(qtys, vec!["400", "400", "400"]);
    let rows = db
        .run("RETRIEVE (sp.qty) SORT BY sp.qty DESC LIMIT 3 OFFSET 3")
        .unwrap();
    let qtys: Vec<String> = rows
        .tuples
        .iter()
        .map(|t| t.values[0].to_string())
        .collect();
    assert_eq!(qtys, vec!["300", "300", "300"]);
}

#[test]
fn sort_by_non_projected_column() {
    let mut db = world();
    let rows = db
        .run("RETRIEVE (p.pname) SORT BY p.weight DESC, p.pno")
        .unwrap();
    assert_eq!(rows.tuples[0].values[0], Value::text("Cog")); // 19.0
    assert_eq!(rows.len(), 6);
}

#[test]
fn replace_updates_matching_rows() {
    let mut db = world();
    db.run(r#"REPLACE sp (qty = sp.qty + 1000) WHERE sp.sno = 3"#)
        .unwrap();
    let rows = db.run("RETRIEVE (sp.qty) WHERE sp.sno = 3").unwrap();
    assert_eq!(rows.tuples[0].values[0], Value::Int(1200));
    // Others untouched.
    let rows = db
        .run("RETRIEVE (total = SUM(sp.qty)) WHERE sp.sno = 1")
        .unwrap();
    assert_eq!(rows.tuples[0].values[0], Value::Int(1300));
}

#[test]
fn delete_removes_matching_rows() {
    let mut db = world();
    db.run("DELETE sp WHERE sp.qty < 300").unwrap();
    let rows = db.run("RETRIEVE (n = COUNT(*))").unwrap();
    // Range vars in COUNT(*) with no qualified ref: uses first declared
    // range... be explicit instead:
    let rows2 = db.run("RETRIEVE (n = COUNT(sp.sno))").unwrap();
    let _ = rows;
    assert_eq!(rows2.tuples[0].values[0], Value::Int(6));
}

#[test]
fn transactions_via_quel() {
    let mut db = world();
    db.run("BEGIN DELETE sp ABORT").unwrap();
    let rows = db.run("RETRIEVE (n = COUNT(sp.qty))").unwrap();
    assert_eq!(rows.tuples[0].values[0], Value::Int(12));
    db.run("BEGIN DELETE sp WHERE sp.sno = 1 COMMIT").unwrap();
    let rows = db.run("RETRIEVE (n = COUNT(sp.qty))").unwrap();
    assert_eq!(rows.tuples[0].values[0], Value::Int(6));
}

#[test]
fn explain_shows_access_paths() {
    let mut db = world();
    let rows = db
        .run("EXPLAIN RETRIEVE (sp.qty) WHERE sp.sno = 1")
        .unwrap();
    let text: String = rows
        .tuples
        .iter()
        .map(|t| t.values[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        text.contains("IndexScanEq") && text.contains("ship_sno"),
        "equality on an indexed column should probe the hash index:\n{text}"
    );
    // Join plans use hash join on the equi edge.
    let rows = db
        .run("EXPLAIN RETRIEVE (s.sname, sp.qty) WHERE s.sno = sp.sno")
        .unwrap();
    let text: String = rows
        .tuples
        .iter()
        .map(|t| t.values[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("HashJoin"), "{text}");
}

#[test]
fn explain_analyze_annotates_actual_rows() {
    let mut db = world();
    let rows = db
        .run("EXPLAIN ANALYZE RETRIEVE (sp.qty) WHERE sp.sno = 1")
        .unwrap();
    let text: String = rows
        .tuples
        .iter()
        .map(|t| t.values[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    // The query itself returns 6 shipments for supplier 1; the root
    // operator's annotation must carry that actual count.
    assert!(
        text.lines().next().unwrap().contains("rows=6"),
        "root annotation should show actual rows:\n{text}"
    );
    for line in text.lines() {
        assert!(
            line.contains("(actual") && line.contains("batches=") && line.contains("time="),
            "every plan line gets an actual-stats annotation:\n{text}"
        );
    }
}

#[test]
fn index_range_access_path_is_chosen_when_selective() {
    let mut db = Database::in_memory();
    db.run("CREATE TABLE nums (n INT KEY, label TEXT)").unwrap();
    for i in 0..2000 {
        db.run(&format!(r#"APPEND TO nums (n = {i}, label = "x{i}")"#))
            .unwrap();
    }
    db.run("RANGE OF v IS nums").unwrap();
    let rows = db
        .run("EXPLAIN RETRIEVE (v.label) WHERE v.n >= 10 AND v.n < 15")
        .unwrap();
    let text: String = rows
        .tuples
        .iter()
        .map(|t| t.values[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("IndexRange"), "{text}");
    let rows = db
        .run("RETRIEVE (v.label) WHERE v.n >= 10 AND v.n < 15 SORT BY v.n")
        .unwrap();
    assert_eq!(rows.len(), 5);
    assert_eq!(rows.tuples[0].values[0], Value::text("x10"));
}

#[test]
fn date_columns_round_trip() {
    let mut db = Database::in_memory();
    db.run("CREATE TABLE ev (name TEXT KEY, day DATE)").unwrap();
    db.run(r#"APPEND TO ev (name = "sigmod83", day = "1983-05-23")"#)
        .unwrap();
    db.run(r#"APPEND TO ev (name = "moonshot", day = DATE "1969-07-20")"#)
        .unwrap();
    db.run("RANGE OF e IS ev").unwrap();
    let rows = db
        .run(r#"RETRIEVE (e.name) WHERE e.day > DATE "1980-01-01""#)
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.tuples[0].values[0], Value::text("sigmod83"));
}

#[test]
fn errors_are_reported_not_panicked() {
    let mut db = world();
    assert!(db.run("RETRIEVE (s.bogus)").is_err());
    assert!(db.run("RETRIEVE (z.x)").is_err());
    assert!(db
        .run(r#"APPEND TO supplier (sno = 1, sname = "dup")"#)
        .is_err());
    assert!(db.run("APPEND TO nosuch (x = 1)").is_err());
    assert!(db.run("RETRIEVE (").is_err());
    assert!(db.run("RETRIEVE (x = 1 / 0)").is_err());
}

#[test]
fn self_join_with_two_range_vars() {
    let mut db = world();
    db.run("RANGE OF s2 IS supplier").unwrap();
    // Pairs of distinct suppliers in the same city.
    let rows = db
        .run(
            "RETRIEVE (s.sname, s2.sname)
             WHERE s.city = s2.city AND s.sno < s2.sno
             SORT BY s.sno",
        )
        .unwrap();
    let got: Vec<(String, String)> = rows
        .tuples
        .iter()
        .map(|t| (t.values[0].to_string(), t.values[1].to_string()))
        .collect();
    assert_eq!(
        got,
        vec![
            ("Smith".into(), "Clark".into()),
            ("Jones".into(), "Blake".into()),
        ]
    );
}

#[test]
fn analyze_improves_estimates_without_changing_answers() {
    let mut db = world();
    let before = db.run("RETRIEVE (sp.qty) WHERE sp.sno = 1").unwrap();
    db.run("ANALYZE shipment").unwrap();
    let after = db.run("RETRIEVE (sp.qty) WHERE sp.sno = 1").unwrap();
    assert_eq!(before.len(), after.len());
}

#[test]
fn retrieve_unique_deduplicates() {
    let mut db = world();
    let rows = db.run("RETRIEVE (s.city) SORT BY s.city").unwrap();
    assert_eq!(rows.len(), 5, "one row per supplier");
    let rows = db.run("RETRIEVE UNIQUE (s.city) SORT BY s.city").unwrap();
    let cities: Vec<String> = rows
        .tuples
        .iter()
        .map(|t| t.values[0].to_string())
        .collect();
    assert_eq!(cities, vec!["Athens", "London", "Paris"]);
    // UNIQUE over a join.
    let rows = db
        .run("RETRIEVE UNIQUE (s.city) WHERE s.sno = sp.sno SORT BY s.city")
        .unwrap();
    assert_eq!(rows.len(), 2, "only London+Paris suppliers ship anything");
    // EXPLAIN shows the Distinct operator.
    let plan = db.run("EXPLAIN RETRIEVE UNIQUE (s.city)").unwrap();
    let text: String = plan
        .tuples
        .iter()
        .map(|t| t.values[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("Distinct"), "{text}");
}

#[test]
fn dot_all_expands_to_every_column() {
    let mut db = world();
    let rows = db.run("RETRIEVE (p.all) WHERE p.pno = 1").unwrap();
    assert_eq!(rows.schema.len(), 4, "pno, pname, color, weight");
    assert_eq!(rows.schema.columns[0].name, "p.pno");
    assert_eq!(rows.tuples[0].values[1], Value::text("Nut"));
    // Mixed with explicit targets and across a join.
    let rows = db
        .run("RETRIEVE (s.sname, sp.all) WHERE s.sno = sp.sno AND sp.qty = 400 SORT BY s.sname")
        .unwrap();
    assert_eq!(rows.schema.len(), 4, "sname + (sno, pno, qty)");
    assert_eq!(
        rows.len(),
        3,
        "Smith, Jones and Clark each ship a 400-qty lot"
    );
}
