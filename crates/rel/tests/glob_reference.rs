//! The iterative glob matcher vs an obviously-correct recursive reference,
//! plus parser round-trip sanity over generated literals.

use proptest::prelude::*;
use wow_rel::expr::glob_match;

/// The slow-but-obvious reference: straight recursion on chars.
fn reference(p: &[char], t: &[char]) -> bool {
    match (p.first(), t.first()) {
        (None, None) => true,
        (None, Some(_)) => false,
        (Some('*'), _) => {
            // Either the star eats one char, or it is done.
            (!t.is_empty() && reference(p, &t[1..])) || reference(&p[1..], t)
        }
        (Some('?'), Some(_)) => reference(&p[1..], &t[1..]),
        (Some(pc), Some(tc)) => *pc == *tc && reference(&p[1..], &t[1..]),
        (Some(_), None) => false,
    }
}

fn pattern_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            3 => prop_oneof![Just('a'), Just('b'), Just('c')],
            1 => Just('*'),
            1 => Just('?'),
        ],
        0..8,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof![Just('a'), Just('b'), Just('c')], 0..10)
        .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]
    #[test]
    fn matches_recursive_reference(pattern in pattern_strategy(), text in text_strategy()) {
        let p: Vec<char> = pattern.chars().collect();
        let t: Vec<char> = text.chars().collect();
        prop_assert_eq!(
            glob_match(&pattern, &text),
            reference(&p, &t),
            "pattern={:?} text={:?}", pattern, text
        );
    }
}

#[test]
fn unicode_values_survive_the_whole_pipeline() {
    // Strings with multibyte characters flow through lexer → storage →
    // index keys → LIKE matching without corruption.
    let mut db = wow_rel::db::Database::in_memory();
    db.run("CREATE TABLE t (name TEXT KEY, note TEXT) RANGE OF x IS t")
        .unwrap();
    for (name, note) in [
        ("café", "crème brûlée"),
        ("naïve", "ñandú"),
        ("日本語", "テスト"),
        ("plain", "ascii"),
    ] {
        db.run(&format!(
            r#"APPEND TO t (name = "{name}", note = "{note}")"#
        ))
        .unwrap();
    }
    let rows = db
        .run(r#"RETRIEVE (x.note) WHERE x.name = "café""#)
        .unwrap();
    assert_eq!(rows.tuples[0].values[0].to_string(), "crème brûlée");
    let rows = db
        .run(r#"RETRIEVE (x.name) WHERE x.name LIKE "caf?""#)
        .unwrap();
    assert_eq!(rows.len(), 1, "? matches one scalar, not one byte");
    let rows = db
        .run(r#"RETRIEVE (x.name) WHERE x.name LIKE "日*""#)
        .unwrap();
    assert_eq!(rows.len(), 1);
    // Unique index on multibyte keys enforces correctly.
    assert!(db
        .run(r#"APPEND TO t (name = "café", note = "dup")"#)
        .is_err());
    // Sorting by text orders by scalar values.
    let rows = db.run("RETRIEVE (x.name) SORT BY x.name").unwrap();
    assert_eq!(rows.len(), 4);
}
