//! Parallel-executor equivalence: for any worker count and any input
//! size (hence any chunking), the parallel scan and the parallel
//! hash-join build must produce output row-for-row identical to the
//! serial path — same rows, same order, same counters.
//!
//! Two property suites, 300 cases each:
//!
//! 1. `parallel_scan_matches_serial_any_size` drives
//!    [`wow_rel::exec::par::parallel_scan`] directly on freshly built
//!    tables of arbitrary size (including empty and sub-page), so every
//!    chunking edge case — zero chunks, one short chunk, more workers
//!    than pages — is exercised.
//! 2. `parallel_query_matches_serial` runs whole plans (scan + filter,
//!    optionally a 5 000-row self-join whose build side crosses
//!    `PAR_JOIN_BUILD_MIN_ROWS`) against a shared base table large
//!    enough to take the parallel path, comparing a workers=1 replica
//!    with a workers=N replica tuple-for-tuple and counter-for-counter.

use proptest::prelude::*;
use std::cell::RefCell;
use wow_rel::db::Database;
use wow_rel::exec::par;
use wow_rel::expr::{BinOp, Expr};
use wow_rel::plan::{build_query_block, optimize};
use wow_rel::quel::ast::{RetrieveStmt, SortKey, Target};
use wow_rel::value::Value;

/// Rows in the shared base table — above both parallel thresholds.
const BASE_ROWS: i64 = 5_000;

thread_local! {
    /// The big base table is expensive to populate, so it is built once
    /// per test thread; each case runs against read replicas of it.
    static BASE: RefCell<Option<Database>> = const { RefCell::new(None) };
}

fn with_base<R>(f: impl FnOnce(&Database) -> R) -> R {
    BASE.with(|cell| {
        let mut slot = cell.borrow_mut();
        let db = slot.get_or_insert_with(build_base);
        f(db)
    })
}

fn build_base() -> Database {
    let mut db = Database::in_memory();
    db.run(
        "CREATE TABLE big (id INT KEY, grp INT, val TEXT)
         RANGE OF a IS big
         RANGE OF b IS big",
    )
    .unwrap();
    for i in 0..BASE_ROWS {
        db.insert(
            "big",
            vec![
                Value::Int(i),
                Value::Int(i % 53),
                Value::Text(format!("v{:02}", i % 17)),
            ],
        )
        .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn parallel_scan_matches_serial_any_size(
        rows in 0usize..600,
        workers in 1usize..9,
        bound in prop_oneof![Just(None), (0i64..700).prop_map(Some)],
    ) {
        let mut db = Database::in_memory();
        db.set_workers(workers);
        db.run("CREATE TABLE t (id INT KEY, grp INT)").unwrap();
        for i in 0..rows {
            db.insert("t", vec![Value::Int(i as i64), Value::Int(i as i64 % 7)])
                .unwrap();
        }
        let t = db.catalog().table("t").unwrap().id;
        let pred = bound.map(|b| Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(Expr::Column(0)),
            right: Box::new(Expr::Literal(Value::Int(b))),
        });

        db.reset_counters();
        let par_rows = par::parallel_scan(&mut db, t, pred.as_ref()).unwrap();
        let par_scanned = db.counters().rows_scanned;

        db.reset_counters();
        let serial: Vec<_> = db
            .scan_table_raw(t)
            .unwrap()
            .into_iter()
            .map(|(_, tup)| tup)
            .filter(|tup| match (bound, &tup.values[0]) {
                (Some(b), Value::Int(id)) => *id < b,
                _ => true,
            })
            .collect();
        let serial_scanned = db.counters().rows_scanned;

        prop_assert_eq!(&par_rows, &serial, "rows differ at workers={}", workers);
        prop_assert_eq!(par_scanned, serial_scanned, "scan counters differ");
    }

    #[test]
    fn parallel_query_matches_serial(
        workers in 2usize..9,
        op in prop_oneof![
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
        ],
        bound in 0i64..60,
        join in any::<bool>(),
        sorted in any::<bool>(),
    ) {
        let filter = Expr::Binary {
            op,
            left: Box::new(Expr::ColumnRef("a.grp".into())),
            right: Box::new(Expr::Literal(Value::Int(bound))),
        };
        let (targets, where_) = if join {
            // Self-join on the 5 000-row table: the build side crosses
            // PAR_JOIN_BUILD_MIN_ROWS, so the hash build partitions.
            let join_pred = Expr::Binary {
                op: BinOp::Eq,
                left: Box::new(Expr::ColumnRef("a.id".into())),
                right: Box::new(Expr::ColumnRef("b.id".into())),
            };
            (
                vec![
                    Target::Expr { name: None, expr: Expr::ColumnRef("a.id".into()) },
                    Target::Expr { name: None, expr: Expr::ColumnRef("b.val".into()) },
                ],
                Some(Expr::conjunction(vec![filter, join_pred])),
            )
        } else {
            (
                vec![
                    Target::Expr { name: None, expr: Expr::ColumnRef("a.id".into()) },
                    Target::Expr { name: None, expr: Expr::ColumnRef("a.val".into()) },
                ],
                Some(filter),
            )
        };
        let stmt = RetrieveStmt {
            unique: false,
            targets,
            where_,
            group_by: vec![],
            sort_by: if sorted {
                vec![SortKey { column: "a.id".into(), ascending: false }]
            } else {
                vec![]
            },
            limit: None,
        };

        let (serial, serial_counters, par_rows, par_counters) = with_base(|base| {
            let mut s = base.read_replica();
            s.set_workers(1);
            let mut p = base.read_replica();
            p.set_workers(workers);
            let block = build_query_block(&s, &stmt).unwrap();
            let plan = optimize(&s, &block).unwrap();
            let serial = wow_rel::exec::execute(&mut s, &plan).unwrap();
            let par_rows = wow_rel::exec::execute(&mut p, &plan).unwrap();
            (serial, s.counters(), par_rows, p.counters())
        });

        prop_assert_eq!(
            &serial.tuples,
            &par_rows.tuples,
            "plans disagree at workers={} join={}",
            workers,
            join
        );
        prop_assert_eq!(serial_counters.rows_scanned, par_counters.rows_scanned);
        prop_assert_eq!(serial_counters.join_rows, par_counters.join_rows);
    }
}
