//! EXPLAIN ANALYZE equivalence: profiling a plan must not change its
//! results, and the per-operator statistics must agree with what actually
//! flowed through the pipeline.
//!
//! The 500-case property suite mirrors `vec_equivalence`: arbitrary
//! conjunctions, projections, sort/distinct toggles, limits, and batch
//! sizes, run through `execute_analyzed` on both the row and vectorized
//! engines and compared against the materializing reference. Every case
//! additionally checks that the profile's root `rows_out` equals the
//! number of rows returned and that the annotated render covers every
//! plan node.

use proptest::prelude::*;
use wow_rel::db::Database;
use wow_rel::exec::{execute_analyzed, execute_materializing, PhysicalPlan};
use wow_rel::expr::{BinOp, Expr};
use wow_rel::plan::{build_query_block, optimize};
use wow_rel::quel::ast::{RetrieveStmt, SortKey, Target};
use wow_rel::value::Value;

fn small_world(rows: &[(i64, Option<i64>, &str)]) -> Database {
    let mut db = Database::in_memory();
    db.run("CREATE TABLE t (id INT KEY, x INT, tag TEXT) RANGE OF a IS t")
        .unwrap();
    for (id, x, tag) in rows {
        db.insert(
            "t",
            vec![
                Value::Int(*id),
                x.map(Value::Int).unwrap_or(Value::Null),
                Value::text(*tag),
            ],
        )
        .unwrap();
    }
    db
}

/// One WHERE conjunct over the small world's schema.
#[derive(Debug, Clone)]
enum Conj {
    /// `a.x op v`
    XCmp(BinOp, i64),
    /// `k / a.x > v` — errors on rows where `x = 0`, exercising the error
    /// path of the instrumented pipeline.
    DivCmp(i64, i64),
    /// `a.tag LIKE pattern`
    TagLike(String),
    /// `a.x IS NULL`
    XIsNull,
}

impl Conj {
    fn to_expr(&self) -> Expr {
        let x = || Box::new(Expr::ColumnRef("a.x".into()));
        let lit = |v: i64| Box::new(Expr::Literal(Value::Int(v)));
        match self {
            Conj::XCmp(op, v) => Expr::Binary {
                op: *op,
                left: x(),
                right: lit(*v),
            },
            Conj::DivCmp(k, v) => Expr::Binary {
                op: BinOp::Gt,
                left: Box::new(Expr::Binary {
                    op: BinOp::Div,
                    left: lit(*k),
                    right: x(),
                }),
                right: lit(*v),
            },
            Conj::TagLike(p) => Expr::Like {
                expr: Box::new(Expr::ColumnRef("a.tag".into())),
                pattern: p.clone(),
            },
            Conj::XIsNull => Expr::IsNull(x()),
        }
    }
}

fn cmp_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

fn conj_strategy() -> impl Strategy<Value = Conj> {
    prop_oneof![
        (cmp_strategy(), -2i64..8).prop_map(|(op, v)| Conj::XCmp(op, v)),
        ((-20i64..20), (-4i64..4)).prop_map(|(k, v)| Conj::DivCmp(k, v)),
        prop_oneof![Just("v*"), Just("*2"), Just("red")].prop_map(|p| Conj::TagLike(p.to_string())),
        Just(Conj::XIsNull),
    ]
}

fn stmt(
    conjs: &[Conj],
    project_expr: bool,
    unique: bool,
    sorted: bool,
    limit: Option<(usize, usize)>,
) -> RetrieveStmt {
    let mut targets = vec![
        Target::Expr {
            name: None,
            expr: Expr::ColumnRef("a.x".into()),
        },
        Target::Expr {
            name: None,
            expr: Expr::ColumnRef("a.tag".into()),
        },
    ];
    if project_expr {
        targets.push(Target::Expr {
            name: Some("xx".into()),
            expr: Expr::Binary {
                op: BinOp::Add,
                left: Box::new(Expr::ColumnRef("a.x".into())),
                right: Box::new(Expr::ColumnRef("a.id".into())),
            },
        });
    }
    RetrieveStmt {
        unique,
        targets,
        where_: if conjs.is_empty() {
            None
        } else {
            Some(Expr::conjunction(conjs.iter().map(Conj::to_expr).collect()))
        },
        group_by: vec![],
        sort_by: if sorted {
            vec![SortKey {
                column: "a.x".into(),
                ascending: true,
            }]
        } else {
            vec![]
        },
        limit,
    }
}

/// Run `plan` profiled under one engine configuration and check results
/// against the materializing reference plus the profile invariants.
fn assert_profiled_run_agrees(
    db: &Database,
    plan: &PhysicalPlan,
    vectorized: bool,
    batch: usize,
) -> Result<(), TestCaseError> {
    let mut ref_db = db.read_replica();
    let mut prof_db = db.read_replica();
    prof_db.set_vectorized(vectorized);
    prof_db.set_batch_size(batch);
    let reference = execute_materializing(&mut ref_db, plan);
    let analyzed = execute_analyzed(&mut prof_db, plan);
    match (reference, analyzed) {
        (Ok(r), Ok((rows, profile))) => {
            prop_assert_eq!(
                &r.tuples,
                &rows.tuples,
                "profiled run changed results (vectorized={}, batch={}); plan:\n{}",
                vectorized,
                batch,
                plan.explain()
            );
            prop_assert_eq!(
                profile.root().rows_out,
                rows.tuples.len() as u64,
                "root rows_out must equal rows returned; plan:\n{}",
                profile.render(plan)
            );
            prop_assert_eq!(profile.nodes.len(), plan.node_count());
            let rendered = profile.render(plan);
            prop_assert_eq!(rendered.lines().count(), plan.node_count());
            for line in rendered.lines() {
                prop_assert!(
                    line.contains("(actual") && line.contains("rows="),
                    "unannotated render line: {}",
                    line
                );
            }
        }
        (Err(_), Err(_)) => {}
        (reference, analyzed) => prop_assert!(
            false,
            "one run errored, the other did not: ref={:?} analyzed={:?}; plan:\n{}",
            reference.map(|r| r.tuples.len()),
            analyzed.map(|(r, _)| r.tuples.len()),
            plan.explain()
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn analyzed_rows_match_execution(
        conjs in proptest::collection::vec(conj_strategy(), 0..4),
        rows in proptest::collection::vec(
            (
                prop_oneof![4 => (-2i64..8).prop_map(Some), 1 => Just(None)],
                prop_oneof![Just("v00"), Just("v12"), Just("red"), Just("")],
            ),
            0..40,
        ),
        batch in 1usize..300,
        vectorized in any::<bool>(),
        project_expr in any::<bool>(),
        unique in any::<bool>(),
        sorted in any::<bool>(),
        limit in prop_oneof![3 => Just(None), 1 => ((0usize..4), (0usize..20)).prop_map(Some)],
    ) {
        let rows: Vec<(i64, Option<i64>, &str)> = rows
            .iter()
            .enumerate()
            .map(|(i, (x, tag))| (i as i64, *x, *tag))
            .collect();
        let db = small_world(&rows);
        let stmt = stmt(&conjs, project_expr, unique, sorted, limit);
        let block = build_query_block(&db, &stmt).unwrap();
        let plan = optimize(&db, &block).unwrap();
        assert_profiled_run_agrees(&db, &plan, vectorized, batch)?;
    }
}

/// Deterministic world for the targeted profile-shape tests below.
fn ten_rows() -> Database {
    small_world(
        &(0..10)
            .map(|i| (i, Some(i % 4), if i % 2 == 0 { "red" } else { "blue" }))
            .collect::<Vec<_>>(),
    )
}

#[test]
fn join_profile_derives_rows_in_from_both_children() {
    let mut db = ten_rows().read_replica();
    db.set_vectorized(false);
    let scan = |alias: &str| PhysicalPlan::SeqScan {
        table: "t".into(),
        alias: alias.into(),
        pred: None,
    };
    let plan = PhysicalPlan::NestedLoopJoin {
        left: Box::new(scan("a")),
        right: Box::new(scan("b")),
        pred: None,
    };
    let (rows, profile) = execute_analyzed(&mut db, &plan).unwrap();
    assert_eq!(rows.tuples.len(), 100, "10x10 cross product");
    assert_eq!(profile.nodes[0].rows_out, 100);
    assert_eq!(profile.nodes[1].rows_out, 10);
    assert_eq!(profile.nodes[2].rows_out, 10);
    let rendered = profile.render(&plan);
    assert!(
        rendered.lines().next().unwrap().contains("rows_in=20"),
        "join rows_in sums both children: {rendered}"
    );
}

#[test]
fn limit_pushdown_flushes_unexhausted_operators() {
    let mut db = ten_rows().read_replica();
    db.set_vectorized(false);
    let plan = PhysicalPlan::Limit {
        input: Box::new(PhysicalPlan::SeqScan {
            table: "t".into(),
            alias: "a".into(),
            pred: None,
        }),
        offset: 0,
        count: Some(3),
    };
    let (rows, profile) = execute_analyzed(&mut db, &plan).unwrap();
    assert_eq!(rows.tuples.len(), 3);
    assert_eq!(profile.nodes[0].rows_out, 3, "limit emits its quota");
    // The scan stops at page granularity — this table fits one page, so
    // it emitted all 10 rows in one block — but it was never pulled to
    // exhaustion (the limit stopped pulling), so its stats arrive via the
    // drop flush rather than the end-of-stream flush.
    assert_eq!(profile.nodes[1].rows_out, 10);
    assert_eq!(profile.nodes[1].batches, 1);
}

#[test]
fn vectorized_fused_chain_keeps_preorder_indices() {
    let mut db = ten_rows().read_replica();
    db.set_vectorized(true);
    db.set_batch_size(4);
    let schema = db.catalog().table("t").unwrap().schema.qualified("a");
    let pred = Expr::Binary {
        op: BinOp::Lt,
        left: Box::new(Expr::ColumnRef("a.x".into())),
        right: Box::new(Expr::Literal(Value::Int(2))),
    }
    .resolve(&schema)
    .unwrap();
    // Project(Filter(SeqScan)) fuses into the batch pipeline; indices must
    // still follow plan pre-order: Project=0, Filter=1, SeqScan=2.
    let plan = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: "t".into(),
                alias: "a".into(),
                pred: None,
            }),
            pred,
        }),
        exprs: vec![Expr::Column(0)],
        names: vec!["id".into()],
    };
    let (rows, profile) = execute_analyzed(&mut db, &plan).unwrap();
    // x cycles 0,1,2,3; x < 2 keeps x=0 (3 rows) and x=1 (3 rows).
    assert_eq!(rows.tuples.len(), 6);
    assert_eq!(profile.nodes[0].rows_out, 6, "project");
    assert_eq!(profile.nodes[1].rows_out, 6, "filter");
    assert_eq!(profile.nodes[2].rows_out, 10, "scan emits all rows");
    assert!(profile.nodes[2].batches >= 3, "batch size 4 over 10 rows");
}

#[test]
fn traced_run_mirrors_operator_tree() {
    let mut db = ten_rows().read_replica();
    db.set_vectorized(false);
    let schema = db.catalog().table("t").unwrap().schema.qualified("a");
    let pred = Expr::Binary {
        op: BinOp::Ge,
        left: Box::new(Expr::ColumnRef("a.x".into())),
        right: Box::new(Expr::Literal(Value::Int(1))),
    }
    .resolve(&schema)
    .unwrap();
    let plan = PhysicalPlan::Sort {
        input: Box::new(PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: "t".into(),
                alias: "a".into(),
                pred: None,
            }),
            pred,
        }),
        keys: vec![(1, true)],
    };
    let t = wow_obs::tracer();
    let ctx = wow_obs::TraceContext::mint();
    t.set_enabled(true);
    let result = {
        let _g = wow_obs::install_context(Some(ctx));
        execute_analyzed(&mut db, &plan)
    };
    let spans = t.trace_spans(ctx.trace_id);
    t.set_enabled(false);
    let (rows, profile) = result.unwrap();
    let execs: Vec<_> = spans
        .iter()
        .filter(|s| s.op == wow_obs::Op::ExecOp)
        .collect();
    assert_eq!(
        execs.len(),
        plan.node_count(),
        "one exec_op span per operator"
    );
    let query = spans
        .iter()
        .find(|s| s.op == wow_obs::Op::QueryExec)
        .expect("query_exec span recorded in the same trace");
    assert!(
        execs.iter().any(|s| s.parent_id == query.span_id),
        "the root operator parents to the query_exec span"
    );
    for e in &execs {
        assert!(
            spans.iter().any(|s| s.span_id == e.parent_id),
            "every exec_op parent resolves within the trace"
        );
    }
    // The span args carry rows_out, mirroring the profile.
    let root_rows = profile.root().rows_out;
    assert_eq!(rows.tuples.len() as u64, root_rows);
    assert!(execs.iter().any(|s| s.arg == root_rows));
}
