//! Vectorized-executor equivalence: for any predicate, projection, batch
//! size, and worker count, the vectorized batch pipeline must behave
//! exactly like the row-at-a-time reference interpreter — same rows, same
//! order, same `rows_scanned`/`join_rows`/`index_probes` counters, and an
//! error if and only if the reference errors.
//!
//! Two property suites:
//!
//! 1. `vectorized_matches_row_engine` (500 cases) runs whole plans over a
//!    small freshly built table with NULLs, arbitrary conjunctions
//!    (comparisons, arithmetic, division that can fail, LIKE, IS NULL,
//!    disjunctions), expression projections, sort/distinct toggles, and
//!    batch sizes down to a single row.
//! 2. `vectorized_matches_row_engine_parallel` (100 cases) runs filtered
//!    scans over a shared 5 000-row table with 2–8 workers, so the chunked
//!    parallel scan exercises the same compiled kernels.
//!
//! LIMIT plans compare rows but not counters: both engines stop early at
//! page granularity, but their batch sizes differ, so the number of rows
//! pulled before the limit is satisfied may legitimately diverge.

use proptest::prelude::*;
use std::cell::RefCell;
use wow_rel::db::Database;
use wow_rel::expr::{BinOp, Expr};
use wow_rel::plan::{build_query_block, optimize};
use wow_rel::quel::ast::{RetrieveStmt, SortKey, Target};
use wow_rel::value::Value;

fn small_world(rows: &[(i64, Option<i64>, &str)]) -> Database {
    let mut db = Database::in_memory();
    db.run("CREATE TABLE t (id INT KEY, x INT, tag TEXT) RANGE OF a IS t")
        .unwrap();
    for (id, x, tag) in rows {
        db.insert(
            "t",
            vec![
                Value::Int(*id),
                x.map(Value::Int).unwrap_or(Value::Null),
                Value::text(*tag),
            ],
        )
        .unwrap();
    }
    db
}

/// One WHERE conjunct over the small world's schema.
#[derive(Debug, Clone)]
enum Conj {
    /// `a.x op v`
    XCmp(BinOp, i64),
    /// `(a.x arith k) op v`
    XArithCmp(BinOp, i64, BinOp, i64),
    /// `k / a.x > v` — errors on rows where `x = 0`, so the error paths of
    /// both engines (and the AND-narrowing of the vectorized one) line up.
    DivCmp(i64, i64),
    /// `a.tag LIKE pattern`
    TagLike(String),
    /// `a.x IS NULL` (or its negation)
    XIsNull(bool),
    /// `lhs OR rhs`
    Or(Box<Conj>, Box<Conj>),
}

impl Conj {
    fn to_expr(&self) -> Expr {
        let x = || Box::new(Expr::ColumnRef("a.x".into()));
        let lit = |v: i64| Box::new(Expr::Literal(Value::Int(v)));
        match self {
            Conj::XCmp(op, v) => Expr::Binary {
                op: *op,
                left: x(),
                right: lit(*v),
            },
            Conj::XArithCmp(aop, k, cop, v) => Expr::Binary {
                op: *cop,
                left: Box::new(Expr::Binary {
                    op: *aop,
                    left: x(),
                    right: lit(*k),
                }),
                right: lit(*v),
            },
            Conj::DivCmp(k, v) => Expr::Binary {
                op: BinOp::Gt,
                left: Box::new(Expr::Binary {
                    op: BinOp::Div,
                    left: lit(*k),
                    right: x(),
                }),
                right: lit(*v),
            },
            Conj::TagLike(p) => Expr::Like {
                expr: Box::new(Expr::ColumnRef("a.tag".into())),
                pattern: p.clone(),
            },
            Conj::XIsNull(negated) => {
                let isnull = Expr::IsNull(x());
                if *negated {
                    Expr::Unary {
                        op: wow_rel::expr::UnOp::Not,
                        expr: Box::new(isnull),
                    }
                } else {
                    isnull
                }
            }
            Conj::Or(l, r) => Expr::Binary {
                op: BinOp::Or,
                left: Box::new(l.to_expr()),
                right: Box::new(r.to_expr()),
            },
        }
    }
}

fn cmp_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

fn conj_leaf() -> impl Strategy<Value = Conj> {
    let arith = prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Mod),
    ];
    prop_oneof![
        (cmp_strategy(), -2i64..8).prop_map(|(op, v)| Conj::XCmp(op, v)),
        (arith, -3i64..4, cmp_strategy(), -4i64..8)
            .prop_map(|(a, k, c, v)| Conj::XArithCmp(a, k, c, v)),
        ((-20i64..20), (-4i64..4)).prop_map(|(k, v)| Conj::DivCmp(k, v)),
        prop_oneof![Just("v*"), Just("*2"), Just("v?"), Just("red")]
            .prop_map(|p| Conj::TagLike(p.to_string())),
        any::<bool>().prop_map(Conj::XIsNull),
    ]
}

fn conj_strategy() -> impl Strategy<Value = Conj> {
    prop_oneof![
        3 => conj_leaf(),
        1 => (conj_leaf(), conj_leaf()).prop_map(|(l, r)| Conj::Or(Box::new(l), Box::new(r))),
    ]
}

fn stmt(
    conjs: &[Conj],
    project_expr: bool,
    unique: bool,
    sorted: bool,
    limit: Option<(usize, usize)>,
) -> RetrieveStmt {
    let mut targets = vec![
        Target::Expr {
            name: None,
            expr: Expr::ColumnRef("a.x".into()),
        },
        Target::Expr {
            name: None,
            expr: Expr::ColumnRef("a.tag".into()),
        },
    ];
    if project_expr {
        targets.push(Target::Expr {
            name: Some("xx".into()),
            expr: Expr::Binary {
                op: BinOp::Add,
                left: Box::new(Expr::ColumnRef("a.x".into())),
                right: Box::new(Expr::ColumnRef("a.id".into())),
            },
        });
    }
    RetrieveStmt {
        unique,
        targets,
        where_: if conjs.is_empty() {
            None
        } else {
            Some(Expr::conjunction(conjs.iter().map(Conj::to_expr).collect()))
        },
        group_by: vec![],
        sort_by: if sorted {
            vec![SortKey {
                column: "a.x".into(),
                ascending: true,
            }]
        } else {
            vec![]
        },
        limit,
    }
}

/// Run `plan` under both engines (replicas of `db`) and assert equivalence.
/// `compare_counters` is off for LIMIT plans (see module doc).
fn assert_engines_agree(
    db: &Database,
    plan: &wow_rel::exec::PhysicalPlan,
    batch: usize,
    workers: usize,
    compare_counters: bool,
) -> Result<(), TestCaseError> {
    let mut row_db = db.read_replica();
    row_db.set_workers(workers);
    row_db.set_vectorized(false);
    let mut vec_db = db.read_replica();
    vec_db.set_workers(workers);
    vec_db.set_vectorized(true);
    vec_db.set_batch_size(batch);
    let row_res = wow_rel::exec::execute(&mut row_db, plan);
    let vec_res = wow_rel::exec::execute(&mut vec_db, plan);
    match (row_res, vec_res) {
        (Ok(r), Ok(v)) => {
            prop_assert_eq!(
                &r.tuples,
                &v.tuples,
                "engines disagree (order matters) at batch={}; plan:\n{}",
                batch,
                plan.explain()
            );
            prop_assert_eq!(r.schema.len(), v.schema.len());
            if compare_counters {
                let rc = row_db.counters();
                let vc = vec_db.counters();
                prop_assert_eq!(rc.rows_scanned, vc.rows_scanned, "rows_scanned differ");
                prop_assert_eq!(rc.join_rows, vc.join_rows, "join_rows differ");
                prop_assert_eq!(rc.index_probes, vc.index_probes, "index_probes differ");
            }
        }
        (Err(_), Err(_)) => {
            // Same failure verdict; which row's error surfaces first may
            // differ between batch and row evaluation order.
        }
        (row, vec) => prop_assert!(
            false,
            "one engine errored, the other did not: row={:?} vec={:?}; plan:\n{}",
            row.map(|r| r.tuples.len()),
            vec.map(|r| r.tuples.len()),
            plan.explain()
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn vectorized_matches_row_engine(
        conjs in proptest::collection::vec(conj_strategy(), 0..4),
        rows in proptest::collection::vec(
            (
                prop_oneof![4 => (-2i64..8).prop_map(Some), 1 => Just(None)],
                prop_oneof![Just("v00"), Just("v12"), Just("red"), Just("")],
            ),
            0..40,
        ),
        batch in 1usize..300,
        project_expr in any::<bool>(),
        unique in any::<bool>(),
        sorted in any::<bool>(),
        limit in prop_oneof![3 => Just(None), 1 => ((0usize..4), (0usize..20)).prop_map(Some)],
    ) {
        let rows: Vec<(i64, Option<i64>, &str)> = rows
            .iter()
            .enumerate()
            .map(|(i, (x, tag))| (i as i64, *x, *tag))
            .collect();
        let db = small_world(&rows);
        let stmt = stmt(&conjs, project_expr, unique, sorted, limit);
        let block = build_query_block(&db, &stmt).unwrap();
        let plan = optimize(&db, &block).unwrap();
        assert_engines_agree(&db, &plan, batch, 1, limit.is_none())?;
    }
}

/// Rows in the shared parallel-path table — above `PAR_SCAN_MIN_ROWS`.
const BASE_ROWS: i64 = 5_000;

thread_local! {
    /// Built once per test thread; each case runs against read replicas.
    static BASE: RefCell<Option<Database>> = const { RefCell::new(None) };
}

fn build_base() -> Database {
    let mut db = Database::in_memory();
    db.run("CREATE TABLE big (id INT KEY, grp INT, val TEXT) RANGE OF a IS big")
        .unwrap();
    for i in 0..BASE_ROWS {
        db.insert(
            "big",
            vec![
                Value::Int(i),
                Value::Int(i % 53),
                Value::Text(format!("v{:02}", i % 17)),
            ],
        )
        .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn vectorized_matches_row_engine_parallel(
        workers in 2usize..9,
        batch in 1usize..2000,
        op in cmp_strategy(),
        bound in 0i64..60,
        sorted in any::<bool>(),
    ) {
        let stmt = RetrieveStmt {
            unique: false,
            targets: vec![
                Target::Expr { name: None, expr: Expr::ColumnRef("a.id".into()) },
                Target::Expr { name: None, expr: Expr::ColumnRef("a.val".into()) },
            ],
            where_: Some(Expr::Binary {
                op,
                left: Box::new(Expr::ColumnRef("a.grp".into())),
                right: Box::new(Expr::Literal(Value::Int(bound))),
            }),
            group_by: vec![],
            sort_by: if sorted {
                vec![SortKey { column: "a.id".into(), ascending: false }]
            } else {
                vec![]
            },
            limit: None,
        };
        BASE.with(|cell| {
            let mut slot = cell.borrow_mut();
            let db = slot.get_or_insert_with(build_base);
            let block = build_query_block(db, &stmt).unwrap();
            let plan = optimize(db, &block).unwrap();
            assert_engines_agree(db, &plan, batch, workers, true)
        })?;
    }
}
