//! Executor equivalence: the streaming executor must produce exactly the
//! same rows — same order, not just the same multiset — as the
//! materializing reference on randomly generated plans combining scans,
//! filters, projections, joins, sort, distinct, and limit/offset.

use proptest::prelude::*;
use wow_rel::db::Database;
use wow_rel::expr::{BinOp, Expr};
use wow_rel::plan::{build_query_block, optimize};
use wow_rel::quel::ast::{RetrieveStmt, SortKey, Target};
use wow_rel::value::Value;

/// A small, fully indexed world with deterministic data.
fn world(rows_a: &[(i64, i64, &str)], rows_b: &[(i64, i64)]) -> Database {
    let mut db = Database::in_memory();
    db.run(
        "CREATE TABLE ta (id INT KEY, x INT, tag TEXT)
         CREATE TABLE tb (id INT KEY, x INT)
         CREATE INDEX ta_x ON ta (x)
         CREATE INDEX tb_x ON tb (x) USING HASH
         RANGE OF a IS ta
         RANGE OF b IS tb",
    )
    .unwrap();
    for (id, x, tag) in rows_a {
        db.insert(
            "ta",
            vec![Value::Int(*id), Value::Int(*x), Value::text(*tag)],
        )
        .unwrap();
    }
    for (id, x) in rows_b {
        db.insert("tb", vec![Value::Int(*id), Value::Int(*x)])
            .unwrap();
    }
    db
}

/// One conjunct over the generated schema.
#[derive(Debug, Clone)]
enum Conj {
    AXCmp(BinOp, i64),
    ATagEq(String),
    BXCmp(BinOp, i64),
    JoinAxBx,
    JoinAidBid,
}

impl Conj {
    fn to_expr(&self) -> Expr {
        let col = |n: &str| Box::new(Expr::ColumnRef(n.to_string()));
        let lit = |v: Value| Box::new(Expr::Literal(v));
        match self {
            Conj::AXCmp(op, v) => Expr::Binary {
                op: *op,
                left: col("a.x"),
                right: lit(Value::Int(*v)),
            },
            Conj::ATagEq(s) => Expr::Binary {
                op: BinOp::Eq,
                left: col("a.tag"),
                right: lit(Value::text(s.clone())),
            },
            Conj::BXCmp(op, v) => Expr::Binary {
                op: *op,
                left: col("b.x"),
                right: lit(Value::Int(*v)),
            },
            Conj::JoinAxBx => Expr::Binary {
                op: BinOp::Eq,
                left: col("a.x"),
                right: col("b.x"),
            },
            Conj::JoinAidBid => Expr::Binary {
                op: BinOp::Eq,
                left: col("a.id"),
                right: col("b.id"),
            },
        }
    }
}

fn conj_strategy() -> impl Strategy<Value = Conj> {
    let cmp = prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ];
    prop_oneof![
        (cmp.clone(), -2i64..8).prop_map(|(op, v)| Conj::AXCmp(op, v)),
        prop_oneof![Just("red"), Just("blue"), Just("green")]
            .prop_map(|s| Conj::ATagEq(s.to_string())),
        (cmp, -2i64..8).prop_map(|(op, v)| Conj::BXCmp(op, v)),
        Just(Conj::JoinAxBx),
        Just(Conj::JoinAidBid),
    ]
}

fn limit_strategy() -> impl Strategy<Value = Option<(usize, usize)>> {
    prop_oneof![Just(None), ((0usize..6), (0usize..9)).prop_map(Some),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]
    #[test]
    fn streaming_matches_materializing(
        conjs in proptest::collection::vec(conj_strategy(), 0..4),
        rows_a in proptest::collection::vec(
            ((-2i64..8), prop_oneof![Just("red"), Just("blue"), Just("green")]),
            0..12,
        ),
        rows_b in proptest::collection::vec(-2i64..8, 0..10),
        project_b in any::<bool>(),
        unique in any::<bool>(),
        sorted in any::<bool>(),
        limit in limit_strategy(),
    ) {
        let rows_a: Vec<(i64, i64, &str)> = rows_a
            .iter()
            .enumerate()
            .map(|(i, (x, tag))| (i as i64, *x, *tag))
            .collect();
        let rows_b: Vec<(i64, i64)> = rows_b
            .iter()
            .enumerate()
            .map(|(i, x)| (i as i64, *x))
            .collect();
        let mut db = world(&rows_a, &rows_b);

        let mut targets = vec![
            Target::Expr { name: None, expr: Expr::ColumnRef("a.x".into()) },
            Target::Expr { name: None, expr: Expr::ColumnRef("a.tag".into()) },
        ];
        if project_b {
            targets.push(Target::Expr { name: None, expr: Expr::ColumnRef("b.x".into()) });
        }
        let where_ = if conjs.is_empty() {
            None
        } else {
            Some(Expr::conjunction(conjs.iter().map(Conj::to_expr).collect()))
        };
        let stmt = RetrieveStmt {
            unique,
            targets,
            where_,
            group_by: vec![],
            sort_by: if sorted {
                vec![SortKey { column: "a.x".into(), ascending: true }]
            } else {
                vec![]
            },
            limit,
        };

        let block = build_query_block(&db, &stmt).unwrap();
        let plan = optimize(&db, &block).unwrap();
        let streamed = wow_rel::exec::execute(&mut db, &plan).unwrap();
        let materialized = wow_rel::exec::execute_materializing(&mut db, &plan).unwrap();
        prop_assert_eq!(
            &streamed.tuples,
            &materialized.tuples,
            "executors disagree (order matters); plan:\n{}",
            plan.explain()
        );
        prop_assert_eq!(streamed.schema.len(), materialized.schema.len());
    }
}
