//! Crash-torture harness: hundreds of (workload, kill-point, fault-seed)
//! runs against a durable database with a fault-injecting WAL.
//!
//! Each run drives a seeded workload of explicit transactions over a
//! durable world whose WAL backend injects short writes, fsync failures,
//! and fsync timeouts on a deterministic schedule. At a seeded kill-point
//! the process "loses power": the WAL's crash image (durable bytes plus a
//! seeded torn prefix of the unsynced buffer) is written to disk as the
//! real log, the database is dropped, and `open_durable` runs recovery.
//!
//! The oracle is a **shadow twin**: the same logical operations applied to
//! plain in-memory maps. Recovery must reproduce the committed prefix
//! exactly — every transaction whose commit returned `Ok` is present,
//! every transaction that never committed is absent, and at most the one
//! transaction whose commit *errored* (an injected fsync fault makes
//! durability genuinely unknowable to the caller) may land on either
//! side. That is the same contract a real disk gives a real database.

use std::collections::BTreeMap;
use std::path::PathBuf;
use wow_rel::db::Database;
use wow_rel::durable::WAL_FILE;
use wow_rel::schema::{Column, Schema};
use wow_rel::types::DataType;
use wow_rel::value::Value;
use wow_storage::fault::{FaultPlan, FaultStats, SplitMix64};
use wow_storage::wal::Wal;

/// Multiset state of every user table: table → (key → salary list).
/// A list per key, not a scalar, so the comparison is exact even though
/// keys are unique here (cheap insurance against silent dup rows).
type State = BTreeMap<String, BTreeMap<String, Vec<i64>>>;

#[derive(Debug, Clone)]
enum Op {
    Insert {
        table: &'static str,
        key: String,
        salary: i64,
    },
    Update {
        table: &'static str,
        key: String,
        salary: i64,
    },
    Delete {
        table: &'static str,
        key: String,
    },
}

/// Why the workload stopped before its kill-point.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Stop {
    /// Reached the kill-point with no injected error surfacing.
    Clean,
    /// An error inside a transaction (op append, begin, abort): no commit
    /// record can exist, so the transaction is determinately absent.
    OpError,
    /// The commit itself errored: the commit record may or may not have
    /// reached the platter — indeterminate by design.
    CommitError,
    /// Creating the aux table errored mid-DDL: the table may or may not
    /// exist after recovery (DDL commits are single-record transactions).
    DdlError,
}

fn tmp_dir(run: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wow-torture-{}-{run}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn emp_schema() -> Schema {
    Schema::new(vec![
        Column::not_null("name", DataType::Text),
        Column::new("salary", DataType::Int),
    ])
}

fn apply_shadow(state: &mut State, op: &Op) {
    match op {
        Op::Insert { table, key, salary } => {
            state
                .entry(table.to_string())
                .or_default()
                .entry(key.clone())
                .or_default()
                .push(*salary);
        }
        Op::Update { table, key, salary } => {
            let rows = state.get_mut(*table).unwrap().get_mut(key).unwrap();
            rows.clear();
            rows.push(*salary);
        }
        Op::Delete { table, key } => {
            state.get_mut(*table).unwrap().remove(key);
        }
    }
}

fn apply_db(db: &mut Database, op: &Op) -> Result<(), wow_rel::RelError> {
    match op {
        Op::Insert { table, key, salary } => {
            db.insert(table, vec![Value::text(key.clone()), Value::Int(*salary)])?;
        }
        Op::Update { table, key, salary } => {
            let rids = db.index_lookup(&format!("pk_{table}"), &[Value::text(key.clone())])?;
            let rid = *rids.first().expect("driver only updates live keys");
            db.update_rid(
                table,
                rid,
                vec![Value::text(key.clone()), Value::Int(*salary)],
            )?;
        }
        Op::Delete { table, key } => {
            let rids = db.index_lookup(&format!("pk_{table}"), &[Value::text(key.clone())])?;
            let rid = *rids.first().expect("driver only deletes live keys");
            db.delete_rid(table, rid)?;
        }
    }
    Ok(())
}

/// Generate the next op for `table` given the driver's view of its rows.
fn gen_op(rng: &mut SplitMix64, table: &'static str, live: &State) -> Op {
    let keys: Vec<String> = live
        .get(table)
        .map(|m| m.keys().cloned().collect())
        .unwrap_or_default();
    let key = format!("k{}", rng.below(26));
    let exists = keys.contains(&key);
    let salary = rng.below(1000) as i64;
    match rng.below(10) {
        // Lean towards inserts so tables grow; flip kind when the rolled
        // key's existence doesn't fit it.
        0..=4 => {
            if exists {
                Op::Update { table, key, salary }
            } else {
                Op::Insert { table, key, salary }
            }
        }
        5..=7 => {
            if exists {
                Op::Update { table, key, salary }
            } else {
                Op::Insert { table, key, salary }
            }
        }
        _ => {
            if exists {
                Op::Delete { table, key }
            } else {
                Op::Insert { table, key, salary }
            }
        }
    }
}

/// Read the recovered database back into the shadow's state shape.
fn recovered_state(db: &mut Database, tables: &[&str]) -> State {
    let mut out = State::new();
    for t in tables {
        let Ok(info) = db.catalog().table(t) else {
            continue;
        };
        let id = info.id;
        let mut rows: BTreeMap<String, Vec<i64>> = BTreeMap::new();
        for (_, tuple) in db.scan_table_raw(id).unwrap() {
            let key = match &tuple.values[0] {
                Value::Text(s) => s.to_string(),
                other => panic!("bad key value {other:?}"),
            };
            let salary = match &tuple.values[1] {
                Value::Int(i) => *i,
                other => panic!("bad salary value {other:?}"),
            };
            rows.entry(key).or_default().push(salary);
        }
        out.insert(t.to_string(), rows);
    }
    out
}

struct RunParams {
    run_id: u64,
    seed: u64,
    kill_after_commits: usize,
    plan: FaultPlan,
    mid_checkpoint: bool,
    with_ddl: bool,
}

/// One full torture run. Returns the fault stats the WAL injected so the
/// suite can prove each fault class actually fired.
fn torture_run(p: RunParams) -> FaultStats {
    let dir = tmp_dir(p.run_id);
    let mut db = Database::open_durable(&dir).unwrap();
    db.set_checkpoint_every(0);

    // Prologue on the real file WAL: schema, then a checkpoint so the
    // snapshot carries the table and the log rotates to epoch 1. The
    // fault WAL swapped in below only ever sees workload records.
    db.create_table("emp", emp_schema(), &["name"]).unwrap();
    db.checkpoint_durable().unwrap();
    let real_wal = db.take_wal().unwrap();
    assert_eq!(real_wal.epoch(), 1);
    drop(real_wal);
    db.attach_wal(Wal::with_faults(p.plan));

    let mut rng = SplitMix64::new(p.seed ^ 0xD1CE_D1CE);
    let mut committed = State::new();
    committed.insert("emp".into(), BTreeMap::new());
    let mut live = committed.clone();
    let mut stop = Stop::Clean;
    let mut errored_txn: Vec<Op> = Vec::new();
    let mut aux_created = false;

    // Optional DDL through the fault WAL: a second table, logged as its
    // own committed transaction and replayed from the log on recovery.
    if p.with_ddl {
        match db.create_table("aux", emp_schema(), &["name"]) {
            Ok(_) => {
                aux_created = true;
                committed.insert("aux".into(), BTreeMap::new());
                live = committed.clone();
            }
            Err(_) => stop = Stop::DdlError,
        }
    }

    let mut commits = 0usize;
    let mut did_ckpt = false;
    'workload: while stop == Stop::Clean {
        if commits == p.kill_after_commits {
            // Maybe leave a transaction in flight as torn-tail material.
            if rng.below(10) < 6 {
                if db.begin().is_err() {
                    stop = Stop::OpError;
                    break 'workload;
                }
                for _ in 0..=rng.below(2) {
                    let table = if aux_created && rng.below(2) == 1 {
                        "aux"
                    } else {
                        "emp"
                    };
                    let op = gen_op(&mut rng, table, &live);
                    if apply_db(&mut db, &op).is_err() {
                        stop = Stop::OpError;
                        break 'workload;
                    }
                }
            }
            break 'workload;
        }
        if p.mid_checkpoint && !did_ckpt && commits >= p.kill_after_commits / 2 && commits > 0 {
            // A checkpoint mid-workload: snapshot absorbs the prefix, the
            // fault log resets, and the crash exercises snapshot + tail.
            db.checkpoint_durable().unwrap();
            did_ckpt = true;
        }
        if db.begin().is_err() {
            stop = Stop::OpError;
            break 'workload;
        }
        let nops = 1 + rng.below(3);
        let mut txn_ops: Vec<Op> = Vec::new();
        for _ in 0..nops {
            let table = if aux_created && rng.below(3) == 1 {
                "aux"
            } else {
                "emp"
            };
            let op = gen_op(&mut rng, table, &live);
            if apply_db(&mut db, &op).is_err() {
                stop = Stop::OpError;
                break 'workload;
            }
            apply_shadow(&mut live, &op);
            txn_ops.push(op);
        }
        if rng.below(10) == 0 {
            // Abort path: roll the driver back too. An error while writing
            // the abort record still means "no commit record exists".
            if db.abort().is_err() {
                stop = Stop::OpError;
                break 'workload;
            }
            live = committed.clone();
            continue;
        }
        match db.commit() {
            Ok(()) => {
                committed = live.clone();
                commits += 1;
            }
            Err(_) => {
                stop = Stop::CommitError;
                errored_txn = txn_ops;
                break 'workload;
            }
        }
    }

    // Power loss: persist the crash image as the on-disk log and drop the
    // process state. The snapshot epoch is 1 after the prologue
    // checkpoint and tracks the fault WAL's epoch once mid-run
    // checkpoints bump it, so the written image always matches it.
    let mut wal = db.take_wal().unwrap();
    let epoch = wal.epoch().max(1);
    let stats = wal.fault_stats().unwrap();
    let img = wal.crash_image().unwrap();
    drop(wal);
    drop(db);
    Wal::write_image(&dir.join(WAL_FILE), epoch, &img).unwrap();

    // Recovery must always succeed, torn tail or not.
    let mut db = Database::open_durable(&dir)
        .unwrap_or_else(|e| panic!("run {}: recovery failed: {e}", p.run_id));
    let got = recovered_state(&mut db, &["emp", "aux"]);

    // Build the acceptable post-recovery states.
    let mut candidates: Vec<(State, &str)> = vec![(committed.clone(), "committed prefix")];
    match stop {
        Stop::Clean | Stop::OpError => {}
        Stop::CommitError => {
            // The errored commit may have made it to the platter.
            let mut plus = committed.clone();
            for op in &errored_txn {
                apply_shadow(&mut plus, op);
            }
            candidates.push((plus, "committed prefix + indeterminate txn"));
        }
        Stop::DdlError => {
            // The DDL commit may have made it: aux exists but is empty.
            let mut plus = committed.clone();
            plus.insert("aux".into(), BTreeMap::new());
            candidates.push((plus, "committed prefix + indeterminate DDL"));
        }
    }
    let ok = candidates.iter().any(|(c, _)| *c == got);
    assert!(
        ok,
        "run {} (seed {}, kill {}, stop {:?}): recovered state matches no candidate.\n\
         got: {:?}\ncandidates: {:?}",
        p.run_id, p.seed, p.kill_after_commits, stop, got, candidates
    );

    // The recovered database is live: one more write must go through.
    db.insert("emp", vec![Value::text("post-recovery"), Value::Int(1)])
        .unwrap();

    let _ = std::fs::remove_dir_all(&dir);
    stats
}

#[test]
fn two_hundred_plus_crash_recoveries_match_the_shadow_twin() {
    let plans: &[FaultPlan] = &[
        FaultPlan::quiet(0),
        FaultPlan {
            seed: 0,
            short_write_per_mille: 35,
            fail_flush_per_mille: 0,
            late_flush_per_mille: 0,
        },
        FaultPlan {
            seed: 0,
            short_write_per_mille: 0,
            fail_flush_per_mille: 80,
            late_flush_per_mille: 0,
        },
        FaultPlan {
            seed: 0,
            short_write_per_mille: 0,
            fail_flush_per_mille: 0,
            late_flush_per_mille: 80,
        },
        FaultPlan {
            seed: 0,
            short_write_per_mille: 25,
            fail_flush_per_mille: 40,
            late_flush_per_mille: 40,
        },
    ];
    let kills = [0usize, 1, 3, 7, 12];
    let mut runs = 0u64;
    let mut total = FaultStats::default();
    for (pi, plan) in plans.iter().enumerate() {
        for (ki, kill) in kills.iter().enumerate() {
            for seed in 0..10u64 {
                let run_id = (pi as u64) * 1000 + (ki as u64) * 100 + seed;
                let mut plan = *plan;
                plan.seed = seed.wrapping_mul(0x9E37) ^ run_id;
                let stats = torture_run(RunParams {
                    run_id,
                    seed,
                    kill_after_commits: *kill,
                    plan,
                    mid_checkpoint: *kill >= 7 && seed % 3 == 0,
                    with_ddl: seed % 2 == 1,
                });
                total.short_writes += stats.short_writes;
                total.failed_flushes += stats.failed_flushes;
                total.late_flushes += stats.late_flushes;
                runs += 1;
            }
        }
    }
    assert!(runs >= 200, "matrix shrank below the torture floor: {runs}");
    // The matrix must actually have exercised every fault class — a
    // passing suite that injected nothing proves nothing.
    assert!(total.short_writes > 0, "no torn writes injected: {total:?}");
    assert!(
        total.failed_flushes > 0,
        "no fsync failures injected: {total:?}"
    );
    assert!(
        total.late_flushes > 0,
        "no fsync timeouts injected: {total:?}"
    );
}
