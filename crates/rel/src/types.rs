//! The data types of the relational engine.

use std::fmt;

/// Column data types.
///
/// The set matches what an early-1980s forms system exposed: integers,
/// floating point, character strings, booleans, and calendar dates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Variable-length UTF-8 text.
    Text,
    /// Boolean.
    Bool,
    /// Calendar date, stored as days since 1970-01-01 (may be negative).
    Date,
}

impl DataType {
    /// The keyword used in `CREATE TABLE` and shown in form field hints.
    pub fn keyword(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Date => "DATE",
        }
    }

    /// Parse a type keyword (case-insensitive).
    pub fn from_keyword(word: &str) -> Option<DataType> {
        match word.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" => Some(DataType::Int),
            "FLOAT" | "REAL" | "DOUBLE" => Some(DataType::Float),
            "TEXT" | "CHAR" | "VARCHAR" | "STRING" => Some(DataType::Text),
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            "DATE" => Some(DataType::Date),
            _ => None,
        }
    }

    /// Whether values of this type are numeric (arithmetic works on them).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Convert a `(year, month, day)` triple to days since 1970-01-01.
///
/// Valid for years 1..=9999 with proleptic-Gregorian rules; returns `None`
/// for out-of-range components.
pub fn ymd_to_days(year: i32, month: u32, day: u32) -> Option<i32> {
    if !(1..=9999).contains(&year) || !(1..=12).contains(&month) {
        return None;
    }
    if day < 1 || day > days_in_month(year, month) {
        return None;
    }
    // Civil-from-days algorithm (Howard Hinnant), inverted.
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (month as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Some((era * 146097 + doe - 719468) as i32)
}

/// Convert days since 1970-01-01 back to `(year, month, day)`.
pub fn days_to_ymd(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let year = if m <= 2 { y + 1 } else { y } as i32;
    (year, m, d)
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Format days-since-epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = days_to_ymd(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Parse `YYYY-MM-DD` into days-since-epoch.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    ymd_to_days(y, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for ty in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
            DataType::Date,
        ] {
            assert_eq!(DataType::from_keyword(ty.keyword()), Some(ty));
        }
        assert_eq!(DataType::from_keyword("integer"), Some(DataType::Int));
        assert_eq!(DataType::from_keyword("blob"), None);
    }

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(ymd_to_days(1970, 1, 1), Some(0));
        assert_eq!(days_to_ymd(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // SIGMOD '83 ran May 23-26, 1983 in San Jose.
        let d = ymd_to_days(1983, 5, 23).unwrap();
        assert_eq!(days_to_ymd(d), (1983, 5, 23));
        assert_eq!(format_date(d), "1983-05-23");
        assert_eq!(parse_date("1983-05-23"), Some(d));
    }

    #[test]
    fn leap_years_handled() {
        assert!(ymd_to_days(2000, 2, 29).is_some());
        assert!(ymd_to_days(1900, 2, 29).is_none());
        assert!(ymd_to_days(2024, 2, 29).is_some());
        assert!(ymd_to_days(2023, 2, 29).is_none());
    }

    #[test]
    fn round_trip_many_days() {
        for days in (-200_000..200_000).step_by(997) {
            let (y, m, d) = days_to_ymd(days);
            assert_eq!(ymd_to_days(y, m, d), Some(days), "days={days}");
        }
    }

    #[test]
    fn invalid_dates_rejected() {
        assert_eq!(parse_date("1983-13-01"), None);
        assert_eq!(parse_date("1983-00-01"), None);
        assert_eq!(parse_date("1983-01-32"), None);
        assert_eq!(parse_date("83-01-01-09"), None);
        assert_eq!(parse_date("gibberish"), None);
    }

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Text.is_numeric());
        assert!(!DataType::Date.is_numeric());
    }
}
