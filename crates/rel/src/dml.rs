//! Data manipulation: insert, update, delete — with index maintenance,
//! write-ahead logging, and undo support.
//!
//! Every operation follows the same discipline:
//!
//! 1. validate the row against the schema,
//! 2. check unique constraints via the indexes,
//! 3. append a WAL record (log *before* data),
//! 4. apply to the heap,
//! 5. maintain every index,
//! 6. record an undo entry if a transaction is open, and
//! 7. bump statistics.

use crate::db::{Database, UndoOp};
use crate::error::{RelError, RelResult};
use crate::tuple::Tuple;
use crate::value::Value;
use wow_storage::wal::LogRecord;
use wow_storage::Rid;

impl Database {
    /// Insert a row; returns its rid.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> RelResult<Rid> {
        let info = self.catalog.table(table)?.clone();
        let values = info.schema.validate_row(values)?;
        let tuple = Tuple::new(values);
        // Unique pre-checks (all unique indexes) before any mutation, so a
        // violation leaves no partial state behind.
        for idx_name in &info.indexes {
            let idx = self.catalog.index(idx_name)?.clone();
            if idx.unique {
                let key_vals: Vec<Value> = idx
                    .columns
                    .iter()
                    .map(|&i| tuple.values[i].clone())
                    .collect();
                if !self.index_lookup(&idx.name, &key_vals)?.is_empty() {
                    return Err(RelError::UniqueViolation(format!(
                        "{} = {:?}",
                        idx.name, key_vals
                    )));
                }
            }
        }
        let (txn, auto) = self.dml_txn();
        let encoded = tuple.encode();
        // WAL first. The rid is not known before the heap insert; we log
        // after computing it but before making the op visible to commit —
        // acceptable because our recovery replays logically by re-inserting.
        let heap = self
            .heaps
            .get_mut(&info.id)
            .ok_or_else(|| RelError::NoSuchTable(table.to_string()))?;
        let rid = heap.insert(&self.pool, &encoded)?;
        let logged = crate::db::wal_logged(&info.name);
        if logged {
            if let Some(wal) = &mut self.wal {
                wal.append(&LogRecord::Insert {
                    txn,
                    table: info.id,
                    rid,
                    bytes: encoded,
                })?;
            }
        }
        for idx_name in &info.indexes {
            let idx = self.catalog.index(idx_name)?.clone();
            self.index_insert(&idx, &tuple, rid)?;
        }
        if auto {
            if logged {
                if let Some(wal) = &mut self.wal {
                    wal.append(&LogRecord::Commit { txn })?;
                    wal.flush()?;
                }
                self.note_commit()?;
            }
        } else {
            self.txn.undo.push(UndoOp::Insert {
                table: info.id,
                rid,
            });
        }
        self.stats.on_insert(info.id, 1);
        self.counters.statements += 1;
        Ok(rid)
    }

    /// Update the row at `rid` to `values`. Returns `false` if the row no
    /// longer exists.
    pub fn update_rid(&mut self, table: &str, rid: Rid, values: Vec<Value>) -> RelResult<bool> {
        let info = self.catalog.table(table)?.clone();
        let values = info.schema.validate_row(values)?;
        let new = Tuple::new(values);
        let Some(old) = self.get_row(info.id, rid)? else {
            return Ok(false);
        };
        // Unique pre-checks, ignoring a hit that is the row itself.
        for idx_name in &info.indexes {
            let idx = self.catalog.index(idx_name)?.clone();
            if idx.unique {
                let key_vals: Vec<Value> =
                    idx.columns.iter().map(|&i| new.values[i].clone()).collect();
                let hits = self.index_lookup(&idx.name, &key_vals)?;
                if hits.iter().any(|&r| r != rid) {
                    return Err(RelError::UniqueViolation(format!(
                        "{} = {:?}",
                        idx.name, key_vals
                    )));
                }
            }
        }
        let (txn, auto) = self.dml_txn();
        let logged = crate::db::wal_logged(&info.name);
        if logged {
            if let Some(wal) = &mut self.wal {
                wal.append(&LogRecord::Update {
                    txn,
                    table: info.id,
                    rid,
                    old: old.encode(),
                    new: new.encode(),
                })?;
            }
        }
        {
            let heap = self.heaps.get_mut(&info.id).expect("heap exists");
            heap.update(&self.pool, rid, &new.encode())?;
        }
        for idx_name in &info.indexes {
            let idx = self.catalog.index(idx_name)?.clone();
            let old_key = Self::index_key(&idx, &old);
            let new_key = Self::index_key(&idx, &new);
            if old_key != new_key {
                self.index_delete(&idx, &old, rid)?;
                self.index_insert(&idx, &new, rid)?;
            }
        }
        if auto {
            if logged {
                if let Some(wal) = &mut self.wal {
                    wal.append(&LogRecord::Commit { txn })?;
                    wal.flush()?;
                }
                self.note_commit()?;
            }
        } else {
            self.txn.undo.push(UndoOp::Update {
                table: info.id,
                rid,
                old,
            });
        }
        self.counters.statements += 1;
        Ok(true)
    }

    /// Delete the row at `rid`. Returns `false` if it did not exist.
    pub fn delete_rid(&mut self, table: &str, rid: Rid) -> RelResult<bool> {
        let info = self.catalog.table(table)?.clone();
        let Some(old) = self.get_row(info.id, rid)? else {
            return Ok(false);
        };
        let (txn, auto) = self.dml_txn();
        let logged = crate::db::wal_logged(&info.name);
        if logged {
            if let Some(wal) = &mut self.wal {
                wal.append(&LogRecord::Delete {
                    txn,
                    table: info.id,
                    rid,
                    old: old.encode(),
                })?;
            }
        }
        for idx_name in &info.indexes {
            let idx = self.catalog.index(idx_name)?.clone();
            self.index_delete(&idx, &old, rid)?;
        }
        {
            let heap = self.heaps.get_mut(&info.id).expect("heap exists");
            heap.delete(&self.pool, rid)?;
        }
        if auto {
            if logged {
                if let Some(wal) = &mut self.wal {
                    wal.append(&LogRecord::Commit { txn })?;
                    wal.flush()?;
                }
                self.note_commit()?;
            }
        } else {
            self.txn.undo.push(UndoOp::Delete {
                table: info.id,
                rid,
                old,
            });
        }
        self.stats.on_delete(info.id, 1);
        self.counters.statements += 1;
        Ok(true)
    }

    /// Replay a WAL into this database. Committed DML is re-applied by rid
    /// hint with a content fallback, and committed DDL records recreate
    /// tables and indexes under their logged ids (see
    /// [`crate::durable`] for the full protocol). Call this *before*
    /// attaching a WAL, or every replayed operation is logged again.
    /// Returns the number of operations applied.
    pub fn replay_wal(&mut self, wal: &mut wow_storage::wal::Wal) -> RelResult<u64> {
        let records: Vec<LogRecord> = wal.read_all()?.into_iter().map(|(_, r)| r).collect();
        let report = self.apply_committed(&records)?;
        Ok(report.replayed_ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IndexKind;
    use crate::schema::{Column, Schema};
    use crate::types::DataType;

    fn db_with_emp() -> Database {
        let mut db = Database::in_memory();
        db.create_table(
            "emp",
            Schema::new(vec![
                Column::not_null("name", DataType::Text),
                Column::new("dept", DataType::Text),
                Column::new("salary", DataType::Int),
            ]),
            &["name"],
        )
        .unwrap();
        db
    }

    fn row(name: &str, dept: &str, salary: i64) -> Vec<Value> {
        vec![Value::text(name), Value::text(dept), Value::Int(salary)]
    }

    #[test]
    fn insert_and_read_back() {
        let mut db = db_with_emp();
        let rid = db.insert("emp", row("alice", "toy", 100)).unwrap();
        let info = db.catalog().table("emp").unwrap().clone();
        let t = db.get_row(info.id, rid).unwrap().unwrap();
        assert_eq!(t.values[0], Value::text("alice"));
        assert_eq!(db.row_count(info.id), 1);
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut db = db_with_emp();
        db.insert("emp", row("alice", "toy", 100)).unwrap();
        let err = db.insert("emp", row("alice", "shoe", 90)).unwrap_err();
        assert!(matches!(err, RelError::UniqueViolation(_)));
        // Failed insert left nothing behind.
        let info = db.catalog().table("emp").unwrap().clone();
        assert_eq!(db.row_count(info.id), 1);
        assert_eq!(db.scan_table_raw(info.id).unwrap().len(), 1);
    }

    #[test]
    fn update_maintains_indexes() {
        let mut db = db_with_emp();
        db.create_index("by_dept", "emp", "dept", IndexKind::Hash, false)
            .unwrap();
        let rid = db.insert("emp", row("alice", "toy", 100)).unwrap();
        db.insert("emp", row("bob", "toy", 90)).unwrap();
        assert_eq!(
            db.index_lookup("by_dept", &[Value::text("toy")])
                .unwrap()
                .len(),
            2
        );
        assert!(db
            .update_rid("emp", rid, row("alice", "shoe", 110))
            .unwrap());
        assert_eq!(
            db.index_lookup("by_dept", &[Value::text("toy")])
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            db.index_lookup("by_dept", &[Value::text("shoe")]).unwrap(),
            vec![rid]
        );
        // PK index follows the rename too.
        assert_eq!(
            db.index_lookup("pk_emp", &[Value::text("alice")]).unwrap(),
            vec![rid]
        );
    }

    #[test]
    fn update_to_conflicting_key_is_rejected() {
        let mut db = db_with_emp();
        db.insert("emp", row("alice", "toy", 100)).unwrap();
        let rid_bob = db.insert("emp", row("bob", "toy", 90)).unwrap();
        let err = db
            .update_rid("emp", rid_bob, row("alice", "toy", 90))
            .unwrap_err();
        assert!(matches!(err, RelError::UniqueViolation(_)));
        // Updating a row to its own key is fine.
        assert!(db
            .update_rid("emp", rid_bob, row("bob", "toy", 95))
            .unwrap());
    }

    #[test]
    fn delete_removes_row_and_index_entries() {
        let mut db = db_with_emp();
        let rid = db.insert("emp", row("alice", "toy", 100)).unwrap();
        assert!(db.delete_rid("emp", rid).unwrap());
        assert!(!db.delete_rid("emp", rid).unwrap());
        assert!(db
            .index_lookup("pk_emp", &[Value::text("alice")])
            .unwrap()
            .is_empty());
        let info = db.catalog().table("emp").unwrap().clone();
        assert_eq!(db.row_count(info.id), 0);
        // Key becomes insertable again.
        db.insert("emp", row("alice", "toy", 50)).unwrap();
    }

    #[test]
    fn abort_rolls_back_everything() {
        let mut db = db_with_emp();
        let keep = db.insert("emp", row("keep", "toy", 10)).unwrap();
        db.begin().unwrap();
        let rid = db.insert("emp", row("alice", "toy", 100)).unwrap();
        db.update_rid("emp", keep, row("keep", "shoe", 20)).unwrap();
        db.delete_rid("emp", keep).unwrap();
        db.abort().unwrap();
        // Insert rolled back.
        assert!(db
            .index_lookup("pk_emp", &[Value::text("alice")])
            .unwrap()
            .is_empty());
        let info = db.catalog().table("emp").unwrap().clone();
        assert!(db.get_row(info.id, rid).unwrap().is_none());
        // Delete + update rolled back: original row intact (possibly at a
        // new rid after delete-undo).
        let rows = db.scan_table_raw(info.id).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.values, row("keep", "toy", 10));
        assert_eq!(db.row_count(info.id), 1);
        // PK index points at the surviving row.
        assert_eq!(
            db.index_lookup("pk_emp", &[Value::text("keep")])
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn commit_keeps_changes() {
        let mut db = db_with_emp();
        db.begin().unwrap();
        db.insert("emp", row("alice", "toy", 100)).unwrap();
        db.commit().unwrap();
        let info = db.catalog().table("emp").unwrap().clone();
        assert_eq!(db.row_count(info.id), 1);
    }

    #[test]
    fn wal_replay_reconstructs_committed_state() {
        let mut db = db_with_emp();
        db.attach_wal(wow_storage::wal::Wal::in_memory());
        let a = db.insert("emp", row("alice", "toy", 100)).unwrap();
        db.insert("emp", row("bob", "shoe", 90)).unwrap();
        db.update_rid("emp", a, row("alice", "toy", 120)).unwrap();
        // An uncommitted transaction that must NOT survive.
        db.begin().unwrap();
        db.insert("emp", row("ghost", "toy", 1)).unwrap();
        let mut wal = db.take_wal().unwrap(); // "crash" without commit

        let mut fresh = db_with_emp();
        let applied = fresh.replay_wal(&mut wal).unwrap();
        assert_eq!(applied, 3);
        let info = fresh.catalog().table("emp").unwrap().clone();
        let mut rows: Vec<Vec<Value>> = fresh
            .scan_table_raw(info.id)
            .unwrap()
            .into_iter()
            .map(|(_, t)| t.values)
            .collect();
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], row("alice", "toy", 120));
        assert_eq!(rows[1], row("bob", "shoe", 90));
    }

    #[test]
    fn validation_failures_leave_no_trace() {
        let mut db = db_with_emp();
        assert!(db
            .insert("emp", vec![Value::Null, Value::Null, Value::Null])
            .is_err());
        assert!(db
            .insert("emp", vec![Value::Int(1), Value::Null, Value::Null])
            .is_err());
        let info = db.catalog().table("emp").unwrap().clone();
        assert_eq!(db.row_count(info.id), 0);
    }

    #[test]
    fn update_missing_rid_is_false() {
        let mut db = db_with_emp();
        let rid = db.insert("emp", row("a", "t", 1)).unwrap();
        db.delete_rid("emp", rid).unwrap();
        assert!(!db.update_rid("emp", rid, row("a", "t", 2)).unwrap());
    }
}
