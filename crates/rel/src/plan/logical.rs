//! The logical query representation: a single select-project-join block.

use crate::expr::Expr;
use crate::quel::ast::{SortKey, Target};

/// One scan required by the query: a range variable bound to a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanSpec {
    /// Range-variable alias (qualifies output column names).
    pub alias: String,
    /// Table name.
    pub table: String,
}

/// A normalized query block (the unit the optimizer works on).
///
/// All expressions still carry *named* column references; the optimizer
/// resolves them once operator positions are fixed.
#[derive(Debug, Clone, Default)]
pub struct QueryBlock {
    /// Drop duplicate output rows (`RETRIEVE UNIQUE`).
    pub unique: bool,
    /// The scans, in declaration order.
    pub scans: Vec<ScanSpec>,
    /// Top-level AND conjuncts of the WHERE clause.
    pub conjuncts: Vec<Expr>,
    /// Output targets, in output order.
    pub targets: Vec<Target>,
    /// Grouping column references (names).
    pub group_by: Vec<String>,
    /// Sort keys (by output or input column name).
    pub sort_by: Vec<SortKey>,
    /// `(offset, count)`.
    pub limit: Option<(usize, usize)>,
}

impl QueryBlock {
    /// Whether the block computes aggregates.
    pub fn has_aggregates(&self) -> bool {
        self.targets.iter().any(Target::is_agg)
    }
}
