//! Query planning: from parsed `RETRIEVE` statements to physical plans.
//!
//! The pipeline follows the System R shape the 1983 substrate would have
//! used:
//!
//! 1. [`planner`] normalizes a `RETRIEVE` into a [`logical::QueryBlock`] —
//!    the set of scans (one per range variable used), the WHERE conjuncts,
//!    and the output specification.
//! 2. [`optimizer`] classifies conjuncts (scan-local, join edge, residual),
//!    chooses access paths (sequential, index equality, index range),
//!    orders joins greedily by estimated cardinality, and emits a
//!    [`crate::exec::PhysicalPlan`].

pub mod logical;
pub mod optimizer;
pub mod planner;

pub use logical::QueryBlock;
pub use optimizer::optimize;
pub use planner::build_query_block;
