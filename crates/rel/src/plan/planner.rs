//! Normalizing a `RETRIEVE` statement into a [`QueryBlock`].

use super::logical::{QueryBlock, ScanSpec};
use crate::db::Database;
use crate::error::{RelError, RelResult};
use crate::expr::Expr;
use crate::quel::ast::{RetrieveStmt, Target};

/// Build the query block for a `RETRIEVE`, resolving range variables
/// against the database's persistent `RANGE OF` declarations.
///
/// The set of scans is the set of range variables actually *used* by the
/// statement (targets, WHERE, GROUP BY, SORT BY) — declaring ranges that a
/// given query does not touch must not drag their tables into the join.
pub fn build_query_block(db: &Database, stmt: &RetrieveStmt) -> RelResult<QueryBlock> {
    let mut used: Vec<String> = Vec::new();
    let mut note = |name: &str| {
        if let Some((var, _)) = name.split_once('.') {
            if !used.iter().any(|u| u == var) {
                used.push(var.to_string());
            }
        }
    };
    let mut names = Vec::new();
    for t in &stmt.targets {
        match t {
            Target::Expr { expr, .. } => expr.column_names(&mut names),
            Target::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.column_names(&mut names);
                }
            }
        }
    }
    if let Some(w) = &stmt.where_ {
        w.column_names(&mut names);
    }
    for n in &names {
        note(n);
    }
    for g in &stmt.group_by {
        note(g);
    }
    for s in &stmt.sort_by {
        note(&s.column);
    }
    // Bare (unqualified) references are allowed when exactly one range is in
    // play; if no qualified reference appeared at all, fall back to every
    // declared range — matching QUEL's "tuple variables in scope" reading.
    if used.is_empty() {
        for var in db.ranges().keys() {
            used.push(var.clone());
        }
        if used.is_empty() {
            return Err(RelError::NoSuchRange(
                "no RANGE OF declarations in scope".to_string(),
            ));
        }
        // Without qualified refs, joining every declared range is almost
        // certainly wrong; keep only the first and let resolution fail
        // loudly if the query meant something else.
        used.truncate(1);
    }
    let mut scans = Vec::with_capacity(used.len());
    for var in used {
        let table = db.range_table(&var)?.to_string();
        scans.push(ScanSpec { alias: var, table });
    }
    let conjuncts = match &stmt.where_ {
        Some(w) => w.clone().split_conjuncts(),
        None => Vec::new(),
    };
    // Expand `var.all` targets into one target per column of var's table.
    let mut targets = Vec::with_capacity(stmt.targets.len());
    for t in &stmt.targets {
        match t {
            Target::Expr {
                name: None,
                expr: Expr::ColumnRef(n),
            } if n.ends_with(".all") => {
                let var = &n[..n.len() - 4];
                let table = db.range_table(var)?;
                let info = db.catalog().table(table)?;
                for col in &info.schema.columns {
                    targets.push(Target::Expr {
                        name: None,
                        expr: Expr::ColumnRef(format!("{var}.{}", col.name)),
                    });
                }
            }
            other => targets.push(other.clone()),
        }
    }
    Ok(QueryBlock {
        unique: stmt.unique,
        scans,
        conjuncts,
        targets,
        group_by: stmt.group_by.clone(),
        sort_by: stmt.sort_by.clone(),
        limit: stmt.limit,
    })
}

/// Default output name for an expression target.
pub fn default_target_name(expr: &Expr) -> String {
    match expr {
        Expr::ColumnRef(n) => n.clone(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quel::parse_program;
    use crate::quel::Statement;
    use crate::schema::{Column, Schema};
    use crate::types::DataType;

    fn db() -> Database {
        let mut db = Database::in_memory();
        let schema = |names: &[&str]| {
            Schema::new(
                names
                    .iter()
                    .map(|n| Column::new(*n, DataType::Int))
                    .collect(),
            )
        };
        db.create_table("emp", schema(&["id", "dept_id", "salary"]), &[])
            .unwrap();
        db.create_table("dept", schema(&["id", "floor"]), &[])
            .unwrap();
        db.declare_range("e", "emp").unwrap();
        db.declare_range("d", "dept").unwrap();
        db
    }

    fn retrieve(src: &str) -> RetrieveStmt {
        match parse_program(src).unwrap().pop().unwrap() {
            Statement::Retrieve(r) => r,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn only_used_ranges_become_scans() {
        let db = db();
        let block = build_query_block(&db, &retrieve("RETRIEVE (e.id)")).unwrap();
        assert_eq!(block.scans.len(), 1);
        assert_eq!(block.scans[0].alias, "e");
    }

    #[test]
    fn join_pulls_both_ranges() {
        let db = db();
        let block = build_query_block(
            &db,
            &retrieve("RETRIEVE (e.id, d.floor) WHERE e.dept_id = d.id"),
        )
        .unwrap();
        assert_eq!(block.scans.len(), 2);
        assert_eq!(block.conjuncts.len(), 1);
    }

    #[test]
    fn where_conjuncts_split() {
        let db = db();
        let block = build_query_block(
            &db,
            &retrieve("RETRIEVE (e.id) WHERE e.salary > 10 AND e.dept_id = 3 AND e.id != 0"),
        )
        .unwrap();
        assert_eq!(block.conjuncts.len(), 3);
    }

    #[test]
    fn sort_key_can_pull_a_range() {
        let db = db();
        let block =
            build_query_block(&db, &retrieve("RETRIEVE (d.floor) SORT BY e.salary")).unwrap();
        assert_eq!(block.scans.len(), 2);
    }

    #[test]
    fn undeclared_range_errors() {
        let db = db();
        assert!(matches!(
            build_query_block(&db, &retrieve("RETRIEVE (z.id)")),
            Err(RelError::NoSuchRange(_))
        ));
    }

    #[test]
    fn no_ranges_at_all_errors() {
        let db = Database::in_memory();
        assert!(build_query_block(&db, &retrieve("RETRIEVE (x)")).is_err());
    }

    #[test]
    fn unqualified_refs_use_single_declared_range() {
        let mut db = Database::in_memory();
        db.create_table(
            "emp",
            Schema::new(vec![Column::new("id", DataType::Int)]),
            &[],
        )
        .unwrap();
        db.declare_range("e", "emp").unwrap();
        let block = build_query_block(&db, &retrieve("RETRIEVE (id)")).unwrap();
        assert_eq!(block.scans.len(), 1);
    }
}
