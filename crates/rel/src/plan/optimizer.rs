//! Rule-and-statistics optimizer: query block → physical plan.
//!
//! Decisions made here, in order:
//!
//! 1. **Conjunct classification** — each WHERE conjunct is scan-local
//!    (mentions ≤ 1 range variable), a join edge (`a.x = b.y`), or residual.
//! 2. **Access-path selection** — an equality conjunct on an indexed column
//!    becomes an index probe (hash preferred); range conjuncts on a B+tree
//!    column become an index range scan *when estimated selectivity is low
//!    enough*; everything else is a sequential scan with the conjuncts as a
//!    pushed-down predicate.
//! 3. **Greedy join ordering** — start from the cheapest scan, repeatedly
//!    join the cheapest connected relation (hash join on equi edges,
//!    nested-loop otherwise).
//! 4. Aggregation, projection, sorting, and limiting are layered on top.

use super::logical::QueryBlock;
use super::planner::default_target_name;
use crate::catalog::IndexKind;
use crate::db::Database;
use crate::error::{RelError, RelResult};
use crate::exec::{AggSpec, KeyBound, PhysicalPlan};
use crate::expr::{BinOp, Expr};
use crate::quel::ast::Target;
use crate::schema::Schema;
use crate::stats::{TableStats, DEFAULT_RANGE_SELECTIVITY};
use crate::value::Value;

/// Range selectivity above which a sequential scan beats an index range
/// scan (random fetches per match vs one pass); the classical few-percent
/// rule, made explicit so the ablation bench can reference it.
pub const INDEX_RANGE_MAX_SELECTIVITY: f64 = 0.15;

/// Optimize a query block into an executable plan.
pub fn optimize(db: &Database, block: &QueryBlock) -> RelResult<PhysicalPlan> {
    // -- 1. classify conjuncts ------------------------------------------------
    let mut local: Vec<Vec<Expr>> = vec![Vec::new(); block.scans.len()];
    let mut edges: Vec<JoinEdge> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for conj in &block.conjuncts {
        let vars = conj.range_vars();
        match vars.len() {
            0 => {
                // Constant or unqualified-reference conjunct: keep it as a
                // residual filter over the joined row.
                residual.push(conj.clone());
            }
            1 => match block.scans.iter().position(|s| s.alias == vars[0]) {
                Some(i) => local[i].push(conj.clone()),
                None => residual.push(conj.clone()),
            },
            2 => {
                if let Some(edge) = as_join_edge(conj, block) {
                    edges.push(edge);
                } else {
                    residual.push(conj.clone());
                }
            }
            _ => residual.push(conj.clone()),
        }
    }

    // -- 2. access paths -------------------------------------------------------
    let mut parts: Vec<PlanPart> = Vec::with_capacity(block.scans.len());
    for (i, scan) in block.scans.iter().enumerate() {
        parts.push(build_access_path(
            db,
            &scan.table,
            &scan.alias,
            std::mem::take(&mut local[i]),
        )?);
    }

    // -- 3. greedy join order ---------------------------------------------------
    let mut current = {
        // Cheapest part first.
        let (mi, _) = parts
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.est_rows.total_cmp(&b.est_rows))
            .ok_or_else(|| RelError::Unsupported("query touches no relations".into()))?;
        parts.swap_remove(mi)
    };
    while !parts.is_empty() {
        // Prefer a connected relation; among candidates pick the cheapest.
        let connected: Vec<usize> = parts
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                edges.iter().any(|e| {
                    (current.aliases.contains(&e.left_var) && p.aliases.contains(&e.right_var))
                        || (current.aliases.contains(&e.right_var)
                            && p.aliases.contains(&e.left_var))
                })
            })
            .map(|(i, _)| i)
            .collect();
        let pick_from: Vec<usize> = if connected.is_empty() {
            (0..parts.len()).collect()
        } else {
            connected
        };
        let &next_i = pick_from
            .iter()
            .min_by(|&&a, &&b| parts[a].est_rows.total_cmp(&parts[b].est_rows))
            .expect("non-empty");
        let right = parts.swap_remove(next_i);
        current = join_parts(db, current, right, &mut edges)?;
        // Apply any residual conjuncts that are now fully bound.
        current = apply_ready_residuals(db, current, &mut residual)?;
    }
    current = apply_ready_residuals(db, current, &mut residual)?;
    if let Some(leftover) = residual.first() {
        // A conjunct that still doesn't resolve references an unknown name.
        let mut names = Vec::new();
        leftover.column_names(&mut names);
        return Err(RelError::NoSuchColumn(
            names.first().cloned().unwrap_or_default(),
        ));
    }

    let joined_schema = current.schema.clone();
    let mut plan = current.plan;

    // -- 4. aggregation ------------------------------------------------------------
    let mut out_schema;
    if block.has_aggregates() {
        // Pre-projection: group columns first, then aggregate arguments.
        let mut pre_exprs: Vec<Expr> = Vec::new();
        let mut pre_names: Vec<String> = Vec::new();
        for g in &block.group_by {
            pre_exprs.push(Expr::ColumnRef(g.clone()).resolve(&joined_schema)?);
            pre_names.push(g.clone());
        }
        let mut aggs: Vec<AggSpec> = Vec::new();
        for t in &block.targets {
            if let Target::Agg { name, func, arg } = t {
                let input = match arg {
                    None => None,
                    Some(a) => {
                        let idx = pre_exprs.len();
                        pre_exprs.push(a.clone().resolve(&joined_schema)?);
                        pre_names.push(format!("__agg_arg_{idx}"));
                        Some(idx)
                    }
                };
                aggs.push(AggSpec {
                    func: *func,
                    input,
                    name: name
                        .clone()
                        .unwrap_or_else(|| func.keyword().to_lowercase()),
                });
            }
        }
        // Every non-aggregate target must be a grouping column.
        for t in &block.targets {
            if let Target::Expr { expr, .. } = t {
                let ref_name = match expr {
                    Expr::ColumnRef(n) => n.clone(),
                    other => {
                        return Err(RelError::Unsupported(format!(
                            "non-aggregate target `{other}` must be a GROUP BY column"
                        )))
                    }
                };
                if !block.group_by.contains(&ref_name) {
                    return Err(RelError::Unsupported(format!(
                        "target `{ref_name}` is not in GROUP BY"
                    )));
                }
            }
        }
        plan = PhysicalPlan::Project {
            input: Box::new(plan),
            exprs: pre_exprs,
            names: pre_names,
        };
        plan = PhysicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: (0..block.group_by.len()).collect(),
            aggs,
        };
        // Final projection: targets in output order, with output names.
        let agg_out = plan.output_schema(db)?;
        let mut exprs = Vec::with_capacity(block.targets.len());
        let mut names = Vec::with_capacity(block.targets.len());
        for t in &block.targets {
            match t {
                Target::Expr { name, expr } => {
                    let rn = default_target_name(expr);
                    exprs.push(Expr::ColumnRef(rn.clone()).resolve(&agg_out)?);
                    names.push(name.clone().unwrap_or(rn));
                }
                Target::Agg { name, func, .. } => {
                    let out_name = name
                        .clone()
                        .unwrap_or_else(|| func.keyword().to_lowercase());
                    exprs.push(Expr::ColumnRef(out_name.clone()).resolve(&agg_out)?);
                    names.push(out_name);
                }
            }
        }
        plan = PhysicalPlan::Project {
            input: Box::new(plan),
            exprs,
            names,
        };
        if block.unique {
            plan = PhysicalPlan::Distinct {
                input: Box::new(plan),
            };
        }
        out_schema = plan.output_schema(db)?;
    } else {
        let mut exprs = Vec::with_capacity(block.targets.len());
        let mut names = Vec::with_capacity(block.targets.len());
        for t in &block.targets {
            let Target::Expr { name, expr } = t else {
                unreachable!("no aggregates in this branch");
            };
            exprs.push(expr.clone().resolve(&joined_schema)?);
            names.push(name.clone().unwrap_or_else(|| default_target_name(expr)));
        }
        // Sort keys that reference *input* columns force the sort below the
        // projection.
        let sort_in_input = !block.sort_by.is_empty()
            && block
                .sort_by
                .iter()
                .any(|k| joined_schema.index_of(&k.column).is_some() && !names.contains(&k.column));
        if sort_in_input {
            let keys = resolve_sort_keys(&block.sort_by, &joined_schema)?;
            plan = PhysicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        plan = PhysicalPlan::Project {
            input: Box::new(plan),
            exprs,
            names,
        };
        if block.unique {
            // Distinct preserves first-occurrence order, so it composes with
            // a sort on either side of the projection.
            plan = PhysicalPlan::Distinct {
                input: Box::new(plan),
            };
        }
        out_schema = plan.output_schema(db)?;
        if sort_in_input {
            // Sorting already happened below the projection.
            return Ok(apply_limit(plan, block));
        }
    }

    // -- 5. sort over the output schema ---------------------------------------
    if !block.sort_by.is_empty() {
        let keys = resolve_sort_keys(&block.sort_by, &out_schema)?;
        plan = PhysicalPlan::Sort {
            input: Box::new(plan),
            keys,
        };
        out_schema = plan.output_schema(db)?;
    }
    let _ = &out_schema;
    Ok(apply_limit(plan, block))
}

fn apply_limit(plan: PhysicalPlan, block: &QueryBlock) -> PhysicalPlan {
    match block.limit {
        Some((offset, count)) => push_limit_down(PhysicalPlan::Limit {
            input: Box::new(plan),
            offset,
            count: Some(count),
        }),
        None => plan,
    }
}

/// Push a `Limit` below cardinality-preserving operators (projection and
/// nested limits), so the streaming executor's stop hint starts as deep as
/// possible and the materializing path never computes projected expressions
/// for rows the limit would drop anyway.
pub fn push_limit_down(plan: PhysicalPlan) -> PhysicalPlan {
    let PhysicalPlan::Limit {
        input,
        offset,
        count,
    } = plan
    else {
        return plan;
    };
    match *input {
        // Projection is 1:1: Limit ∘ Project ≡ Project ∘ Limit.
        PhysicalPlan::Project {
            input,
            exprs,
            names,
        } => PhysicalPlan::Project {
            input: Box::new(push_limit_down(PhysicalPlan::Limit {
                input,
                offset,
                count,
            })),
            exprs,
            names,
        },
        // Adjacent limits compose: skip both offsets, keep the tighter count.
        PhysicalPlan::Limit {
            input,
            offset: inner_off,
            count: inner_cnt,
        } => {
            let count = match (count, inner_cnt) {
                (Some(c), Some(ic)) => Some(c.min(ic.saturating_sub(offset))),
                (Some(c), None) => Some(c),
                (None, Some(ic)) => Some(ic.saturating_sub(offset)),
                (None, None) => None,
            };
            push_limit_down(PhysicalPlan::Limit {
                input,
                offset: offset + inner_off,
                count,
            })
        }
        other => PhysicalPlan::Limit {
            input: Box::new(other),
            offset,
            count,
        },
    }
}

fn resolve_sort_keys(
    keys: &[crate::quel::ast::SortKey],
    schema: &Schema,
) -> RelResult<Vec<(usize, bool)>> {
    keys.iter()
        .map(|k| Ok((schema.resolve(&k.column)?, k.ascending)))
        .collect()
}

/// An equi-join edge `left_var.left_col = right_var.right_col`.
#[derive(Debug, Clone)]
struct JoinEdge {
    left_var: String,
    left_col: String,
    right_var: String,
    right_col: String,
}

fn as_join_edge(conj: &Expr, block: &QueryBlock) -> Option<JoinEdge> {
    let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = conj
    else {
        return None;
    };
    let (Expr::ColumnRef(l), Expr::ColumnRef(r)) = (left.as_ref(), right.as_ref()) else {
        return None;
    };
    let (lv, _) = l.split_once('.')?;
    let (rv, _) = r.split_once('.')?;
    if lv == rv {
        return None;
    }
    // Both vars must be actual scans of this block.
    if !block.scans.iter().any(|s| s.alias == lv) || !block.scans.iter().any(|s| s.alias == rv) {
        return None;
    }
    Some(JoinEdge {
        left_var: lv.to_string(),
        left_col: l.clone(),
        right_var: rv.to_string(),
        right_col: r.clone(),
    })
}

/// A partial plan with its bookkeeping.
struct PlanPart {
    plan: PhysicalPlan,
    schema: Schema,
    aliases: Vec<String>,
    est_rows: f64,
}

/// A `col op const` pattern extracted from a conjunct.
struct ColConst {
    col_name: String,
    op: BinOp,
    value: Value,
}

fn as_col_const(conj: &Expr) -> Option<ColConst> {
    let Expr::Binary { op, left, right } = conj else {
        return None;
    };
    if !op.is_comparison() {
        return None;
    }
    match (left.as_ref(), right.as_ref()) {
        (Expr::ColumnRef(c), Expr::Literal(v)) if !v.is_null() => Some(ColConst {
            col_name: c.clone(),
            op: *op,
            value: v.clone(),
        }),
        (Expr::Literal(v), Expr::ColumnRef(c)) if !v.is_null() => Some(ColConst {
            col_name: c.clone(),
            op: op.flipped(),
            value: v.clone(),
        }),
        _ => None,
    }
}

/// Choose the access path for one scan given its local conjuncts.
fn build_access_path(
    db: &Database,
    table: &str,
    alias: &str,
    conjuncts: Vec<Expr>,
) -> RelResult<PlanPart> {
    let info = db.catalog().table(table)?.clone();
    let schema = info.schema.qualified(alias);
    let stats = db_stats(db, &info);
    let base_rows = stats.rows.max(1) as f64;

    // Index every conjunct; find equality and range candidates.
    let mut eq_pick: Option<(usize, usize, String, Value)> = None; // (conj idx, col, index name, value)
    for (ci, conj) in conjuncts.iter().enumerate() {
        let Some(cc) = as_col_const(conj) else {
            continue;
        };
        if cc.op != BinOp::Eq {
            continue;
        }
        let Some(col) = schema.index_of(&cc.col_name) else {
            continue;
        };
        if let Some(idx) = db
            .catalog()
            .index_on_column(info.id, col, Some(IndexKind::Hash))
        {
            if idx.columns.len() == 1 {
                eq_pick = Some((ci, col, idx.name.clone(), cc.value.clone()));
                break;
            }
        }
    }
    if let Some((ci, col, index, value)) = eq_pick {
        let residual = residual_pred(&conjuncts, &[ci], &schema)?;
        let est = base_rows * stats.eq_selectivity(col);
        return Ok(PlanPart {
            plan: PhysicalPlan::IndexScanEq {
                table: table.to_string(),
                alias: alias.to_string(),
                index,
                key: vec![value],
                residual,
            },
            schema,
            aliases: vec![alias.to_string()],
            est_rows: est.max(1.0),
        });
    }

    // Range candidate: group bounds per indexed B+tree column.
    let mut range_pick: Option<RangePick> = None;
    for col in 0..schema.len() {
        let Some(idx) = db
            .catalog()
            .index_on_column(info.id, col, Some(IndexKind::BTree))
        else {
            continue;
        };
        if idx.kind != IndexKind::BTree || idx.columns.len() != 1 {
            continue;
        }
        let col_name = &schema.columns[col].name;
        let mut lower: Option<KeyBound> = None;
        let mut upper: Option<KeyBound> = None;
        let mut used: Vec<usize> = Vec::new();
        for (ci, conj) in conjuncts.iter().enumerate() {
            let Some(cc) = as_col_const(conj) else {
                continue;
            };
            if schema.index_of(&cc.col_name) != Some(col) {
                continue;
            }
            let _ = col_name;
            match cc.op {
                BinOp::Gt | BinOp::Ge => {
                    let cand = KeyBound {
                        values: vec![cc.value.clone()],
                        inclusive: cc.op == BinOp::Ge,
                    };
                    if tighter_lower(&lower, &cand) {
                        lower = Some(cand);
                    }
                    used.push(ci);
                }
                BinOp::Lt | BinOp::Le => {
                    let cand = KeyBound {
                        values: vec![cc.value.clone()],
                        inclusive: cc.op == BinOp::Le,
                    };
                    if tighter_upper(&upper, &cand) {
                        upper = Some(cand);
                    }
                    used.push(ci);
                }
                BinOp::Eq => {
                    // An equality on a btree column (no hash index found).
                    let cand = KeyBound {
                        values: vec![cc.value.clone()],
                        inclusive: true,
                    };
                    lower = Some(cand.clone());
                    upper = Some(cand);
                    used.push(ci);
                }
                _ => {}
            }
        }
        if lower.is_some() || upper.is_some() {
            range_pick = Some(RangePick {
                index: idx.name.clone(),
                lower,
                upper,
                used,
            });
            break;
        }
    }
    if let Some(pick) = range_pick {
        // Estimate selectivity; fall back to a seq scan when the range is
        // too wide to be worth random fetches.
        let exact = pick
            .lower
            .as_ref()
            .zip(pick.upper.as_ref())
            .is_some_and(|(l, u)| l.values == u.values);
        let sel = if exact {
            stats.eq_selectivity(0)
        } else if pick.lower.is_some() && pick.upper.is_some() {
            // Two-sided ranges are assumed independent one-sided cuts — the
            // System R default in the absence of histograms.
            DEFAULT_RANGE_SELECTIVITY * DEFAULT_RANGE_SELECTIVITY
        } else {
            DEFAULT_RANGE_SELECTIVITY
        };
        if exact || sel <= INDEX_RANGE_MAX_SELECTIVITY || base_rows < 256.0 {
            let residual = residual_pred(&conjuncts, &pick.used, &schema)?;
            let est = (base_rows * sel).max(1.0);
            return Ok(PlanPart {
                plan: PhysicalPlan::IndexRange {
                    table: table.to_string(),
                    alias: alias.to_string(),
                    index: pick.index,
                    lower: pick.lower,
                    upper: pick.upper,
                    residual,
                },
                schema,
                aliases: vec![alias.to_string()],
                est_rows: est,
            });
        }
    }

    // Sequential scan with everything pushed down. Order the conjuncts
    // most-selective-first so the AND short-circuit (and the vectorized
    // selection-vector narrowing) discards rows on the cheapest test.
    let conjuncts = order_conjuncts(conjuncts, &schema, &stats);
    let pred = residual_pred(&conjuncts, &[], &schema)?;
    let est = if conjuncts.is_empty() {
        base_rows
    } else {
        (base_rows * 0.25f64.powi(conjuncts.len() as i32)).max(1.0)
    };
    Ok(PlanPart {
        plan: PhysicalPlan::SeqScan {
            table: table.to_string(),
            alias: alias.to_string(),
            pred,
        },
        schema,
        aliases: vec![alias.to_string()],
        est_rows: est,
    })
}

/// Order a pushed-down conjunction by estimated selectivity, ascending.
///
/// Only `col op const` comparisons are reordered — they cannot raise an
/// evaluation error, so hoisting one past another conjunct never surfaces
/// an error that left-to-right short-circuiting would have skipped (it can
/// only skip more work). Everything else keeps its written order, after
/// the estimable prefix. The sort is stable, so equal estimates also keep
/// written order.
fn order_conjuncts(conjuncts: Vec<Expr>, schema: &Schema, stats: &TableStats) -> Vec<Expr> {
    if conjuncts.len() < 2 {
        return conjuncts;
    }
    let mut estimable: Vec<(f64, Expr)> = Vec::new();
    let mut rest: Vec<Expr> = Vec::new();
    for conj in conjuncts {
        match conjunct_selectivity(&conj, schema, stats) {
            Some(sel) => estimable.push((sel, conj)),
            None => rest.push(conj),
        }
    }
    estimable.sort_by(|(a, _), (b, _)| a.total_cmp(b));
    let mut out: Vec<Expr> = estimable.into_iter().map(|(_, e)| e).collect();
    out.extend(rest);
    out
}

/// Estimated selectivity of a single `col op const` conjunct, or `None`
/// when the shape carries no estimate (and may error, so must not move).
fn conjunct_selectivity(conj: &Expr, schema: &Schema, stats: &TableStats) -> Option<f64> {
    let cc = as_col_const(conj)?;
    let col = schema.index_of(&cc.col_name)?;
    Some(match cc.op {
        BinOp::Eq => stats.eq_selectivity(col),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => DEFAULT_RANGE_SELECTIVITY,
        // `<>` keeps almost everything.
        BinOp::Ne => 1.0 - stats.eq_selectivity(col),
        _ => return None,
    })
}

struct RangePick {
    index: String,
    lower: Option<KeyBound>,
    upper: Option<KeyBound>,
    used: Vec<usize>,
}

fn tighter_lower(current: &Option<KeyBound>, cand: &KeyBound) -> bool {
    match current {
        None => true,
        Some(c) => cand.values[0].total_cmp(&c.values[0]) == std::cmp::Ordering::Greater,
    }
}

fn tighter_upper(current: &Option<KeyBound>, cand: &KeyBound) -> bool {
    match current {
        None => true,
        Some(c) => cand.values[0].total_cmp(&c.values[0]) == std::cmp::Ordering::Less,
    }
}

/// Conjuncts not consumed by the access path, folded and resolved.
fn residual_pred(
    conjuncts: &[Expr],
    consumed: &[usize],
    schema: &Schema,
) -> RelResult<Option<Expr>> {
    let rest: Vec<Expr> = conjuncts
        .iter()
        .enumerate()
        .filter(|(i, _)| !consumed.contains(i))
        .map(|(_, e)| e.clone())
        .collect();
    if rest.is_empty() {
        return Ok(None);
    }
    Ok(Some(Expr::conjunction(rest).resolve(schema)?))
}

fn db_stats(db: &Database, info: &crate::catalog::TableInfo) -> TableStats {
    db.table_stats(info.id)
}

/// Join two plan parts, consuming the edges that connect them.
fn join_parts(
    _db: &Database,
    left: PlanPart,
    right: PlanPart,
    edges: &mut Vec<JoinEdge>,
) -> RelResult<PlanPart> {
    let joined_schema = Schema::join(&left.schema, "l", &right.schema, "r");
    // Find all edges connecting left ↔ right.
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut consumed = Vec::new();
    for (i, e) in edges.iter().enumerate() {
        let (l_ref, r_ref) =
            if left.aliases.contains(&e.left_var) && right.aliases.contains(&e.right_var) {
                (&e.left_col, &e.right_col)
            } else if left.aliases.contains(&e.right_var) && right.aliases.contains(&e.left_var) {
                (&e.right_col, &e.left_col)
            } else {
                continue;
            };
        let li = left.schema.resolve(l_ref)?;
        let ri = right.schema.resolve(r_ref)?;
        left_keys.push(li);
        right_keys.push(ri);
        consumed.push(i);
    }
    let mut est = left.est_rows * right.est_rows;
    let plan = if left_keys.is_empty() {
        // No equi edge: cross join (any non-equi relation between the two
        // sides lives in the residual list and is applied right after).
        PhysicalPlan::NestedLoopJoin {
            left: Box::new(left.plan),
            right: Box::new(right.plan),
            pred: None,
        }
    } else {
        est *= 0.1f64.powi(left_keys.len() as i32).max(1e-9);
        PhysicalPlan::HashJoin {
            left: Box::new(left.plan),
            right: Box::new(right.plan),
            left_keys,
            right_keys,
            residual: None,
        }
    };
    for i in consumed.into_iter().rev() {
        edges.remove(i);
    }
    let mut aliases = left.aliases;
    aliases.extend(right.aliases);
    Ok(PlanPart {
        plan,
        schema: joined_schema,
        aliases,
        est_rows: est.max(1.0),
    })
}

/// Attach residual conjuncts whose names now all resolve.
fn apply_ready_residuals(
    _db: &Database,
    mut part: PlanPart,
    residual: &mut Vec<Expr>,
) -> RelResult<PlanPart> {
    let mut ready = Vec::new();
    let mut keep = Vec::new();
    for conj in residual.drain(..) {
        let mut names = Vec::new();
        conj.column_names(&mut names);
        if names.iter().all(|n| part.schema.index_of(n).is_some()) {
            ready.push(conj);
        } else {
            keep.push(conj);
        }
    }
    *residual = keep;
    if !ready.is_empty() {
        part.est_rows = (part.est_rows * 0.25f64.powi(ready.len() as i32)).max(1.0);
        let pred = Expr::conjunction(ready).resolve(&part.schema)?;
        part.plan = PhysicalPlan::Filter {
            input: Box::new(part.plan),
            pred,
        };
    }
    Ok(part)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan() -> PhysicalPlan {
        PhysicalPlan::SeqScan {
            table: "t".into(),
            alias: "t".into(),
            pred: None,
        }
    }

    #[test]
    fn seq_scan_conjuncts_order_most_selective_first() {
        use crate::schema::Column;
        use crate::types::DataType;
        use std::collections::HashMap;
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ]);
        let stats = TableStats {
            rows: 1000,
            distinct: HashMap::from([(0, 1000u64)]),
        };
        let col = |n: &str| Box::new(Expr::ColumnRef(n.into()));
        let lit = |v: i64| Box::new(Expr::Literal(Value::Int(v)));
        let eq_a = Expr::Binary {
            op: BinOp::Eq,
            left: col("a"),
            right: lit(1),
        };
        let range_b = Expr::Binary {
            op: BinOp::Lt,
            left: col("b"),
            right: lit(5),
        };
        // Column-to-column comparison: no estimate, must keep its slot at
        // the back regardless of where it was written.
        let opaque = Expr::Binary {
            op: BinOp::Gt,
            left: col("a"),
            right: col("b"),
        };
        let ordered = order_conjuncts(
            vec![opaque.clone(), range_b.clone(), eq_a.clone()],
            &schema,
            &stats,
        );
        assert_eq!(ordered, vec![eq_a, range_b, opaque]);
    }

    #[test]
    fn limit_pushes_below_project() {
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(scan()),
                exprs: vec![Expr::Column(0)],
                names: vec!["a".into()],
            }),
            offset: 2,
            count: Some(5),
        };
        let pushed = push_limit_down(plan);
        let PhysicalPlan::Project { input, .. } = pushed else {
            panic!("expected Project on top, got {pushed:?}");
        };
        assert_eq!(
            *input,
            PhysicalPlan::Limit {
                input: Box::new(scan()),
                offset: 2,
                count: Some(5),
            }
        );
    }

    #[test]
    fn limit_does_not_push_below_sort() {
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(scan()),
                keys: vec![(0, true)],
            }),
            offset: 0,
            count: Some(3),
        };
        assert_eq!(push_limit_down(plan.clone()), plan);
    }

    #[test]
    fn adjacent_limits_compose() {
        // inner keeps rows [1, 1+10), outer takes [3, 3+4) of those
        // → rows [4, 8) of the scan: offset 4, count min(4, 10-3) = 4.
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Limit {
                input: Box::new(scan()),
                offset: 1,
                count: Some(10),
            }),
            offset: 3,
            count: Some(4),
        };
        assert_eq!(
            push_limit_down(plan),
            PhysicalPlan::Limit {
                input: Box::new(scan()),
                offset: 4,
                count: Some(4),
            }
        );
    }
}
