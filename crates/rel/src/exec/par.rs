//! Parallel execution primitives: partitioned base-table scans and
//! partitioned hash-join builds.
//!
//! Both primitives are *order-preserving*: chunk results are gathered in
//! chunk order, and chunks are contiguous page (or row) ranges, so the
//! output is row-for-row identical to the serial path no matter how many
//! workers ran or how the ranges interleaved in time. Worker threads never
//! touch the caller's `Database` — each chunk runs against a
//! [`Database::read_replica`] sharing the same buffer pool, and replica
//! scan counters are merged back after the gather so `ExecCounters` agree
//! with a serial run.
//!
//! Small inputs stay serial: below [`PAR_SCAN_MIN_ROWS`] /
//! [`PAR_JOIN_BUILD_MIN_ROWS`] the scatter cost (replica clone + thread
//! spawn, ~10–50µs) exceeds the win, so thresholds keep point queries and
//! small windows on the exact serial code path.

use crate::catalog::TableId;
use crate::db::{Database, ExecCounters};
use crate::error::RelResult;
use crate::eval::compile::{self, Scratch};
use crate::eval::eval_pred;
use crate::expr::Expr;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use wow_obs::Op;
use wow_par::stats::{decision, Layer};

/// Minimum table rows before a sequential scan is partitioned.
pub const PAR_SCAN_MIN_ROWS: u64 = 4096;

/// Minimum build-side rows before a hash-join build is partitioned.
pub const PAR_JOIN_BUILD_MIN_ROWS: usize = 4096;

/// Minimum heap pages per scan chunk (a chunk below ~4 pages is all
/// scatter overhead).
const MIN_PAGES_PER_CHUNK: usize = 4;

/// Minimum rows per key-encoding chunk in a parallel join build.
const MIN_ROWS_PER_CHUNK: usize = 1024;

/// Should this scan run on the parallel path? Callers gate on workers,
/// table size, and the absence of a pushed-down stop hint (an early-stop
/// scan reads less than any partitioning would).
pub fn scan_goes_parallel(db: &Database, table: TableId, stop_hint: Option<usize>) -> bool {
    let parallel =
        db.workers() > 1 && stop_hint.is_none() && db.row_count(table) >= PAR_SCAN_MIN_ROWS;
    decision(Layer::Scan, parallel);
    parallel
}

/// Scan every page of `table`, evaluating `pred`, with page ranges
/// fanned out across the worker pool. Output order (and content) is
/// identical to the serial page-chain walk. When the vectorized executor
/// is on and the predicate compiles, each chunk runs through the same
/// batch kernels as the serial vectorized scan
/// (`stream::filter_pages_vectorized`); otherwise chunks evaluate the
/// predicate row-at-a-time.
pub fn parallel_scan(
    db: &mut Database,
    table: TableId,
    pred: Option<&Expr>,
) -> RelResult<Vec<Tuple>> {
    let pages = db.table_page_count(table)?;
    let compiled = if db.vectorized() {
        pred.and_then(compile::compile)
    } else {
        None
    };
    let mut span = wow_obs::span(Op::ParScatter);
    let shared: &Database = db;
    let chunks: Vec<RelResult<(Vec<Tuple>, ExecCounters)>> =
        shared.par.map_chunks(pages, MIN_PAGES_PER_CHUNK, |range| {
            let mut replica = shared.read_replica();
            let out = match &compiled {
                Some(prog) => {
                    let mut scratch = Scratch::default();
                    super::stream::filter_pages_vectorized(
                        &mut replica,
                        table,
                        range,
                        prog,
                        &mut scratch,
                    )?
                }
                None => {
                    let mut out = Vec::new();
                    for page_idx in range {
                        let Some(rows) = replica.scan_table_page(table, page_idx)? else {
                            break;
                        };
                        for (_, t) in rows {
                            let keep = match pred {
                                Some(p) => eval_pred(p, &t)?,
                                None => true,
                            };
                            if keep {
                                out.push(t);
                            }
                        }
                    }
                    out
                }
            };
            Ok((out, replica.counters()))
        });
    span.arg(chunks.len() as u64);
    let mut tuples = Vec::new();
    let mut merged = ExecCounters::default();
    for chunk in chunks {
        let (rows, c) = chunk?;
        tuples.extend(rows);
        merged.rows_scanned += c.rows_scanned;
        merged.batches += c.batches;
        merged.sel_in += c.sel_in;
        merged.sel_out += c.sel_out;
    }
    span.finish();
    db.merge_counters(merged);
    Ok(tuples)
}

/// A hash-join build table, partitioned by key hash so both the build and
/// the probe can address one partition at a time. A serial build uses a
/// single partition; the partition function is deterministic (FNV-1a over
/// the encoded key bytes), so partition counts only affect layout, never
/// join results.
pub struct JoinTable {
    parts: Vec<HashMap<Vec<u8>, Vec<usize>>>,
}

impl JoinTable {
    /// An empty table (streams that never build).
    pub fn empty() -> JoinTable {
        JoinTable {
            parts: vec![HashMap::new()],
        }
    }

    /// Total number of distinct keys.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|m| m.is_empty())
    }

    /// Look up the match list (build-side row indices, ascending) for an
    /// encoded key.
    pub fn get(&self, key: &[u8]) -> Option<&Vec<usize>> {
        let p = if self.parts.len() == 1 {
            0
        } else {
            (fnv1a(key) % self.parts.len() as u64) as usize
        };
        self.parts[p].get(key)
    }
}

/// Build a [`JoinTable`] over `rows`, keyed on `key_cols`. Rows with any
/// NULL key column never enter the table (SQL join semantics). The build
/// parallelizes in two phases — key encoding over row chunks, then map
/// construction over partitions — when the input is large enough.
pub fn build_join_table(db: &Database, rows: &[Tuple], key_cols: &[usize]) -> JoinTable {
    let parallel = db.workers() > 1 && rows.len() >= PAR_JOIN_BUILD_MIN_ROWS;
    decision(Layer::JoinBuild, parallel);
    if !parallel {
        let mut map: HashMap<Vec<u8>, Vec<usize>> = HashMap::with_capacity(rows.len());
        for (i, key) in encode_keys(rows, key_cols, 0..rows.len()) {
            map.entry(key).or_default().push(i);
        }
        return JoinTable { parts: vec![map] };
    }
    let mut span = wow_obs::span(Op::ParScatter);
    // Phase 1: encode keys in parallel over contiguous row chunks,
    // gathered in chunk order so index `i` stays aligned with `rows[i]`.
    let encoded: Vec<(usize, Vec<u8>)> = db
        .par
        .map_chunks(rows.len(), MIN_ROWS_PER_CHUNK, |range| {
            encode_keys(rows, key_cols, range)
        })
        .into_iter()
        .flatten()
        .collect();
    // Phase 2: each worker owns one partition and inserts only the keys
    // hashing to it, scanning the encoded list in order so every match
    // list stays ascending — exactly what a serial build produces.
    let nparts = db.workers();
    let hashes: Vec<u64> = encoded.iter().map(|(_, k)| fnv1a(k)).collect();
    let parts = db.par.map((0..nparts).collect(), |_, p| {
        let mut map: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
        for (e, &h) in encoded.iter().zip(&hashes) {
            if h % nparts as u64 == p as u64 {
                map.entry(e.1.clone()).or_default().push(e.0);
            }
        }
        map
    });
    span.arg(encoded.len() as u64);
    span.finish();
    JoinTable { parts }
}

/// Encode the non-NULL composite keys of `rows[range]` as
/// `(row index, key bytes)` pairs in row order.
fn encode_keys(
    rows: &[Tuple],
    key_cols: &[usize],
    range: std::ops::Range<usize>,
) -> Vec<(usize, Vec<u8>)> {
    let mut out = Vec::with_capacity(range.len());
    'row: for i in range {
        let mut key_vals = Vec::with_capacity(key_cols.len());
        for &k in key_cols {
            let v = &rows[i].values[k];
            if v.is_null() {
                continue 'row;
            }
            key_vals.push(v.clone());
        }
        out.push((i, Value::encode_composite(&key_vals)));
    }
    out
}

/// FNV-1a over key bytes: a fixed hash (unlike `RandomState`) so build
/// and probe — and every worker — partition identically.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::types::DataType;

    fn demo_db(rows: usize, workers: usize) -> (Database, TableId) {
        let mut db = Database::in_memory();
        db.set_workers(workers);
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("val", DataType::Text),
        ]);
        let id = db.create_table("t", schema, &["id"]).unwrap();
        for i in 0..rows {
            db.insert(
                "t",
                vec![Value::Int(i as i64), Value::Text(format!("row-{i:06}"))],
            )
            .unwrap();
        }
        (db, id)
    }

    #[test]
    fn parallel_scan_matches_serial_order() {
        let (mut db, t) = demo_db(10_000, 4);
        let par = parallel_scan(&mut db, t, None).unwrap();
        let serial: Vec<Tuple> = db
            .scan_table_raw(t)
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert_eq!(par.len(), 10_000);
        assert_eq!(par, serial, "parallel scan must preserve heap order");
    }

    #[test]
    fn parallel_scan_applies_predicates() {
        let (mut db, t) = demo_db(5_000, 3);
        let pred = Expr::Binary {
            op: crate::expr::BinOp::Lt,
            left: Box::new(Expr::Column(0)),
            right: Box::new(Expr::Literal(Value::Int(100))),
        };
        let par = parallel_scan(&mut db, t, Some(&pred)).unwrap();
        assert_eq!(par.len(), 100);
        assert!(par
            .iter()
            .enumerate()
            .all(|(i, t)| t.values[0] == Value::Int(i as i64)));
    }

    #[test]
    fn parallel_scan_merges_scan_counters() {
        let (mut db, t) = demo_db(3_000, 4);
        db.reset_counters();
        parallel_scan(&mut db, t, None).unwrap();
        assert_eq!(db.counters().rows_scanned, 3_000);
    }

    #[test]
    fn join_table_parallel_matches_serial() {
        let rows: Vec<Tuple> = (0..6_000)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i % 97),
                    if i % 13 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                ])
            })
            .collect();
        let mut serial_db = Database::in_memory();
        serial_db.set_workers(1);
        let mut par_db = Database::in_memory();
        par_db.set_workers(4);
        let serial = build_join_table(&serial_db, &rows, &[0, 1]);
        let par = build_join_table(&par_db, &rows, &[0, 1]);
        assert_eq!(serial.parts.len(), 1);
        assert!(par.parts.len() > 1);
        for (key, matches) in &serial.parts[0] {
            assert_eq!(par.get(key), Some(matches), "key {key:?} differs");
        }
        let serial_keys: usize = serial.parts.iter().map(|m| m.len()).sum();
        let par_keys: usize = par.parts.iter().map(|m| m.len()).sum();
        assert_eq!(serial_keys, par_keys);
    }

    #[test]
    fn scan_threshold_keeps_small_tables_serial() {
        let (db, t) = demo_db(100, 4);
        assert!(!scan_goes_parallel(&db, t, None));
        assert!(!scan_goes_parallel(&db, t, Some(10)));
        let (big, t2) = demo_db(5_000, 4);
        assert!(scan_goes_parallel(&big, t2, None));
        assert!(!scan_goes_parallel(&big, t2, Some(16)), "stop hint wins");
        let (mut one, t3) = demo_db(5_000, 4);
        one.set_workers(1);
        assert!(!scan_goes_parallel(&one, t3, None));
    }
}
