//! Sorting.

use crate::tuple::Tuple;
use std::cmp::Ordering;

/// Stable sort of tuples by `(column, ascending)` keys, most significant
/// first. NULLs sort first in ascending order (and last in descending),
/// matching the browse-order convention of the forms layer.
pub fn sort_rows(tuples: &mut [Tuple], keys: &[(usize, bool)]) {
    tuples.sort_by(|a, b| compare(a, b, keys));
}

/// The comparison used by [`sort_rows`], exposed for merge-style consumers.
pub fn compare(a: &Tuple, b: &Tuple, keys: &[(usize, bool)]) -> Ordering {
    for &(col, asc) in keys {
        let ord = a.values[col].total_cmp(&b.values[col]);
        let ord = if asc { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t(a: i64, b: &str) -> Tuple {
        Tuple::new(vec![Value::Int(a), Value::text(b)])
    }

    #[test]
    fn single_key_ascending() {
        let mut rows = vec![t(3, "c"), t(1, "a"), t(2, "b")];
        sort_rows(&mut rows, &[(0, true)]);
        let got: Vec<i64> = rows
            .iter()
            .map(|r| match r.values[0] {
                Value::Int(i) => i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn descending_and_secondary_key() {
        let mut rows = vec![t(1, "b"), t(2, "a"), t(1, "a"), t(2, "b")];
        sort_rows(&mut rows, &[(0, false), (1, true)]);
        let got: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
        assert_eq!(
            got,
            vec!["(2, \"a\")", "(2, \"b\")", "(1, \"a\")", "(1, \"b\")"]
        );
    }

    #[test]
    fn nulls_sort_first_ascending() {
        let mut rows = vec![
            Tuple::new(vec![Value::Int(1)]),
            Tuple::new(vec![Value::Null]),
            Tuple::new(vec![Value::Int(0)]),
        ];
        sort_rows(&mut rows, &[(0, true)]);
        assert!(rows[0].values[0].is_null());
        sort_rows(&mut rows, &[(0, false)]);
        assert!(rows[2].values[0].is_null());
    }

    #[test]
    fn stability_preserved_on_ties() {
        let mut rows = vec![t(1, "first"), t(1, "second"), t(1, "third")];
        sort_rows(&mut rows, &[(0, true)]);
        assert_eq!(rows[0].values[1], Value::text("first"));
        assert_eq!(rows[2].values[1], Value::text("third"));
    }

    #[test]
    fn empty_keys_is_identity() {
        let mut rows = vec![t(2, "x"), t(1, "y")];
        sort_rows(&mut rows, &[]);
        assert_eq!(rows[0].values[0], Value::Int(2));
    }

    mod properties {
        use super::super::*;
        use crate::value::Value;
        use proptest::prelude::*;

        fn value_strategy() -> impl Strategy<Value = Value> {
            prop_oneof![
                Just(Value::Null),
                (-5i64..5).prop_map(Value::Int),
                (-5i32..5).prop_map(|i| Value::Float(i as f64 / 2.0)),
                prop_oneof![Just("a"), Just("b"), Just("zz")].prop_map(Value::text),
            ]
        }

        proptest! {
            /// For arbitrary rows and key specs the output is a
            /// permutation of the input, nondecreasing under [`compare`],
            /// and stable (ties keep their original relative order).
            #[test]
            fn sorted_output_is_a_stable_ordered_permutation(
                rows in proptest::collection::vec(
                    proptest::collection::vec(value_strategy(), 3..4),
                    0..24,
                ),
                keys in proptest::collection::vec((0usize..3, any::<bool>()), 0..3),
            ) {
                // Tag each row with its input position so stability is
                // observable even among fully identical rows.
                let tagged: Vec<Tuple> = rows
                    .iter()
                    .enumerate()
                    .map(|(i, vals)| {
                        let mut v = vals.clone();
                        v.push(Value::Int(i as i64));
                        Tuple::new(v)
                    })
                    .collect();
                let mut sorted = tagged.clone();
                sort_rows(&mut sorted, &keys);

                let mut expect = tagged.clone();
                expect.sort_by(|a, b| {
                    compare(a, b, &keys).then_with(|| {
                        // Break ties by input position: exactly what a
                        // stable sort guarantees.
                        a.values[3].total_cmp(&b.values[3])
                    })
                });
                prop_assert_eq!(&sorted, &expect);
                for w in sorted.windows(2) {
                    prop_assert!(
                        compare(&w[0], &w[1], &keys) != Ordering::Greater,
                        "output not ordered under the sort comparator"
                    );
                }
            }
        }
    }
}
