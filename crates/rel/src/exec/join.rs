//! Join operators: nested-loop (baseline) and hash equi-join.

use super::Rows;
use crate::db::Database;
use crate::error::RelResult;
use crate::eval::eval_pred;
use crate::expr::Expr;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::HashMap;

/// Nested-loop join: for every left tuple, test every right tuple.
///
/// This is the join the 1983 substrate would have used for arbitrary
/// predicates, and the baseline Figure 2 compares hash join against.
pub fn nested_loop(
    db: &mut Database,
    schema: Schema,
    left: &Rows,
    right: &Rows,
    pred: Option<&Expr>,
) -> RelResult<Rows> {
    let mut tuples = Vec::new();
    for l in &left.tuples {
        for r in &right.tuples {
            let joined = l.concat(r);
            let keep = match pred {
                Some(p) => eval_pred(p, &joined)?,
                None => true,
            };
            if keep {
                tuples.push(joined);
            }
        }
    }
    db.counters.join_rows += tuples.len() as u64;
    Ok(Rows { schema, tuples })
}

/// Hash equi-join: build a table on the right input, probe with the left.
///
/// NULL keys never join (SQL semantics). An optional residual predicate is
/// applied to surviving pairs.
pub fn hash_join(
    db: &mut Database,
    schema: Schema,
    left: &Rows,
    right: &Rows,
    left_keys: &[usize],
    right_keys: &[usize],
    residual: Option<&Expr>,
) -> RelResult<Rows> {
    // Build phase: hash the right side by encoded key bytes.
    let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::with_capacity(right.tuples.len());
    'build: for (i, r) in right.tuples.iter().enumerate() {
        let mut key_vals = Vec::with_capacity(right_keys.len());
        for &k in right_keys {
            let v = &r.values[k];
            if v.is_null() {
                continue 'build;
            }
            key_vals.push(v.clone());
        }
        table
            .entry(Value::encode_composite(&key_vals))
            .or_default()
            .push(i);
    }
    // Probe phase.
    let mut tuples = Vec::new();
    'probe: for l in &left.tuples {
        let mut key_vals = Vec::with_capacity(left_keys.len());
        for &k in left_keys {
            let v = &l.values[k];
            if v.is_null() {
                continue 'probe;
            }
            key_vals.push(v.clone());
        }
        let key = Value::encode_composite(&key_vals);
        if let Some(matches) = table.get(&key) {
            for &ri in matches {
                let joined = l.concat(&right.tuples[ri]);
                let keep = match residual {
                    Some(p) => eval_pred(p, &joined)?,
                    None => true,
                };
                if keep {
                    tuples.push(joined);
                }
            }
        }
    }
    db.counters.join_rows += tuples.len() as u64;
    Ok(Rows { schema, tuples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::schema::Column;
    use crate::tuple::Tuple;
    use crate::types::DataType;

    fn rows(names: &[&str], vals: Vec<Vec<Value>>) -> Rows {
        Rows {
            schema: Schema::new(
                names
                    .iter()
                    .map(|n| Column::new(*n, DataType::Int))
                    .collect(),
            ),
            tuples: vals.into_iter().map(Tuple::new).collect(),
        }
    }

    fn joined_schema(l: &Rows, r: &Rows) -> Schema {
        Schema::join(&l.schema, "l", &r.schema, "r")
    }

    #[test]
    fn nested_loop_cross_product() {
        let mut db = Database::in_memory();
        let l = rows(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let r = rows(
            &["b"],
            vec![
                vec![Value::Int(10)],
                vec![Value::Int(20)],
                vec![Value::Int(30)],
            ],
        );
        let out = nested_loop(&mut db, joined_schema(&l, &r), &l, &r, None).unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(db.counters().join_rows, 6);
    }

    #[test]
    fn nested_loop_with_predicate() {
        let mut db = Database::in_memory();
        let l = rows(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let r = rows(&["b"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let pred = Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(Expr::Column(0)),
            right: Box::new(Expr::Column(1)),
        };
        let out = nested_loop(&mut db, joined_schema(&l, &r), &l, &r, Some(&pred)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples[0].values, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn hash_join_equi() {
        let mut db = Database::in_memory();
        let l = rows(
            &["id", "x"],
            vec![
                vec![Value::Int(1), Value::Int(100)],
                vec![Value::Int(2), Value::Int(200)],
                vec![Value::Int(3), Value::Int(300)],
            ],
        );
        let r = rows(
            &["id", "y"],
            vec![
                vec![Value::Int(2), Value::Int(-2)],
                vec![Value::Int(3), Value::Int(-3)],
                vec![Value::Int(3), Value::Int(-33)],
                vec![Value::Int(4), Value::Int(-4)],
            ],
        );
        let out = hash_join(&mut db, joined_schema(&l, &r), &l, &r, &[0], &[0], None).unwrap();
        assert_eq!(out.len(), 3, "2 matches once, 3 matches twice");
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let mut db = Database::in_memory();
        let l = rows(&["k"], (0..50).map(|i| vec![Value::Int(i % 7)]).collect());
        let r = rows(&["k"], (0..30).map(|i| vec![Value::Int(i % 5)]).collect());
        let pred = Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(Expr::Column(0)),
            right: Box::new(Expr::Column(1)),
        };
        let nl = nested_loop(&mut db, joined_schema(&l, &r), &l, &r, Some(&pred)).unwrap();
        let hj = hash_join(&mut db, joined_schema(&l, &r), &l, &r, &[0], &[0], None).unwrap();
        assert_eq!(nl.len(), hj.len());
        // Same multiset of rows.
        let canon = |rows: &Rows| {
            let mut v: Vec<String> = rows.tuples.iter().map(|t| t.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(canon(&nl), canon(&hj));
    }

    #[test]
    fn null_keys_never_match() {
        let mut db = Database::in_memory();
        let l = rows(&["k"], vec![vec![Value::Null], vec![Value::Int(1)]]);
        let r = rows(&["k"], vec![vec![Value::Null], vec![Value::Int(1)]]);
        let out = hash_join(&mut db, joined_schema(&l, &r), &l, &r, &[0], &[0], None).unwrap();
        assert_eq!(out.len(), 1, "only the 1=1 pair joins");
    }

    #[test]
    fn hash_join_residual_filters() {
        let mut db = Database::in_memory();
        let l = rows(
            &["id", "x"],
            vec![
                vec![Value::Int(1), Value::Int(5)],
                vec![Value::Int(1), Value::Int(50)],
            ],
        );
        let r = rows(&["id", "y"], vec![vec![Value::Int(1), Value::Int(10)]]);
        // residual: l.x < r.y  (columns 1 and 3 of the concatenated row)
        let residual = Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(Expr::Column(1)),
            right: Box::new(Expr::Column(3)),
        };
        let out = hash_join(
            &mut db,
            joined_schema(&l, &r),
            &l,
            &r,
            &[0],
            &[0],
            Some(&residual),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples[0].values[1], Value::Int(5));
    }

    #[test]
    fn empty_inputs() {
        let mut db = Database::in_memory();
        let l = rows(&["a"], vec![]);
        let r = rows(&["b"], vec![vec![Value::Int(1)]]);
        assert_eq!(
            nested_loop(&mut db, joined_schema(&l, &r), &l, &r, None)
                .unwrap()
                .len(),
            0
        );
        assert_eq!(
            hash_join(&mut db, joined_schema(&l, &r), &l, &r, &[0], &[0], None)
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn composite_keys() {
        let mut db = Database::in_memory();
        let l = rows(
            &["a", "b"],
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(1), Value::Int(3)],
            ],
        );
        let r = rows(&["a", "b"], vec![vec![Value::Int(1), Value::Int(2)]]);
        let out = hash_join(
            &mut db,
            joined_schema(&l, &r),
            &l,
            &r,
            &[0, 1],
            &[0, 1],
            None,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
    }
}
