//! Grouping and aggregation.

use super::Rows;
use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::types::DataType;
use crate::value::Value;
use std::collections::HashMap;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Count of non-null inputs (or of rows, when the input column is none).
    Count,
    /// Sum of numeric inputs.
    Sum,
    /// Mean of numeric inputs.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AggFunc {
    /// Parse an aggregate keyword.
    pub fn from_keyword(word: &str) -> Option<AggFunc> {
        match word.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// Keyword form.
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One aggregate to compute.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input column in the child schema (`None` = COUNT(*) style).
    pub input: Option<usize>,
    /// Output column name.
    pub name: String,
}

impl AggSpec {
    /// Output type of this aggregate given the input schema.
    pub fn output_type(&self, input_schema: &Schema) -> DataType {
        match self.func {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => self
                .input
                .and_then(|i| input_schema.columns.get(i))
                .map(|c| c.ty)
                .unwrap_or(DataType::Int),
        }
    }
}

/// Running state for one aggregate in one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    SumInt(i64, bool),
    SumFloat(f64, bool),
    Avg(f64, i64),
    MinMax(Option<Value>, bool /* is_min */),
}

impl AggState {
    fn new(spec: &AggSpec, input_schema: &Schema) -> AggState {
        match spec.func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => {
                let is_int = spec
                    .input
                    .and_then(|i| input_schema.columns.get(i))
                    .map(|c| c.ty == DataType::Int)
                    .unwrap_or(true);
                if is_int {
                    AggState::SumInt(0, false)
                } else {
                    AggState::SumFloat(0.0, false)
                }
            }
            AggFunc::Avg => AggState::Avg(0.0, 0),
            AggFunc::Min => AggState::MinMax(None, true),
            AggFunc::Max => AggState::MinMax(None, false),
        }
    }

    fn update(&mut self, v: Option<&Value>) -> RelResult<()> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) counts rows; COUNT(col) counts non-nulls.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggState::SumInt(acc, any) => {
                if let Some(val) = v {
                    match val {
                        Value::Null => {}
                        Value::Int(i) => {
                            *acc = acc
                                .checked_add(*i)
                                .ok_or(RelError::Arithmetic("SUM overflow"))?;
                            *any = true;
                        }
                        other => {
                            return Err(RelError::TypeMismatch {
                                expected: "INT".into(),
                                got: other.type_name().into(),
                            })
                        }
                    }
                }
            }
            AggState::SumFloat(acc, any) => {
                if let Some(val) = v {
                    match val.as_f64() {
                        Some(f) => {
                            *acc += f;
                            *any = true;
                        }
                        None if val.is_null() => {}
                        None => {
                            return Err(RelError::TypeMismatch {
                                expected: "numeric".into(),
                                got: val.type_name().into(),
                            })
                        }
                    }
                }
            }
            AggState::Avg(acc, n) => {
                if let Some(val) = v {
                    match val.as_f64() {
                        Some(f) => {
                            *acc += f;
                            *n += 1;
                        }
                        None if val.is_null() => {}
                        None => {
                            return Err(RelError::TypeMismatch {
                                expected: "numeric".into(),
                                got: val.type_name().into(),
                            })
                        }
                    }
                }
            }
            AggState::MinMax(best, is_min) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let better = match best {
                            None => true,
                            Some(b) => {
                                let ord = val.total_cmp(b);
                                if *is_min {
                                    ord == std::cmp::Ordering::Less
                                } else {
                                    ord == std::cmp::Ordering::Greater
                                }
                            }
                        };
                        if better {
                            *best = Some(val.clone());
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::SumInt(acc, any) => {
                if any {
                    Value::Int(acc)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat(acc, any) => {
                if any {
                    Value::Float(acc)
                } else {
                    Value::Null
                }
            }
            AggState::Avg(acc, n) => {
                if n > 0 {
                    Value::Float(acc / n as f64)
                } else {
                    Value::Null
                }
            }
            AggState::MinMax(best, _) => best.unwrap_or(Value::Null),
        }
    }
}

/// Execute grouping + aggregation over materialized input rows.
///
/// With an empty `group_by`, exactly one output row is produced even for
/// empty input (COUNT = 0, other aggregates NULL) — SQL semantics. Group
/// output order follows first-appearance order of each group, which keeps
/// results deterministic.
pub fn aggregate(
    schema: Schema,
    input: &Rows,
    group_by: &[usize],
    aggs: &[AggSpec],
) -> RelResult<Rows> {
    let mut order: Vec<Vec<u8>> = Vec::new();
    let mut groups: HashMap<Vec<u8>, (Vec<Value>, Vec<AggState>)> = HashMap::new();
    if group_by.is_empty() {
        let states: Vec<AggState> = aggs
            .iter()
            .map(|a| AggState::new(a, &input.schema))
            .collect();
        order.push(Vec::new());
        groups.insert(Vec::new(), (Vec::new(), states));
    }
    for t in &input.tuples {
        let key_vals: Vec<Value> = group_by.iter().map(|&g| t.values[g].clone()).collect();
        let key = Value::encode_composite(&key_vals);
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (
                key_vals,
                aggs.iter()
                    .map(|a| AggState::new(a, &input.schema))
                    .collect(),
            )
        });
        for (spec, state) in aggs.iter().zip(entry.1.iter_mut()) {
            state.update(spec.input.map(|i| &t.values[i]))?;
        }
    }
    let mut tuples = Vec::with_capacity(order.len());
    for key in order {
        let (key_vals, states) = groups.remove(&key).expect("group recorded");
        let mut vals = key_vals;
        vals.extend(states.into_iter().map(AggState::finish));
        tuples.push(Tuple::new(vals));
    }
    Ok(Rows { schema, tuples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn input() -> Rows {
        Rows {
            schema: Schema::new(vec![
                Column::new("dept", DataType::Text),
                Column::new("salary", DataType::Int),
            ]),
            tuples: vec![
                Tuple::new(vec![Value::text("toy"), Value::Int(120)]),
                Tuple::new(vec![Value::text("shoe"), Value::Int(90)]),
                Tuple::new(vec![Value::text("toy"), Value::Int(150)]),
                Tuple::new(vec![Value::text("shoe"), Value::Null]),
            ],
        }
    }

    fn out_schema(group: &[usize], aggs: &[AggSpec], input: &Rows) -> Schema {
        let mut cols: Vec<Column> = group
            .iter()
            .map(|&g| input.schema.column(g).clone())
            .collect();
        for a in aggs {
            cols.push(Column::new(a.name.clone(), a.output_type(&input.schema)));
        }
        Schema::new(cols)
    }

    #[test]
    fn grouped_sum_count_avg() {
        let rows = input();
        let aggs = vec![
            AggSpec {
                func: AggFunc::Sum,
                input: Some(1),
                name: "total".into(),
            },
            AggSpec {
                func: AggFunc::Count,
                input: Some(1),
                name: "n".into(),
            },
            AggSpec {
                func: AggFunc::Avg,
                input: Some(1),
                name: "mean".into(),
            },
        ];
        let schema = out_schema(&[0], &aggs, &rows);
        let out = aggregate(schema, &rows, &[0], &aggs).unwrap();
        assert_eq!(out.len(), 2);
        // First-appearance order: toy then shoe.
        assert_eq!(out.tuples[0].values[0], Value::text("toy"));
        assert_eq!(out.tuples[0].values[1], Value::Int(270));
        assert_eq!(out.tuples[0].values[2], Value::Int(2));
        assert_eq!(out.tuples[0].values[3], Value::Float(135.0));
        // shoe: one null salary → COUNT(col)=1, SUM=90.
        assert_eq!(out.tuples[1].values[1], Value::Int(90));
        assert_eq!(out.tuples[1].values[2], Value::Int(1));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let rows = Rows::empty(input().schema);
        let aggs = vec![
            AggSpec {
                func: AggFunc::Count,
                input: None,
                name: "n".into(),
            },
            AggSpec {
                func: AggFunc::Sum,
                input: Some(1),
                name: "s".into(),
            },
            AggSpec {
                func: AggFunc::Min,
                input: Some(1),
                name: "lo".into(),
            },
        ];
        let schema = out_schema(&[], &aggs, &rows);
        let out = aggregate(schema, &rows, &[], &aggs).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples[0].values[0], Value::Int(0));
        assert!(out.tuples[0].values[1].is_null());
        assert!(out.tuples[0].values[2].is_null());
    }

    #[test]
    fn count_star_counts_null_rows() {
        let rows = input();
        let aggs = vec![
            AggSpec {
                func: AggFunc::Count,
                input: None,
                name: "all".into(),
            },
            AggSpec {
                func: AggFunc::Count,
                input: Some(1),
                name: "nonnull".into(),
            },
        ];
        let schema = out_schema(&[], &aggs, &rows);
        let out = aggregate(schema, &rows, &[], &aggs).unwrap();
        assert_eq!(out.tuples[0].values[0], Value::Int(4));
        assert_eq!(out.tuples[0].values[1], Value::Int(3));
    }

    #[test]
    fn min_max() {
        let rows = input();
        let aggs = vec![
            AggSpec {
                func: AggFunc::Min,
                input: Some(1),
                name: "lo".into(),
            },
            AggSpec {
                func: AggFunc::Max,
                input: Some(1),
                name: "hi".into(),
            },
        ];
        let schema = out_schema(&[], &aggs, &rows);
        let out = aggregate(schema, &rows, &[], &aggs).unwrap();
        assert_eq!(out.tuples[0].values[0], Value::Int(90));
        assert_eq!(out.tuples[0].values[1], Value::Int(150));
    }

    #[test]
    fn min_max_on_text() {
        let rows = input();
        let aggs = vec![
            AggSpec {
                func: AggFunc::Min,
                input: Some(0),
                name: "first".into(),
            },
            AggSpec {
                func: AggFunc::Max,
                input: Some(0),
                name: "last".into(),
            },
        ];
        let schema = out_schema(&[], &aggs, &rows);
        let out = aggregate(schema, &rows, &[], &aggs).unwrap();
        assert_eq!(out.tuples[0].values[0], Value::text("shoe"));
        assert_eq!(out.tuples[0].values[1], Value::text("toy"));
    }

    #[test]
    fn sum_type_error_is_reported() {
        let rows = input();
        let aggs = vec![AggSpec {
            func: AggFunc::Sum,
            input: Some(0),
            name: "bad".into(),
        }];
        let schema = out_schema(&[], &aggs, &rows);
        // Column 0 is TEXT but the state was built expecting numeric — the
        // engine reports a type mismatch instead of silently mangling data.
        assert!(aggregate(schema, &rows, &[], &aggs).is_err());
    }

    #[test]
    fn sum_over_floats() {
        let rows = Rows {
            schema: Schema::new(vec![Column::new("x", DataType::Float)]),
            tuples: vec![
                Tuple::new(vec![Value::Float(1.5)]),
                Tuple::new(vec![Value::Float(2.5)]),
            ],
        };
        let aggs = vec![AggSpec {
            func: AggFunc::Sum,
            input: Some(0),
            name: "s".into(),
        }];
        let schema = out_schema(&[], &aggs, &rows);
        let out = aggregate(schema, &rows, &[], &aggs).unwrap();
        assert_eq!(out.tuples[0].values[0], Value::Float(4.0));
    }

    #[test]
    fn sum_avg_count_over_all_null_group() {
        // A group whose every input is NULL: SUM and AVG come out NULL
        // (not 0), COUNT(col) is 0, while COUNT(*) still counts the rows.
        let rows = Rows {
            schema: Schema::new(vec![
                Column::new("g", DataType::Text),
                Column::new("x", DataType::Int),
            ]),
            tuples: vec![
                Tuple::new(vec![Value::text("n"), Value::Null]),
                Tuple::new(vec![Value::text("n"), Value::Null]),
                Tuple::new(vec![Value::text("v"), Value::Int(5)]),
            ],
        };
        let aggs = vec![
            AggSpec {
                func: AggFunc::Sum,
                input: Some(1),
                name: "s".into(),
            },
            AggSpec {
                func: AggFunc::Avg,
                input: Some(1),
                name: "m".into(),
            },
            AggSpec {
                func: AggFunc::Count,
                input: Some(1),
                name: "n".into(),
            },
            AggSpec {
                func: AggFunc::Count,
                input: None,
                name: "all".into(),
            },
        ];
        let schema = out_schema(&[0], &aggs, &rows);
        let out = aggregate(schema, &rows, &[0], &aggs).unwrap();
        assert_eq!(out.len(), 2);
        let null_group = &out.tuples[0];
        assert_eq!(null_group.values[0], Value::text("n"));
        assert!(null_group.values[1].is_null(), "SUM over all-NULL is NULL");
        assert!(null_group.values[2].is_null(), "AVG over all-NULL is NULL");
        assert_eq!(null_group.values[3], Value::Int(0));
        assert_eq!(null_group.values[4], Value::Int(2));
        let live_group = &out.tuples[1];
        assert_eq!(live_group.values[1], Value::Int(5));
        assert_eq!(live_group.values[2], Value::Float(5.0));
        assert_eq!(live_group.values[3], Value::Int(1));
    }

    #[test]
    fn float_sum_and_minmax_over_all_nulls_are_null() {
        let rows = Rows {
            schema: Schema::new(vec![Column::new("x", DataType::Float)]),
            tuples: vec![Tuple::new(vec![Value::Null]), Tuple::new(vec![Value::Null])],
        };
        let aggs = vec![
            AggSpec {
                func: AggFunc::Sum,
                input: Some(0),
                name: "s".into(),
            },
            AggSpec {
                func: AggFunc::Min,
                input: Some(0),
                name: "lo".into(),
            },
            AggSpec {
                func: AggFunc::Max,
                input: Some(0),
                name: "hi".into(),
            },
        ];
        let schema = out_schema(&[], &aggs, &rows);
        let out = aggregate(schema, &rows, &[], &aggs).unwrap();
        assert!(out.tuples[0].values.iter().all(Value::is_null));
    }

    #[test]
    fn group_by_null_values_forms_a_group() {
        let rows = Rows {
            schema: Schema::new(vec![
                Column::new("g", DataType::Text),
                Column::new("x", DataType::Int),
            ]),
            tuples: vec![
                Tuple::new(vec![Value::Null, Value::Int(1)]),
                Tuple::new(vec![Value::Null, Value::Int(2)]),
                Tuple::new(vec![Value::text("a"), Value::Int(3)]),
            ],
        };
        let aggs = vec![AggSpec {
            func: AggFunc::Sum,
            input: Some(1),
            name: "s".into(),
        }];
        let schema = out_schema(&[0], &aggs, &rows);
        let out = aggregate(schema, &rows, &[0], &aggs).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.tuples[0].values[0].is_null());
        assert_eq!(out.tuples[0].values[1], Value::Int(3));
    }
}
