//! Physical query plans and their execution.
//!
//! Plans are trees of [`PhysicalPlan`] nodes produced by the optimizer
//! ([`crate::plan`]). [`execute`] compiles a plan into the pull-based
//! [`stream`] operator tree and drains it, so limits stop pulling (and
//! scanning) as soon as their quota is met; `wow-core` drives the same
//! operator trees incrementally to page join views. The original
//! materialize-everything recursion survives as [`execute_materializing`] —
//! the semantic reference the streaming path is property-tested against,
//! and the baseline the Table 2b experiment measures limit pushdown over.
//!
//! Operators:
//!
//! * scans: sequential with optional pushed-down predicate, index equality,
//!   index range (this module, streaming in [`stream`]);
//! * [`Filter`](PhysicalPlan::Filter), [`Project`](PhysicalPlan::Project),
//!   [`Limit`](PhysicalPlan::Limit) (this module and [`stream`]);
//! * joins — [`join`]: nested-loop (the 1983 baseline) and hash (the
//!   comparison point Figure 2 sweeps);
//! * [`sort`] and [`aggregate`] (pipeline breakers in the streaming path).

pub mod aggregate;
pub mod analyze;
pub mod join;
pub mod par;
pub mod sort;
pub mod stream;

pub use aggregate::{AggFunc, AggSpec};
pub use analyze::{NodeStats, PlanProfile};
pub use stream::{build_operator, Operator, TupleBlock, BLOCK_CAP};

use crate::catalog::IndexKind;
use crate::db::{Database, IndexHandle};
use crate::error::{RelError, RelResult};
use crate::eval::{eval, eval_pred};
use crate::expr::Expr;
use crate::schema::{Column, Schema};
use crate::tuple::Tuple;
use crate::types::DataType;
use crate::value::Value;
use std::ops::Bound;

/// A materialized result: schema plus tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct Rows {
    /// Column names/types of the result.
    pub schema: Schema,
    /// The tuples.
    pub tuples: Vec<Tuple>,
}

impl Rows {
    /// An empty result with the given schema.
    pub fn empty(schema: Schema) -> Rows {
        Rows {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Render as simple aligned text (used by examples and the repro tool).
    pub fn to_table_string(&self) -> String {
        let headers: Vec<&str> = self
            .schema
            .columns
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let cells: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| t.values.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, h) in headers.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", h, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in headers.iter().enumerate() {
            out.push_str(&format!("{}  ", "-".repeat(widths[i])));
        }
        out.push('\n');
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// An inclusive/exclusive bound on the leading index column.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyBound {
    /// Values for the index's leading column(s).
    pub values: Vec<Value>,
    /// Whether the bound itself is included.
    pub inclusive: bool,
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Full scan of a table, with an optional pushed-down predicate
    /// (resolved against the alias-qualified table schema).
    SeqScan {
        /// Table name.
        table: String,
        /// Range-variable alias qualifying the output columns.
        alias: String,
        /// Residual predicate applied during the scan.
        pred: Option<Expr>,
    },
    /// Equality probe of an index.
    IndexScanEq {
        /// Table name.
        table: String,
        /// Alias for output columns.
        alias: String,
        /// Index name.
        index: String,
        /// Key values (the index's full column list).
        key: Vec<Value>,
        /// Residual predicate applied to fetched rows.
        residual: Option<Expr>,
    },
    /// Ordered range scan of a B+tree index (also used for full ordered
    /// scans when both bounds are `None`).
    IndexRange {
        /// Table name.
        table: String,
        /// Alias for output columns.
        alias: String,
        /// Index name (must be a B+tree).
        index: String,
        /// Lower bound on the leading column.
        lower: Option<KeyBound>,
        /// Upper bound on the leading column.
        upper: Option<KeyBound>,
        /// Residual predicate applied to fetched rows.
        residual: Option<Expr>,
    },
    /// Filter rows by a predicate.
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Predicate (resolved against the input schema).
        pred: Expr,
    },
    /// Compute output expressions.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Output expressions (resolved against the input schema).
        exprs: Vec<Expr>,
        /// Output column names.
        names: Vec<String>,
    },
    /// Nested-loop join with an arbitrary predicate.
    NestedLoopJoin {
        /// Left (outer) input.
        left: Box<PhysicalPlan>,
        /// Right (inner) input.
        right: Box<PhysicalPlan>,
        /// Join predicate over the concatenated schema (`None` = cross).
        pred: Option<Expr>,
    },
    /// Hash equi-join.
    HashJoin {
        /// Left (probe) input.
        left: Box<PhysicalPlan>,
        /// Right (build) input.
        right: Box<PhysicalPlan>,
        /// Key columns in the left schema.
        left_keys: Vec<usize>,
        /// Key columns in the right schema.
        right_keys: Vec<usize>,
        /// Residual predicate over the concatenated schema.
        residual: Option<Expr>,
    },
    /// Sort by columns.
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// `(column, ascending)` sort keys, most significant first.
        keys: Vec<(usize, bool)>,
    },
    /// Group and aggregate.
    Aggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Grouping columns (empty = a single global group).
        group_by: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
    /// Offset/limit.
    Limit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Rows to skip.
        offset: usize,
        /// Max rows to emit (`None` = unlimited).
        count: Option<usize>,
    },
    /// Drop duplicate rows, keeping first occurrences (order-preserving,
    /// so a sort below survives). `RETRIEVE UNIQUE`.
    Distinct {
        /// Input plan.
        input: Box<PhysicalPlan>,
    },
}

impl PhysicalPlan {
    /// The schema of this plan's output.
    pub fn output_schema(&self, db: &Database) -> RelResult<Schema> {
        match self {
            PhysicalPlan::SeqScan { table, alias, .. }
            | PhysicalPlan::IndexScanEq { table, alias, .. }
            | PhysicalPlan::IndexRange { table, alias, .. } => {
                Ok(db.catalog().table(table)?.schema.qualified(alias))
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => input.output_schema(db),
            PhysicalPlan::Sort { input, .. } => input.output_schema(db),
            PhysicalPlan::Project {
                input,
                exprs,
                names,
            } => {
                let in_schema = input.output_schema(db)?;
                let mut columns = Vec::with_capacity(exprs.len());
                for (e, n) in exprs.iter().zip(names) {
                    columns.push(Column {
                        name: n.clone(),
                        ty: infer_type(e, &in_schema).unwrap_or(DataType::Text),
                        nullable: true,
                    });
                }
                Ok(Schema::new(columns))
            }
            PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. } => {
                let l = left.output_schema(db)?;
                let r = right.output_schema(db)?;
                // Children are already alias-qualified; aliases here are moot.
                Ok(Schema::join(&l, "l", &r, "r"))
            }
            PhysicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.output_schema(db)?;
                let mut columns = Vec::with_capacity(group_by.len() + aggs.len());
                for &g in group_by {
                    columns.push(in_schema.column(g).clone());
                }
                for a in aggs {
                    columns.push(Column {
                        name: a.name.clone(),
                        ty: a.output_type(&in_schema),
                        nullable: true,
                    });
                }
                Ok(Schema::new(columns))
            }
        }
    }

    /// Total number of operator nodes (used by plan tests).
    pub fn node_count(&self) -> usize {
        1 + match self {
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Aggregate { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => input.node_count(),
            PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. } => left.node_count() + right.node_count(),
            _ => 0,
        }
    }

    /// Pretty multi-line plan rendering (EXPLAIN output).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PhysicalPlan::SeqScan { table, alias, pred } => {
                out.push_str(&format!("{pad}SeqScan {table} AS {alias}"));
                if let Some(p) = pred {
                    out.push_str(&format!(" WHERE {p}"));
                }
                out.push('\n');
            }
            PhysicalPlan::IndexScanEq {
                table,
                alias,
                index,
                key,
                residual,
            } => {
                out.push_str(&format!(
                    "{pad}IndexScanEq {table} AS {alias} USING {index} KEY {key:?}"
                ));
                if let Some(p) = residual {
                    out.push_str(&format!(" WHERE {p}"));
                }
                out.push('\n');
            }
            PhysicalPlan::IndexRange {
                table,
                alias,
                index,
                lower,
                upper,
                residual,
            } => {
                out.push_str(&format!(
                    "{pad}IndexRange {table} AS {alias} USING {index} [{lower:?}, {upper:?}]"
                ));
                if let Some(p) = residual {
                    out.push_str(&format!(" WHERE {p}"));
                }
                out.push('\n');
            }
            PhysicalPlan::Filter { input, pred } => {
                out.push_str(&format!("{pad}Filter {pred}\n"));
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::Project { input, names, .. } => {
                out.push_str(&format!("{pad}Project {}\n", names.join(", ")));
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::NestedLoopJoin { left, right, pred } => {
                out.push_str(&format!(
                    "{pad}NestedLoopJoin{}\n",
                    pred.as_ref()
                        .map(|p| format!(" ON {p}"))
                        .unwrap_or_default()
                ));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                ..
            } => {
                out.push_str(&format!("{pad}HashJoin L{left_keys:?} = R{right_keys:?}\n"));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysicalPlan::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort {keys:?}\n"));
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let names: Vec<&str> = aggs.iter().map(|a| a.name.as_str()).collect();
                out.push_str(&format!(
                    "{pad}Aggregate BY {group_by:?} COMPUTE {}\n",
                    names.join(", ")
                ));
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::Limit {
                input,
                offset,
                count,
            } => {
                out.push_str(&format!("{pad}Limit offset={offset} count={count:?}\n"));
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// Infer the output type of an expression against a schema. `None` when the
/// expression is untypable (e.g. a bare NULL literal).
pub fn infer_type(expr: &Expr, schema: &Schema) -> Option<DataType> {
    match expr {
        Expr::Column(i) => schema.columns.get(*i).map(|c| c.ty),
        Expr::ColumnRef(n) => schema.index_of(n).map(|i| schema.columns[i].ty),
        Expr::Literal(v) => v.data_type(),
        Expr::Binary { op, left, right } => {
            if op.is_comparison() || matches!(op, crate::expr::BinOp::And | crate::expr::BinOp::Or)
            {
                Some(DataType::Bool)
            } else {
                let l = infer_type(left, schema)?;
                let r = infer_type(right, schema)?;
                if l == DataType::Int && r == DataType::Int {
                    Some(DataType::Int)
                } else {
                    Some(DataType::Float)
                }
            }
        }
        Expr::Unary {
            op: crate::expr::UnOp::Not,
            ..
        } => Some(DataType::Bool),
        Expr::Unary {
            op: crate::expr::UnOp::Neg,
            expr,
        } => infer_type(expr, schema),
        Expr::Like { .. } | Expr::IsNull(_) => Some(DataType::Bool),
    }
}

/// Execute a physical plan to completion.
///
/// Compiles the plan into a [`stream`] operator tree and collects the
/// blocks, so limit pushdown and scan readahead apply even to callers that
/// want a fully materialized [`Rows`].
pub fn execute(db: &mut Database, plan: &PhysicalPlan) -> RelResult<Rows> {
    let mut span = wow_obs::span(wow_obs::Op::QueryExec);
    let schema = plan.output_schema(db)?;
    let mut op = stream::build_operator(db, plan, None)?;
    let mut tuples = Vec::new();
    while let Some(block) = op.next_block(db)? {
        tuples.extend(block.tuples);
    }
    span.arg(tuples.len() as u64);
    Ok(Rows { schema, tuples })
}

/// Execute a physical plan to completion while profiling every operator
/// (EXPLAIN ANALYZE).
///
/// Identical semantics to [`execute`], plus a [`PlanProfile`] with one
/// [`NodeStats`] per plan node in [`PhysicalPlan::explain`] pre-order —
/// render it with [`PlanProfile::render`]. When the tracer is recording,
/// the same instrumentation also emits one `exec_op` span per operator,
/// linked into the surrounding trace.
pub fn execute_analyzed(db: &mut Database, plan: &PhysicalPlan) -> RelResult<(Rows, PlanProfile)> {
    let mut span = wow_obs::span(wow_obs::Op::QueryExec);
    let schema = plan.output_schema(db)?;
    let sink = std::rc::Rc::new(std::cell::RefCell::new(vec![
        NodeStats::default();
        plan.node_count()
    ]));
    let mut op = stream::build_profiled(db, plan, None, sink.clone())?;
    let mut tuples = Vec::new();
    while let Some(block) = op.next_block(db)? {
        tuples.extend(block.tuples);
    }
    // Operators above a satisfied limit flush at exhaustion; everything
    // below flushes on drop.
    drop(op);
    span.arg(tuples.len() as u64);
    let nodes = sink.borrow().clone();
    Ok((Rows { schema, tuples }, PlanProfile { nodes }))
}

/// Execute a physical plan by materializing every operator's full output —
/// the pre-streaming semantics. Kept as the reference implementation for
/// equivalence tests and as the comparison baseline for the limit-pushdown
/// experiment (Table 2b).
pub fn execute_materializing(db: &mut Database, plan: &PhysicalPlan) -> RelResult<Rows> {
    match plan {
        PhysicalPlan::SeqScan { table, alias, pred } => seq_scan(db, table, alias, pred.as_ref()),
        PhysicalPlan::IndexScanEq {
            table,
            alias,
            index,
            key,
            residual,
        } => index_scan_eq(db, table, alias, index, key, residual.as_ref()),
        PhysicalPlan::IndexRange {
            table,
            alias,
            index,
            lower,
            upper,
            residual,
        } => index_range(
            db,
            table,
            alias,
            index,
            lower.as_ref(),
            upper.as_ref(),
            residual.as_ref(),
        ),
        PhysicalPlan::Filter { input, pred } => {
            let mut rows = execute_materializing(db, input)?;
            let mut err = None;
            rows.tuples.retain(|t| match eval_pred(pred, t) {
                Ok(keep) => keep,
                Err(e) => {
                    err = Some(e);
                    false
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            Ok(rows)
        }
        PhysicalPlan::Project {
            input,
            exprs,
            names,
        } => {
            let schema = plan.output_schema(db)?;
            let rows = execute_materializing(db, input)?;
            let mut tuples = Vec::with_capacity(rows.tuples.len());
            for t in &rows.tuples {
                let mut vals = Vec::with_capacity(exprs.len());
                for e in exprs {
                    vals.push(eval(e, t)?);
                }
                tuples.push(Tuple::new(vals));
            }
            let _ = names;
            Ok(Rows { schema, tuples })
        }
        PhysicalPlan::NestedLoopJoin { left, right, pred } => {
            let schema = plan.output_schema(db)?;
            let l = execute_materializing(db, left)?;
            let r = execute_materializing(db, right)?;
            join::nested_loop(db, schema, &l, &r, pred.as_ref())
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            let schema = plan.output_schema(db)?;
            let l = execute_materializing(db, left)?;
            let r = execute_materializing(db, right)?;
            join::hash_join(db, schema, &l, &r, left_keys, right_keys, residual.as_ref())
        }
        PhysicalPlan::Sort { input, keys } => {
            let mut rows = execute_materializing(db, input)?;
            sort::sort_rows(&mut rows.tuples, keys);
            Ok(rows)
        }
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let schema = plan.output_schema(db)?;
            let rows = execute_materializing(db, input)?;
            aggregate::aggregate(schema, &rows, group_by, aggs)
        }
        PhysicalPlan::Limit {
            input,
            offset,
            count,
        } => {
            let mut rows = execute_materializing(db, input)?;
            let start = (*offset).min(rows.tuples.len());
            let end = match count {
                Some(c) => (start + c).min(rows.tuples.len()),
                None => rows.tuples.len(),
            };
            rows.tuples = rows.tuples[start..end].to_vec();
            Ok(rows)
        }
        PhysicalPlan::Distinct { input } => {
            let mut rows = execute_materializing(db, input)?;
            let mut seen = std::collections::HashSet::new();
            rows.tuples
                .retain(|t| seen.insert(Value::encode_composite(&t.values)));
            Ok(rows)
        }
    }
}

fn seq_scan(db: &mut Database, table: &str, alias: &str, pred: Option<&Expr>) -> RelResult<Rows> {
    let info = db.catalog().table(table)?;
    let (table_id, schema) = (info.id, info.schema.qualified(alias));
    let raw = db.scan_table_raw(table_id)?;
    let mut tuples = Vec::new();
    for (_, t) in raw {
        let keep = match pred {
            Some(p) => eval_pred(p, &t)?,
            None => true,
        };
        if keep {
            tuples.push(t);
        }
    }
    Ok(Rows { schema, tuples })
}

fn fetch_rids(
    db: &mut Database,
    table_id: crate::catalog::TableId,
    rids: &[wow_storage::Rid],
) -> RelResult<Vec<Tuple>> {
    let mut out = Vec::with_capacity(rids.len());
    for &rid in rids {
        if let Some(t) = db.get_row(table_id, rid)? {
            out.push(t);
        }
    }
    Ok(out)
}

fn index_scan_eq(
    db: &mut Database,
    table: &str,
    alias: &str,
    index: &str,
    key: &[Value],
    residual: Option<&Expr>,
) -> RelResult<Rows> {
    let info = db.catalog().table(table)?;
    let (table_id, schema) = (info.id, info.schema.qualified(alias));
    let rids = db.index_lookup(index, key)?;
    let mut tuples = fetch_rids(db, table_id, &rids)?;
    if let Some(p) = residual {
        let mut err = None;
        tuples.retain(|t| match eval_pred(p, t) {
            Ok(k) => k,
            Err(e) => {
                err = Some(e);
                false
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
    }
    Ok(Rows { schema, tuples })
}

/// Collect the rids of a B+tree index range scan in key order (shared by
/// the materializing and streaming range-scan operators).
pub(crate) fn range_rids(
    db: &mut Database,
    index: &str,
    lower: Option<&KeyBound>,
    upper: Option<&KeyBound>,
) -> RelResult<Vec<wow_storage::Rid>> {
    let kind = db.catalog().index(index)?.kind;
    if kind != IndexKind::BTree {
        return Err(RelError::Unsupported(
            "range scan requires a B+tree index".into(),
        ));
    }
    let lower_key = lower.map(|b| Value::encode_composite(&b.values));
    let upper_key = upper.map(|b| Value::encode_composite(&b.values));
    let lower_incl = lower.map(|b| b.inclusive).unwrap_or(true);
    let upper_incl = upper.map(|b| b.inclusive).unwrap_or(true);
    db.counters.index_probes += 1;
    let mut rids = Vec::new();
    let IndexHandle::BTree(tree) = db.indexes.get(index).expect("handle exists") else {
        unreachable!("kind checked above");
    };
    let lb: Bound<&[u8]> = match &lower_key {
        Some(k) => Bound::Included(k.as_slice()),
        None => Bound::Unbounded,
    };
    tree.range_scan(&db.pool, lb, Bound::Unbounded, |ek, rid| {
        if let Some(lk) = &lower_key {
            if !lower_incl && ek.starts_with(lk) {
                return true; // skip the excluded lower key, keep going
            }
        }
        if let Some(uk) = &upper_key {
            let is_prefix = ek.starts_with(uk.as_slice());
            if is_prefix && !upper_incl {
                return false;
            }
            if !is_prefix && ek > uk.as_slice() {
                return false;
            }
        }
        rids.push(rid);
        true
    })?;
    Ok(rids)
}

fn index_range(
    db: &mut Database,
    table: &str,
    alias: &str,
    index: &str,
    lower: Option<&KeyBound>,
    upper: Option<&KeyBound>,
    residual: Option<&Expr>,
) -> RelResult<Rows> {
    let info = db.catalog().table(table)?;
    let (table_id, schema) = (info.id, info.schema.qualified(alias));
    let rids = range_rids(db, index, lower, upper)?;
    let mut tuples = fetch_rids(db, table_id, &rids)?;
    if let Some(p) = residual {
        let mut err = None;
        tuples.retain(|t| match eval_pred(p, t) {
            Ok(k) => k,
            Err(e) => {
                err = Some(e);
                false
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
    }
    Ok(Rows { schema, tuples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IndexKind;
    use crate::expr::BinOp;
    use crate::schema::{Column, Schema};
    use crate::value::Value;

    fn db_with_data() -> Database {
        let mut db = Database::in_memory();
        db.create_table(
            "emp",
            Schema::new(vec![
                Column::not_null("name", DataType::Text),
                Column::new("dept", DataType::Text),
                Column::new("salary", DataType::Int),
            ]),
            &["name"],
        )
        .unwrap();
        db.create_index("emp_dept", "emp", "dept", IndexKind::Hash, false)
            .unwrap();
        db.create_index("emp_salary", "emp", "salary", IndexKind::BTree, false)
            .unwrap();
        for (n, d, s) in [
            ("alice", "toy", 120),
            ("bob", "shoe", 90),
            ("carol", "toy", 150),
            ("dave", "candy", 70),
            ("erin", "shoe", 110),
        ] {
            db.insert("emp", vec![Value::text(n), Value::text(d), Value::Int(s)])
                .unwrap();
        }
        db
    }

    fn resolved(db: &Database, alias: &str, e: Expr) -> Expr {
        let schema = db.catalog().table("emp").unwrap().schema.qualified(alias);
        e.resolve(&schema).unwrap()
    }

    #[test]
    fn seq_scan_all_and_filtered() {
        let mut db = db_with_data();
        let plan = PhysicalPlan::SeqScan {
            table: "emp".into(),
            alias: "e".into(),
            pred: None,
        };
        let rows = execute(&mut db, &plan).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows.schema.columns[0].name, "e.name");

        let pred = resolved(&db, "e", Expr::col_eq("e.dept", Value::text("toy")));
        let plan = PhysicalPlan::SeqScan {
            table: "emp".into(),
            alias: "e".into(),
            pred: Some(pred),
        };
        assert_eq!(execute(&mut db, &plan).unwrap().len(), 2);
    }

    #[test]
    fn index_eq_scan_matches_seq_scan() {
        let mut db = db_with_data();
        let plan = PhysicalPlan::IndexScanEq {
            table: "emp".into(),
            alias: "e".into(),
            index: "emp_dept".into(),
            key: vec![Value::text("shoe")],
            residual: None,
        };
        let rows = execute(&mut db, &plan).unwrap();
        assert_eq!(rows.len(), 2);
        let names: Vec<String> = rows
            .tuples
            .iter()
            .map(|t| t.values[0].to_string())
            .collect();
        assert!(names.contains(&"bob".to_string()));
        assert!(names.contains(&"erin".to_string()));
    }

    #[test]
    fn index_range_bounds() {
        let mut db = db_with_data();
        let mk =
            |lower: Option<(i64, bool)>, upper: Option<(i64, bool)>| PhysicalPlan::IndexRange {
                table: "emp".into(),
                alias: "e".into(),
                index: "emp_salary".into(),
                lower: lower.map(|(v, inclusive)| KeyBound {
                    values: vec![Value::Int(v)],
                    inclusive,
                }),
                upper: upper.map(|(v, inclusive)| KeyBound {
                    values: vec![Value::Int(v)],
                    inclusive,
                }),
                residual: None,
            };
        // salary >= 110 → alice(120), carol(150), erin(110)
        let rows = execute(&mut db, &mk(Some((110, true)), None)).unwrap();
        assert_eq!(rows.len(), 3);
        // salary > 110 → alice, carol
        let rows = execute(&mut db, &mk(Some((110, false)), None)).unwrap();
        assert_eq!(rows.len(), 2);
        // 90 <= salary <= 120 → bob, erin, alice
        let rows = execute(&mut db, &mk(Some((90, true)), Some((120, true)))).unwrap();
        assert_eq!(rows.len(), 3);
        // 90 < salary < 120 → erin
        let rows = execute(&mut db, &mk(Some((90, false)), Some((120, false)))).unwrap();
        assert_eq!(rows.len(), 1);
        // Unbounded both ways → everything, in salary order.
        let rows = execute(&mut db, &mk(None, None)).unwrap();
        let sals: Vec<i64> = rows
            .tuples
            .iter()
            .map(|t| match t.values[2] {
                Value::Int(i) => i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(sals, vec![70, 90, 110, 120, 150]);
    }

    #[test]
    fn project_computes_expressions() {
        let mut db = db_with_data();
        let schema = db.catalog().table("emp").unwrap().schema.qualified("e");
        let raise = Expr::Binary {
            op: BinOp::Mul,
            left: Box::new(Expr::ColumnRef("e.salary".into())),
            right: Box::new(Expr::Literal(Value::Int(2))),
        }
        .resolve(&schema)
        .unwrap();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::SeqScan {
                table: "emp".into(),
                alias: "e".into(),
                pred: None,
            }),
            exprs: vec![Expr::Column(0), raise],
            names: vec!["name".into(), "double_salary".into()],
        };
        let rows = execute(&mut db, &plan).unwrap();
        assert_eq!(rows.schema.columns[1].name, "double_salary");
        assert_eq!(rows.schema.columns[1].ty, DataType::Int);
        let alice = rows
            .tuples
            .iter()
            .find(|t| t.values[0] == Value::text("alice"))
            .unwrap();
        assert_eq!(alice.values[1], Value::Int(240));
    }

    #[test]
    fn limit_and_offset() {
        let mut db = db_with_data();
        let base = PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::SeqScan {
                table: "emp".into(),
                alias: "e".into(),
                pred: None,
            }),
            keys: vec![(2, true)],
        };
        let plan = PhysicalPlan::Limit {
            input: Box::new(base.clone()),
            offset: 1,
            count: Some(2),
        };
        let rows = execute(&mut db, &plan).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.tuples[0].values[2], Value::Int(90));
        // Offset past the end.
        let plan = PhysicalPlan::Limit {
            input: Box::new(base),
            offset: 100,
            count: Some(2),
        };
        assert_eq!(execute(&mut db, &plan).unwrap().len(), 0);
    }

    #[test]
    fn explain_renders_tree() {
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::SeqScan {
                table: "emp".into(),
                alias: "e".into(),
                pred: None,
            }),
            offset: 0,
            count: Some(1),
        };
        let text = plan.explain();
        assert!(text.contains("Limit"));
        assert!(text.contains("SeqScan emp AS e"));
        assert_eq!(plan.node_count(), 2);
    }

    #[test]
    fn to_table_string_aligns() {
        let mut db = db_with_data();
        let plan = PhysicalPlan::SeqScan {
            table: "emp".into(),
            alias: "e".into(),
            pred: None,
        };
        let rows = execute(&mut db, &plan).unwrap();
        let s = rows.to_table_string();
        assert!(s.lines().count() >= 7);
        assert!(s.contains("e.name"));
    }
}
