//! EXPLAIN ANALYZE: per-operator execution statistics.
//!
//! [`super::execute_analyzed`] runs a plan through the streaming executor
//! with every operator wrapped in an instrumentation shim that counts the
//! rows and blocks it emits and the time spent pulling it (inclusive of
//! its children, like the wall-clock numbers of a conventional EXPLAIN
//! ANALYZE). The result is a [`PlanProfile`]: one [`NodeStats`] per plan
//! node, indexed in the same pre-order as [`PhysicalPlan::explain`] emits
//! its lines — so [`PlanProfile::render`] can annotate the familiar plan
//! text line by line.
//!
//! Rows *in* are not measured separately: an operator's input rows are by
//! construction the rows its children emitted, so the render derives them
//! from the child nodes' `rows_out` (leaves show no `rows_in`). In the
//! vectorized fused pipeline the `SeqScan` node reports post-predicate
//! survivors, exactly like the row engine's predicate-pushing scan.

use super::PhysicalPlan;

/// Execution statistics for one plan node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Rows this operator emitted.
    pub rows_out: u64,
    /// Non-empty blocks (row path) or batches (vectorized path) emitted.
    pub batches: u64,
    /// Wall-clock time spent inside this operator's pulls, inclusive of
    /// its children.
    pub elapsed_ns: u64,
}

/// Per-node statistics for a whole plan, pre-order indexed (node `0` is
/// the root) to align with [`PhysicalPlan::explain`]'s one-line-per-node
/// output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanProfile {
    /// One entry per plan node, in explain pre-order.
    pub nodes: Vec<NodeStats>,
}

impl PlanProfile {
    /// The root node's statistics (the whole query's output).
    pub fn root(&self) -> NodeStats {
        self.nodes.first().copied().unwrap_or_default()
    }

    /// Annotate `plan.explain()` with the measured statistics, one
    /// `(actual ...)` suffix per line. `rows_in` appears only on interior
    /// nodes and is the sum of the children's `rows_out`.
    pub fn render(&self, plan: &PhysicalPlan) -> String {
        let explain = plan.explain();
        let mut children = vec![Vec::new(); plan.node_count()];
        preorder_children(plan, 0, &mut children);
        let mut out = String::new();
        for (i, line) in explain.lines().enumerate() {
            let stats = self.nodes.get(i).copied().unwrap_or_default();
            out.push_str(line);
            out.push_str("  (actual");
            if !children[i].is_empty() {
                let rows_in: u64 = children[i]
                    .iter()
                    .map(|&c| self.nodes.get(c).map_or(0, |s| s.rows_out))
                    .sum();
                out.push_str(&format!(" rows_in={rows_in}"));
            }
            out.push_str(&format!(
                " rows={} batches={} time={:.3}ms)\n",
                stats.rows_out,
                stats.batches,
                stats.elapsed_ns as f64 / 1e6,
            ));
        }
        out
    }
}

/// Immediate children of a plan node, left to right.
fn plan_children(plan: &PhysicalPlan) -> Vec<&PhysicalPlan> {
    match plan {
        PhysicalPlan::SeqScan { .. }
        | PhysicalPlan::IndexScanEq { .. }
        | PhysicalPlan::IndexRange { .. } => Vec::new(),
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Aggregate { input, .. }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Distinct { input } => vec![input],
        PhysicalPlan::NestedLoopJoin { left, right, .. }
        | PhysicalPlan::HashJoin { left, right, .. } => vec![left, right],
    }
}

/// Fill `children[i]` with the pre-order indices of node `i`'s immediate
/// children; returns the subtree's node count.
fn preorder_children(plan: &PhysicalPlan, idx: usize, children: &mut Vec<Vec<usize>>) -> usize {
    let mut next = idx + 1;
    let mut kids = Vec::new();
    for child in plan_children(plan) {
        kids.push(next);
        next += preorder_children(child, next, children);
    }
    children[idx] = kids;
    next - idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(t: &str) -> PhysicalPlan {
        PhysicalPlan::SeqScan {
            table: t.into(),
            alias: "a".into(),
            pred: None,
        }
    }

    #[test]
    fn preorder_indices_match_explain_lines() {
        // Limit(HashJoin(Sort(SeqScan l), SeqScan r)): pre-order is
        // Limit=0 HashJoin=1 Sort=2 SeqScan=3 SeqScan=4.
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(PhysicalPlan::Sort {
                    input: Box::new(scan("l")),
                    keys: vec![(0, true)],
                }),
                right: Box::new(scan("r")),
                left_keys: vec![0],
                right_keys: vec![0],
                residual: None,
            }),
            offset: 0,
            count: Some(5),
        };
        let mut children = vec![Vec::new(); plan.node_count()];
        let n = preorder_children(&plan, 0, &mut children);
        assert_eq!(n, 5);
        assert_eq!(children[0], vec![1], "limit -> join");
        assert_eq!(children[1], vec![2, 4], "join -> sort, right scan");
        assert_eq!(children[2], vec![3], "sort -> left scan");
        assert!(children[3].is_empty() && children[4].is_empty());
        // Explain emits the same number of lines as there are nodes.
        assert_eq!(plan.explain().lines().count(), 5);
    }

    #[test]
    fn render_annotates_every_line() {
        let plan = PhysicalPlan::Limit {
            input: Box::new(scan("t")),
            offset: 0,
            count: Some(2),
        };
        let profile = PlanProfile {
            nodes: vec![
                NodeStats {
                    rows_out: 2,
                    batches: 1,
                    elapsed_ns: 1_500_000,
                },
                NodeStats {
                    rows_out: 10,
                    batches: 1,
                    elapsed_ns: 1_000_000,
                },
            ],
        };
        let text = profile.render(&plan);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("Limit") && lines[0].contains("rows_in=10 rows=2 batches=1"),
            "interior node derives rows_in from its child: {}",
            lines[0]
        );
        assert!(
            lines[1].contains("SeqScan") && lines[1].contains("(actual rows=10"),
            "leaves carry no rows_in: {}",
            lines[1]
        );
        assert!(lines[0].contains("time=1.500ms"));
    }
}
