//! Pull-based streaming execution over batched tuple blocks.
//!
//! A [`PhysicalPlan`] is compiled by [`build_operator`] into a tree of
//! [`Operator`]s, each of which yields [`TupleBlock`]s of up to
//! [`BLOCK_CAP`] tuples on demand. Scans, filter, project, limit, and the
//! join probe sides are fully streaming; sort, aggregate, and the join
//! build sides are pipeline breakers that drain their input on first pull.
//!
//! The payoff is limit pushdown for free: a `Limit` that has emitted its
//! quota simply stops pulling, so a `Limit 16` over a 100k-row relation
//! reads a page or two instead of materializing the table. `build_operator`
//! additionally threads an explicit *stop hint* (the maximum number of rows
//! an ancestor will ever consume) down through cardinality-preserving
//! operators, which lets sequential scans stop mid-block and lets a sort
//! below a limit truncate its output.
//!
//! Operators never hold a borrow of the database between pulls: every
//! [`Operator::next_block`] call is handed `&mut Database` afresh, so the
//! tree can be built once and driven incrementally (the browse cursors in
//! `wow-core` rely on this to page join views without materializing them).
//!
//! # Vectorized twin
//!
//! When [`Database::vectorized`] is on, `SeqScan`-rooted `Filter`/`Project`
//! chains are compiled into a **batch pipeline** instead: the scan reads
//! raw row bytes, decodes only the columns the query touches into
//! column-oriented [`Batch`]es of [`Database::batch_size`] rows, filters
//! them through programs compiled once per query
//! ([`crate::eval::compile`]), and materializes the remaining columns only
//! for rows that survive (late materialization). Everything else — joins,
//! sort, aggregate, distinct, limit, index scans — stays row-at-a-time and
//! consumes the chain through an adapter, so the row engine remains the
//! reference twin and is selected automatically for non-batchable plans.

use super::analyze::NodeStats;
use super::{aggregate, par, range_rids, sort, PhysicalPlan, Rows};
use crate::catalog::TableId;
use crate::db::Database;
use crate::error::{RelError, RelResult};
use crate::eval::compile::{self, Batch, Program, Scratch};
use crate::eval::{eval, eval_pred};
use crate::expr::Expr;
use crate::tuple::Tuple;
use crate::value::{decode_row, decode_row_cols, Value};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashSet};
use std::rc::Rc;
use std::time::Instant;
use wow_obs::TraceContext;
use wow_storage::Rid;

/// Target number of tuples per [`TupleBlock`]. Operators may emit smaller
/// blocks (page boundaries, filters) and joins may overshoot by one match
/// list; consumers must not rely on exact sizing.
pub const BLOCK_CAP: usize = 1024;

/// A batch of tuples flowing between streaming operators.
#[derive(Debug, Clone, Default)]
pub struct TupleBlock {
    /// The tuples, in operator output order.
    pub tuples: Vec<Tuple>,
}

impl TupleBlock {
    fn new() -> TupleBlock {
        TupleBlock { tuples: Vec::new() }
    }

    /// Number of tuples in the block.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the block holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// A streaming operator: a pull source of [`TupleBlock`]s.
pub trait Operator {
    /// Produce the next block, or `None` when the stream is exhausted.
    /// After `None` the operator stays exhausted.
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>>;
}

/// Compile a physical plan into a streaming operator tree.
///
/// `stop_hint`, when set, promises that no consumer will ever pull more
/// than that many tuples in total; operators use it to stop early (scans)
/// or shed work (sort truncation). It is threaded down only through
/// cardinality-preserving edges, so passing `None` is always correct.
///
/// When the global tracer is recording, every operator is wrapped in a
/// lightweight shim that records one [`wow_obs::Op::ExecOp`] span at
/// exhaustion, parented so the span tree mirrors the operator tree under
/// whatever context (typically a `query_exec` span) is current at build
/// time. When tracing is off the tree is built bare — zero overhead.
pub fn build_operator(
    db: &mut Database,
    plan: &PhysicalPlan,
    stop_hint: Option<usize>,
) -> RelResult<Box<dyn Operator>> {
    if wow_obs::tracer().enabled() {
        let prof = Profiler {
            sink: None,
            next: Cell::new(0),
            trace: true,
        };
        let parent = wow_obs::current_context();
        build_with(
            db,
            plan,
            stop_hint,
            Some(Instr {
                prof: &prof,
                parent,
            }),
        )
    } else {
        build_with(db, plan, stop_hint, None)
    }
}

/// Like [`build_operator`], but additionally collects per-node
/// [`NodeStats`] into `sink`, which must hold one slot per plan node.
/// Slots are written in explain pre-order when each operator is exhausted
/// or dropped (see [`super::execute_analyzed`]).
pub(super) fn build_profiled(
    db: &mut Database,
    plan: &PhysicalPlan,
    stop_hint: Option<usize>,
    sink: Rc<RefCell<Vec<NodeStats>>>,
) -> RelResult<Box<dyn Operator>> {
    let prof = Profiler {
        sink: Some(sink),
        next: Cell::new(0),
        trace: wow_obs::tracer().enabled(),
    };
    let parent = wow_obs::current_context();
    build_with(
        db,
        plan,
        stop_hint,
        Some(Instr {
            prof: &prof,
            parent,
        }),
    )
}

/// Shared state of one instrumented plan build.
struct Profiler {
    /// EXPLAIN ANALYZE stats destination (`None`: spans only).
    sink: Option<Rc<RefCell<Vec<NodeStats>>>>,
    /// Next pre-order node index (matches `explain` line order: a node is
    /// numbered before its children, left subtree before right).
    next: Cell<usize>,
    /// Whether to allocate `exec_op` span ids (tracer was recording at
    /// build time).
    trace: bool,
}

impl Profiler {
    /// Claim the next pre-order index and, when tracing, a span id whose
    /// parent is `parent` (the enclosing operator's span, or the ambient
    /// context for the root).
    fn alloc(&self, parent: Option<TraceContext>) -> NodeInstr {
        let idx = self.next.get();
        self.next.set(idx + 1);
        let span = self.trace.then(|| TraceContext {
            trace_id: parent
                .map(|p| p.trace_id)
                .unwrap_or_else(wow_obs::fresh_trace_id),
            span_id: wow_obs::tracer().alloc_span_id(),
        });
        NodeInstr { idx, span, parent }
    }
}

/// Instrumentation handle threaded through one [`build_with`] recursion
/// level: the shared profiler plus the parent operator's span context.
#[derive(Clone, Copy)]
struct Instr<'a> {
    prof: &'a Profiler,
    parent: Option<TraceContext>,
}

/// One plan node's claim: its pre-order index and (optional) span ids.
#[derive(Clone, Copy)]
struct NodeInstr {
    idx: usize,
    /// This node's own span context (children parent to it).
    span: Option<TraceContext>,
    /// The context this node's span records under.
    parent: Option<TraceContext>,
}

fn build_with(
    db: &mut Database,
    plan: &PhysicalPlan,
    stop_hint: Option<usize>,
    instr: Option<Instr<'_>>,
) -> RelResult<Box<dyn Operator>> {
    if db.vectorized() {
        if let Some(op) = build_vectorized(db, plan, stop_hint, instr)? {
            return Ok(op);
        }
    }
    // Claim this node's pre-order slot before building children, so the
    // numbering matches `explain` line order.
    let node = instr.map(|i| i.prof.alloc(i.parent));
    let child = instr.map(|i| Instr {
        prof: i.prof,
        parent: node.and_then(|n| n.span).or(i.parent),
    });
    let op: Box<dyn Operator> = match plan {
        PhysicalPlan::SeqScan {
            table,
            alias: _,
            pred,
        } => {
            let table_id = db.catalog().table(table)?.id;
            if par::scan_goes_parallel(db, table_id, stop_hint) {
                Box::new(ParSeqScanStream {
                    table_id,
                    pred: pred.clone(),
                    buf: Vec::new(),
                    pos: 0,
                    built: false,
                })
            } else {
                // A predicate drops rows unpredictably, so the hint only
                // bounds the scan when the scan emits every row it reads.
                let remaining = if pred.is_none() { stop_hint } else { None };
                Box::new(SeqScanStream {
                    table_id,
                    pred: pred.clone(),
                    page_idx: 0,
                    exhausted: false,
                    remaining,
                })
            }
        }
        PhysicalPlan::IndexScanEq {
            table,
            alias: _,
            index,
            key,
            residual,
        } => {
            let table_id = db.catalog().table(table)?.id;
            let mut rids = db.index_lookup(index, key)?;
            if residual.is_none() {
                if let Some(h) = stop_hint {
                    rids.truncate(h);
                }
            }
            Box::new(RidFetchStream {
                table_id,
                rids,
                pos: 0,
                residual: residual.clone(),
            })
        }
        PhysicalPlan::IndexRange {
            table,
            alias: _,
            index,
            lower,
            upper,
            residual,
        } => {
            let table_id = db.catalog().table(table)?.id;
            let mut rids = range_rids(db, index, lower.as_ref(), upper.as_ref())?;
            if residual.is_none() {
                if let Some(h) = stop_hint {
                    rids.truncate(h);
                }
            }
            Box::new(RidFetchStream {
                table_id,
                rids,
                pos: 0,
                residual: residual.clone(),
            })
        }
        PhysicalPlan::Filter { input, pred } => {
            let input = build_with(db, input, None, child)?;
            Box::new(FilterStream {
                input,
                pred: pred.clone(),
            })
        }
        PhysicalPlan::Project {
            input,
            exprs,
            names: _,
        } => {
            // Projection is 1:1, so the hint survives.
            let input = build_with(db, input, stop_hint, child)?;
            Box::new(ProjectStream {
                input,
                exprs: exprs.clone(),
            })
        }
        PhysicalPlan::Limit {
            input,
            offset,
            count,
        } => {
            let quota = match (stop_hint, count) {
                (Some(h), Some(c)) => Some(h.min(*c)),
                (Some(h), None) => Some(h),
                (None, Some(c)) => Some(*c),
                (None, None) => None,
            };
            let input = build_with(db, input, quota.map(|q| offset + q), child)?;
            Box::new(LimitStream {
                input,
                to_skip: *offset,
                remaining: quota,
            })
        }
        PhysicalPlan::Distinct { input } => {
            let input = build_with(db, input, None, child)?;
            Box::new(DistinctStream {
                input,
                seen: HashSet::new(),
            })
        }
        PhysicalPlan::Sort { input, keys } => {
            let input = build_with(db, input, None, child)?;
            Box::new(SortStream {
                input,
                keys: keys.clone(),
                truncate: stop_hint,
                buf: Vec::new(),
                pos: 0,
                built: false,
            })
        }
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let out_schema = plan.output_schema(db)?;
            let in_schema = input.output_schema(db)?;
            let input = build_with(db, input, None, child)?;
            Box::new(AggregateStream {
                input,
                in_schema,
                out_schema,
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                buf: Vec::new(),
                pos: 0,
                built: false,
            })
        }
        PhysicalPlan::NestedLoopJoin { left, right, pred } => {
            let left = build_with(db, left, None, child)?;
            let right = build_with(db, right, None, child)?;
            Box::new(NestedLoopJoinStream {
                left,
                right: Some(right),
                right_rows: Vec::new(),
                pred: pred.clone(),
                cur: Vec::new(),
                li: 0,
                ri: 0,
                exhausted: false,
            })
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            let left = build_with(db, left, None, child)?;
            let right = build_with(db, right, None, child)?;
            Box::new(HashJoinStream {
                left,
                right: Some(right),
                table: par::JoinTable::empty(),
                right_rows: Vec::new(),
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
                residual: residual.clone(),
                cur: Vec::new(),
                next_li: 0,
                cur_probe: None,
                cur_matches: Vec::new(),
                mi: 0,
                exhausted: false,
            })
        }
    };
    Ok(match (instr, node) {
        (Some(i), Some(n)) => Box::new(InstrOp {
            input: op,
            rec: NodeRecorder::new(i.prof, n),
        }),
        _ => op,
    })
}

/// Accumulates one instrumented node's statistics and publishes them —
/// into the profile sink and, when tracing, as an `exec_op` span with the
/// node's pre-allocated span id — exactly once, at exhaustion or drop
/// (operators under a satisfied limit are never pulled to exhaustion).
struct NodeRecorder {
    sink: Option<Rc<RefCell<Vec<NodeStats>>>>,
    idx: usize,
    span: Option<TraceContext>,
    parent_id: u64,
    rows_out: u64,
    batches: u64,
    elapsed_ns: u64,
    done: bool,
}

impl NodeRecorder {
    fn new(prof: &Profiler, node: NodeInstr) -> NodeRecorder {
        NodeRecorder {
            sink: prof.sink.clone(),
            idx: node.idx,
            span: node.span,
            parent_id: node.parent.map(|p| p.span_id).unwrap_or(0),
            rows_out: 0,
            batches: 0,
            elapsed_ns: 0,
            done: false,
        }
    }

    fn tally(&mut self, rows: u64) {
        self.rows_out += rows;
        self.batches += 1;
    }

    fn flush(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        if let Some(sink) = &self.sink {
            let mut nodes = sink.borrow_mut();
            if let Some(slot) = nodes.get_mut(self.idx) {
                *slot = NodeStats {
                    rows_out: self.rows_out,
                    batches: self.batches,
                    elapsed_ns: self.elapsed_ns,
                };
            }
        }
        if let Some(ctx) = self.span {
            wow_obs::tracer().record_at(
                wow_obs::Op::ExecOp,
                ctx.trace_id,
                ctx.span_id,
                self.parent_id,
                self.elapsed_ns,
                self.rows_out,
            );
        }
    }
}

impl Drop for NodeRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Instrumentation shim around a row [`Operator`].
struct InstrOp {
    input: Box<dyn Operator>,
    rec: NodeRecorder,
}

impl Operator for InstrOp {
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>> {
        let t0 = Instant::now();
        let r = self.input.next_block(db);
        self.rec.elapsed_ns += t0.elapsed().as_nanos() as u64;
        match &r {
            Ok(Some(block)) => self.rec.tally(block.len() as u64),
            Ok(None) => self.rec.flush(),
            Err(_) => {}
        }
        r
    }
}

/// Instrumentation shim around a vectorized [`BatchSource`]; rows out are
/// the batches' surviving selections.
struct InstrBatch {
    input: Box<dyn BatchSource>,
    rec: NodeRecorder,
}

impl BatchSource for InstrBatch {
    fn next_batch(&mut self, db: &mut Database) -> RelResult<Option<Batch>> {
        let t0 = Instant::now();
        let r = self.input.next_batch(db);
        self.rec.elapsed_ns += t0.elapsed().as_nanos() as u64;
        match &r {
            Ok(Some(batch)) => self.rec.tally(batch.sel.len() as u64),
            Ok(None) => self.rec.flush(),
            Err(_) => {}
        }
        r
    }
}

/// Drain an operator into a plain tuple vector (pipeline-breaker helper).
fn drain(op: &mut dyn Operator, db: &mut Database) -> RelResult<Vec<Tuple>> {
    let mut out = Vec::new();
    while let Some(block) = op.next_block(db)? {
        out.extend(block.tuples);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Vectorized batch pipeline
// ---------------------------------------------------------------------------

/// A pull source of column [`Batch`]es — the vectorized counterpart of
/// [`Operator`].
trait BatchSource {
    /// Produce the next batch (never one with an empty selection), or
    /// `None` when the scan is exhausted.
    fn next_batch(&mut self, db: &mut Database) -> RelResult<Option<Batch>>;
}

/// Try to compile a `SeqScan`-rooted `Filter*`/`Project?` chain into the
/// vectorized batch pipeline. Returns `None` — fall back to row-at-a-time
/// streaming — for any other plan shape, for parallel-eligible scans (the
/// parallel scan applies the same kernels chunk-wise in `par`), and for
/// expressions the compiler rejects.
fn build_vectorized(
    db: &mut Database,
    plan: &PhysicalPlan,
    stop_hint: Option<usize>,
    instr: Option<Instr<'_>>,
) -> RelResult<Option<Box<dyn Operator>>> {
    let (proj, mut node) = match plan {
        PhysicalPlan::Project {
            input,
            exprs,
            names: _,
        } => (Some(exprs), input.as_ref()),
        other => (None, other),
    };
    let mut filters: Vec<&Expr> = Vec::new();
    let (table, scan_pred) = loop {
        match node {
            PhysicalPlan::Filter { input, pred } => {
                filters.push(pred);
                node = input.as_ref();
            }
            PhysicalPlan::SeqScan {
                table,
                alias: _,
                pred,
            } => break (table, pred.as_ref()),
            _ => return Ok(None),
        }
    };
    let table_id = db.catalog().table(table)?.id;
    if par::scan_goes_parallel(db, table_id, stop_hint) {
        return Ok(None);
    }
    let pred = match scan_pred {
        Some(e) => match compile::compile(e) {
            Some(p) => Some(p),
            None => return Ok(None),
        },
        None => None,
    };
    // Filters apply innermost (closest to the scan) first.
    filters.reverse();
    let mut filter_progs = Vec::with_capacity(filters.len());
    for f in filters {
        match compile::compile(f) {
            Some(p) => filter_progs.push(p),
            None => return Ok(None),
        }
    }
    let proj_progs = match proj {
        Some(exprs) => {
            let mut ps = Vec::with_capacity(exprs.len());
            for e in exprs {
                match compile::compile(e) {
                    Some(p) => ps.push(p),
                    None => return Ok(None),
                }
            }
            Some(ps)
        }
        None => None,
    };
    let ncols = node.output_schema(db)?.len();
    // Column budget: the scan decodes the predicate's columns for every
    // row, and everything the rest of the chain reads only for survivors.
    let pred_cols: Vec<usize> = pred
        .as_ref()
        .map(|p| p.columns().to_vec())
        .unwrap_or_default();
    let mut needed: BTreeSet<usize> = BTreeSet::new();
    for p in &filter_progs {
        needed.extend(p.columns().iter().copied());
    }
    match &proj_progs {
        Some(ps) => {
            for p in ps {
                needed.extend(p.columns().iter().copied());
            }
        }
        None => needed.extend(0..ncols),
    }
    if pred_cols.iter().chain(needed.iter()).any(|&c| c >= ncols) {
        // Out-of-range column: let the row engine surface its usual error.
        return Ok(None);
    }
    let post_cols: Vec<usize> = needed
        .into_iter()
        .filter(|c| !pred_cols.contains(c))
        .collect();
    // As in the row engine, a stop hint only bounds the scan when nothing
    // between the consumer and the heap drops rows.
    let remaining = if pred.is_none() && filter_progs.is_empty() {
        stop_hint
    } else {
        None
    };
    // The fused chain covers several plan nodes. Claim their pre-order
    // slots top-down (Project, then filters outermost-first, then the
    // scan) so indices and span parentage line up with the plan tree even
    // though the chain itself is assembled bottom-up. `VecRowsAdapter` is
    // a pipeline artifact, not a plan node, and gets no slot.
    let nfilters = filter_progs.len();
    let nodes: Vec<NodeInstr> = match instr {
        Some(i) => {
            let total = usize::from(proj_progs.is_some()) + nfilters + 1;
            let mut parent = i.parent;
            (0..total)
                .map(|_| {
                    let n = i.prof.alloc(parent);
                    parent = n.span.or(parent);
                    n
                })
                .collect()
        }
        None => Vec::new(),
    };
    let proj_off = usize::from(proj_progs.is_some());
    let mut src: Box<dyn BatchSource> = Box::new(VecSeqScanStream {
        table_id,
        pred,
        pred_cols,
        post_cols,
        ncols,
        scratch: Scratch::default(),
        rows: RawRows::default(),
        page_idx: 0,
        pages_done: false,
        remaining,
    });
    if let Some(i) = instr {
        src = Box::new(InstrBatch {
            input: src,
            rec: NodeRecorder::new(i.prof, nodes[proj_off + nfilters]),
        });
    }
    // `filter_progs` is innermost-first; filter `j` maps to pre-order slot
    // `proj_off + (nfilters - 1 - j)` (outermost filters come first).
    for (j, p) in filter_progs.into_iter().enumerate() {
        src = Box::new(VecFilterStream {
            input: src,
            pred: p,
            scratch: Scratch::default(),
        });
        if let Some(i) = instr {
            src = Box::new(InstrBatch {
                input: src,
                rec: NodeRecorder::new(i.prof, nodes[proj_off + nfilters - 1 - j]),
            });
        }
    }
    Ok(Some(match proj_progs {
        Some(programs) => {
            let op = Box::new(VecProjectStream {
                input: src,
                programs,
                scratch: Scratch::default(),
            });
            match instr {
                Some(i) => Box::new(InstrOp {
                    input: op,
                    rec: NodeRecorder::new(i.prof, nodes[0]),
                }),
                None => op,
            }
        }
        None => Box::new(VecRowsAdapter { input: src }),
    }))
}

/// Raw row bytes accumulated from page scans, consumed in batch-sized runs.
///
/// [`Database::scan_table_page_arena`] appends whole page regions into
/// `arena` and row bounds into `bounds` directly (one region copy per
/// page, no per-row work); this struct only tracks the drain cursor and
/// reclaims the buffers — which are reused page after page — once empty.
#[derive(Default)]
struct RawRows {
    arena: Vec<u8>,
    /// `(start, end)` byte bounds of each row in `arena`.
    bounds: Vec<(u32, u32)>,
    /// Rows already consumed from the front of `bounds`.
    consumed: usize,
}

impl RawRows {
    /// Pull one more page into the arena via `db`; `false` past the end.
    fn pull_page(&mut self, db: &mut Database, table: TableId, page_idx: usize) -> RelResult<bool> {
        db.scan_table_page_arena(table, page_idx, &mut self.arena, &mut self.bounds)
    }

    /// Rows not yet handed out.
    fn pending(&self) -> usize {
        self.bounds.len() - self.consumed
    }

    /// The `i`-th pending row's bytes.
    fn row(&self, i: usize) -> &[u8] {
        let (s, e) = self.bounds[self.consumed + i];
        &self.arena[s as usize..e as usize]
    }

    /// Consume the first `n` pending rows, reclaiming the arena once empty.
    fn advance(&mut self, n: usize) {
        self.consumed += n;
        if self.consumed == self.bounds.len() {
            self.arena.clear();
            self.bounds.clear();
            self.consumed = 0;
        }
    }
}

/// Decode `cols` for the first `n` pending rows into dense column vectors
/// aligned with row indexes. A row narrower than a requested column is the
/// same error the row engine raises for an out-of-range [`Expr::Column`].
fn decode_dense(rows: &RawRows, n: usize, cols: &[usize], out: &mut [Vec<Value>]) -> RelResult<()> {
    if cols.is_empty() {
        return Ok(());
    }
    for &c in cols {
        out[c].clear();
        out[c].reserve(n);
    }
    for i in 0..n {
        decode_row_cols(rows.row(i), cols, |c, v| out[c].push(v))?;
        for &c in cols {
            if out[c].len() != i + 1 {
                return Err(RelError::NoSuchColumn(format!("#{c}")));
            }
        }
    }
    Ok(())
}

/// Decode `cols` only at the selected rows (late materialization); the
/// unselected slots stay NULL and are never read.
fn decode_at_sel(
    rows: &RawRows,
    sel: &[u32],
    cols: &[usize],
    n: usize,
    out: &mut [Vec<Value>],
) -> RelResult<()> {
    if cols.is_empty() || sel.is_empty() {
        return Ok(());
    }
    for &c in cols {
        out[c].clear();
        out[c].resize(n, Value::Null);
    }
    for &r in sel {
        let i = r as usize;
        decode_row_cols(rows.row(i), cols, |c, v| out[c][i] = v)?;
    }
    Ok(())
}

/// Run a contiguous page range through the batch filter kernels,
/// materializing full tuples only for surviving rows. The parallel scan in
/// [`super::par`] calls this once per chunk, so the partitioned and serial
/// vectorized paths share the same compiled-predicate kernels.
pub(crate) fn filter_pages_vectorized(
    db: &mut Database,
    table: TableId,
    pages: std::ops::Range<usize>,
    pred: &Program,
    scratch: &mut Scratch,
) -> RelResult<Vec<Tuple>> {
    let pred_cols = pred.columns().to_vec();
    // `columns()` is sorted, so the batch only needs to be as wide as the
    // highest column the predicate reads.
    let width = pred_cols.last().map_or(0, |&c| c + 1);
    let mut rows = RawRows::default();
    let mut out = Vec::new();
    for page_idx in pages {
        if !rows.pull_page(db, table, page_idx)? {
            break;
        }
        while rows.pending() > 0 {
            let n = rows.pending().min(db.batch_size());
            let mut batch = Batch {
                cols: vec![Vec::new(); width],
                len: n,
                sel: Batch::identity_sel(n),
            };
            decode_dense(&rows, n, &pred_cols, &mut batch.cols)?;
            db.counters.batches += 1;
            let mut span = wow_obs::span(wow_obs::Op::VecEval);
            db.counters.sel_in += n as u64;
            pred.filter(&mut batch, scratch)?;
            db.counters.sel_out += batch.sel.len() as u64;
            span.arg(batch.sel.len() as u64);
            span.finish();
            for &r in &batch.sel {
                out.push(Tuple::new(decode_row(rows.row(r as usize))?));
            }
            rows.advance(n);
        }
    }
    Ok(out)
}

/// Vectorized sequential scan: reads raw row bytes page-at-a-time, decodes
/// only the predicate's columns, filters whole batches through a compiled
/// program, then materializes the remaining needed columns for surviving
/// rows only.
struct VecSeqScanStream {
    table_id: TableId,
    /// Compiled scan predicate, if any.
    pred: Option<Program>,
    /// Columns the predicate reads: decoded for every scanned row.
    pred_cols: Vec<usize>,
    /// Columns the rest of the chain reads (minus `pred_cols`): decoded
    /// only for rows that survive the filter.
    post_cols: Vec<usize>,
    /// Batch column count (the table's schema width).
    ncols: usize,
    scratch: Scratch,
    rows: RawRows,
    page_idx: usize,
    pages_done: bool,
    /// Pushed-down limit (only set when there is no predicate).
    remaining: Option<usize>,
}

impl BatchSource for VecSeqScanStream {
    fn next_batch(&mut self, db: &mut Database) -> RelResult<Option<Batch>> {
        loop {
            if self.remaining == Some(0) {
                return Ok(None);
            }
            let target = match self.remaining {
                Some(r) => r.min(db.batch_size()),
                None => db.batch_size(),
            };
            while self.rows.pending() < target && !self.pages_done {
                if self.rows.pull_page(db, self.table_id, self.page_idx)? {
                    self.page_idx += 1;
                } else {
                    self.pages_done = true;
                }
            }
            let n = self.rows.pending().min(target);
            if n == 0 {
                return Ok(None);
            }
            let mut batch = Batch {
                cols: vec![Vec::new(); self.ncols],
                len: n,
                sel: Batch::identity_sel(n),
            };
            decode_dense(&self.rows, n, &self.pred_cols, &mut batch.cols)?;
            db.counters.batches += 1;
            if let Some(pred) = &self.pred {
                let mut span = wow_obs::span(wow_obs::Op::VecEval);
                db.counters.sel_in += n as u64;
                pred.filter(&mut batch, &mut self.scratch)?;
                db.counters.sel_out += batch.sel.len() as u64;
                span.arg(batch.sel.len() as u64);
                span.finish();
            }
            decode_at_sel(&self.rows, &batch.sel, &self.post_cols, n, &mut batch.cols)?;
            self.rows.advance(n);
            if let Some(r) = &mut self.remaining {
                *r = r.saturating_sub(n);
            }
            if batch.sel.is_empty() {
                continue; // fully filtered batch; keep scanning
            }
            return Ok(Some(batch));
        }
    }
}

/// Batch-native filter: narrows the selection vector in place. Its columns
/// are materialized by the scan below (they are part of its `post_cols`).
struct VecFilterStream {
    input: Box<dyn BatchSource>,
    pred: Program,
    scratch: Scratch,
}

impl BatchSource for VecFilterStream {
    fn next_batch(&mut self, db: &mut Database) -> RelResult<Option<Batch>> {
        while let Some(mut b) = self.input.next_batch(db)? {
            let mut span = wow_obs::span(wow_obs::Op::VecEval);
            db.counters.sel_in += b.sel.len() as u64;
            self.pred.filter(&mut b, &mut self.scratch)?;
            db.counters.sel_out += b.sel.len() as u64;
            span.arg(b.sel.len() as u64);
            span.finish();
            if !b.sel.is_empty() {
                return Ok(Some(b));
            }
        }
        Ok(None)
    }
}

/// Batch-native projection: evaluates compiled expressions over the
/// selected rows and gathers the results into row-major tuples at the
/// vectorized pipeline's boundary.
struct VecProjectStream {
    input: Box<dyn BatchSource>,
    programs: Vec<Program>,
    scratch: Scratch,
}

impl Operator for VecProjectStream {
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>> {
        let Some(b) = self.input.next_batch(db)? else {
            return Ok(None);
        };
        let m = b.sel.len();
        let mut span = wow_obs::span(wow_obs::Op::VecEval);
        let mut out_cols: Vec<Vec<Value>> = Vec::with_capacity(self.programs.len());
        for p in &self.programs {
            p.eval(&b, &mut self.scratch)?;
            out_cols.push(
                b.sel
                    .iter()
                    .map(|&r| p.take_result(&b, &mut self.scratch, r as usize))
                    .collect(),
            );
        }
        span.arg(m as u64);
        span.finish();
        let mut tuples = Vec::with_capacity(m);
        for i in 0..m {
            tuples.push(Tuple::new(
                out_cols
                    .iter_mut()
                    .map(|c| std::mem::replace(&mut c[i], Value::Null))
                    .collect(),
            ));
        }
        Ok(Some(TupleBlock { tuples }))
    }
}

/// Adapter at the top of a vectorized chain with no projection: gathers the
/// selected rows of each batch back into row-major tuples.
struct VecRowsAdapter {
    input: Box<dyn BatchSource>,
}

impl Operator for VecRowsAdapter {
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>> {
        let Some(mut b) = self.input.next_batch(db)? else {
            return Ok(None);
        };
        let sel = std::mem::take(&mut b.sel);
        let mut tuples = Vec::with_capacity(sel.len());
        for &r in &sel {
            let i = r as usize;
            tuples.push(Tuple::new(
                b.cols
                    .iter_mut()
                    .map(|c| std::mem::replace(&mut c[i], Value::Null))
                    .collect(),
            ));
        }
        Ok(Some(TupleBlock { tuples }))
    }
}

/// Sequential heap scan, one page chain walk with buffer-pool readahead.
struct SeqScanStream {
    table_id: TableId,
    pred: Option<Expr>,
    page_idx: usize,
    exhausted: bool,
    /// Pushed-down limit: stop reading pages once this many tuples have
    /// been emitted (only set when there is no predicate).
    remaining: Option<usize>,
}

impl Operator for SeqScanStream {
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>> {
        if self.exhausted || self.remaining == Some(0) {
            return Ok(None);
        }
        let mut block = TupleBlock::new();
        let target = match self.remaining {
            Some(r) => r.min(BLOCK_CAP),
            None => BLOCK_CAP,
        };
        while block.len() < target {
            match db.scan_table_page(self.table_id, self.page_idx)? {
                None => {
                    self.exhausted = true;
                    break;
                }
                Some(rows) => {
                    self.page_idx += 1;
                    for (_, t) in rows {
                        let keep = match &self.pred {
                            Some(p) => eval_pred(p, &t)?,
                            None => true,
                        };
                        if keep {
                            block.tuples.push(t);
                        }
                    }
                }
            }
        }
        if let Some(r) = &mut self.remaining {
            *r = r.saturating_sub(block.len());
        }
        if block.is_empty() {
            return Ok(None);
        }
        Ok(Some(block))
    }
}

/// Parallel sequential scan: partitions the page chain across the worker
/// pool on first pull ([`par::parallel_scan`], order-preserving gather),
/// then emits [`BLOCK_CAP`]-sized blocks from the materialized result.
/// Selected only for large tables with no stop hint, where the scatter
/// cost is amortized and no early stop is possible anyway.
struct ParSeqScanStream {
    table_id: TableId,
    pred: Option<Expr>,
    buf: Vec<Tuple>,
    pos: usize,
    built: bool,
}

impl Operator for ParSeqScanStream {
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>> {
        if !self.built {
            self.buf = par::parallel_scan(db, self.table_id, self.pred.as_ref())?;
            self.built = true;
        }
        emit_buffered(&mut self.buf, &mut self.pos)
    }
}

/// Blockwise fetch of a precomputed rid list (index scans).
struct RidFetchStream {
    table_id: TableId,
    rids: Vec<Rid>,
    pos: usize,
    residual: Option<Expr>,
}

impl Operator for RidFetchStream {
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>> {
        while self.pos < self.rids.len() {
            let mut block = TupleBlock::new();
            let end = (self.pos + BLOCK_CAP).min(self.rids.len());
            for &rid in &self.rids[self.pos..end] {
                let Some(t) = db.get_row(self.table_id, rid)? else {
                    continue;
                };
                let keep = match &self.residual {
                    Some(p) => eval_pred(p, &t)?,
                    None => true,
                };
                if keep {
                    block.tuples.push(t);
                }
            }
            self.pos = end;
            if !block.is_empty() {
                return Ok(Some(block));
            }
        }
        Ok(None)
    }
}

struct FilterStream {
    input: Box<dyn Operator>,
    pred: Expr,
}

impl Operator for FilterStream {
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>> {
        while let Some(mut block) = self.input.next_block(db)? {
            let mut err = None;
            block.tuples.retain(|t| match eval_pred(&self.pred, t) {
                Ok(keep) => keep,
                Err(e) => {
                    err = Some(e);
                    false
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            if !block.is_empty() {
                return Ok(Some(block));
            }
        }
        Ok(None)
    }
}

struct ProjectStream {
    input: Box<dyn Operator>,
    exprs: Vec<Expr>,
}

impl Operator for ProjectStream {
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>> {
        let Some(block) = self.input.next_block(db)? else {
            return Ok(None);
        };
        let mut out = TupleBlock::new();
        out.tuples.reserve(block.len());
        for t in &block.tuples {
            let mut vals = Vec::with_capacity(self.exprs.len());
            for e in &self.exprs {
                vals.push(eval(e, t)?);
            }
            out.tuples.push(Tuple::new(vals));
        }
        Ok(Some(out))
    }
}

/// Offset/limit: the streaming heart of limit pushdown. Once the quota is
/// spent this operator never pulls its input again, which transitively
/// stops every streaming ancestor below it.
struct LimitStream {
    input: Box<dyn Operator>,
    to_skip: usize,
    remaining: Option<usize>,
}

impl Operator for LimitStream {
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>> {
        if self.remaining == Some(0) {
            return Ok(None);
        }
        while let Some(mut block) = self.input.next_block(db)? {
            if self.to_skip > 0 {
                let n = self.to_skip.min(block.len());
                block.tuples.drain(..n);
                self.to_skip -= n;
            }
            if let Some(rem) = &mut self.remaining {
                if block.len() > *rem {
                    block.tuples.truncate(*rem);
                }
                *rem -= block.len();
            }
            if !block.is_empty() {
                return Ok(Some(block));
            }
            if self.remaining == Some(0) {
                return Ok(None);
            }
        }
        Ok(None)
    }
}

struct DistinctStream {
    input: Box<dyn Operator>,
    seen: HashSet<Vec<u8>>,
}

impl Operator for DistinctStream {
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>> {
        while let Some(mut block) = self.input.next_block(db)? {
            block
                .tuples
                .retain(|t| self.seen.insert(Value::encode_composite(&t.values)));
            if !block.is_empty() {
                return Ok(Some(block));
            }
        }
        Ok(None)
    }
}

/// Pipeline breaker: drains its input on first pull, sorts, then emits
/// blocks. A stop hint from an ancestor limit truncates the sorted buffer
/// (top-k) before emission.
struct SortStream {
    input: Box<dyn Operator>,
    keys: Vec<(usize, bool)>,
    truncate: Option<usize>,
    buf: Vec<Tuple>,
    pos: usize,
    built: bool,
}

impl Operator for SortStream {
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>> {
        if !self.built {
            self.buf = drain(self.input.as_mut(), db)?;
            sort::sort_rows(&mut self.buf, &self.keys);
            if let Some(k) = self.truncate {
                self.buf.truncate(k);
            }
            self.built = true;
        }
        emit_buffered(&mut self.buf, &mut self.pos)
    }
}

/// Pipeline breaker: drains its input, groups and aggregates, then emits.
struct AggregateStream {
    input: Box<dyn Operator>,
    in_schema: crate::schema::Schema,
    out_schema: crate::schema::Schema,
    group_by: Vec<usize>,
    aggs: Vec<aggregate::AggSpec>,
    buf: Vec<Tuple>,
    pos: usize,
    built: bool,
}

impl Operator for AggregateStream {
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>> {
        if !self.built {
            let tuples = drain(self.input.as_mut(), db)?;
            let rows = Rows {
                schema: std::mem::take(&mut self.in_schema),
                tuples,
            };
            let out_schema = std::mem::take(&mut self.out_schema);
            let out = aggregate::aggregate(out_schema, &rows, &self.group_by, &self.aggs)?;
            self.buf = out.tuples;
            self.built = true;
        }
        emit_buffered(&mut self.buf, &mut self.pos)
    }
}

/// Emit the next [`BLOCK_CAP`]-sized slice of a materialized buffer.
fn emit_buffered(buf: &mut [Tuple], pos: &mut usize) -> RelResult<Option<TupleBlock>> {
    if *pos >= buf.len() {
        return Ok(None);
    }
    let end = (*pos + BLOCK_CAP).min(buf.len());
    let tuples = buf[*pos..end].iter_mut().map(std::mem::take).collect();
    *pos = end;
    Ok(Some(TupleBlock { tuples }))
}

/// Nested-loop join: materializes the right (inner) side on first pull and
/// streams the left side, keeping a `(left tuple, right index)` cursor so
/// blocks stay near [`BLOCK_CAP`] even for wide cross products.
struct NestedLoopJoinStream {
    left: Box<dyn Operator>,
    right: Option<Box<dyn Operator>>,
    right_rows: Vec<Tuple>,
    pred: Option<Expr>,
    cur: Vec<Tuple>,
    li: usize,
    ri: usize,
    exhausted: bool,
}

impl Operator for NestedLoopJoinStream {
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>> {
        if let Some(mut right) = self.right.take() {
            self.right_rows = drain(right.as_mut(), db)?;
            if self.right_rows.is_empty() {
                self.exhausted = true;
            }
        }
        if self.exhausted {
            return Ok(None);
        }
        let mut block = TupleBlock::new();
        loop {
            if self.li >= self.cur.len() {
                match self.left.next_block(db)? {
                    None => {
                        self.exhausted = true;
                        break;
                    }
                    Some(b) => {
                        self.cur = b.tuples;
                        self.li = 0;
                        self.ri = 0;
                    }
                }
            }
            while self.li < self.cur.len() && block.len() < BLOCK_CAP {
                let joined = self.cur[self.li].concat(&self.right_rows[self.ri]);
                let keep = match &self.pred {
                    Some(p) => eval_pred(p, &joined)?,
                    None => true,
                };
                if keep {
                    block.tuples.push(joined);
                }
                self.ri += 1;
                if self.ri == self.right_rows.len() {
                    self.ri = 0;
                    self.li += 1;
                }
            }
            if block.len() >= BLOCK_CAP {
                break;
            }
        }
        db.counters.join_rows += block.len() as u64;
        if block.is_empty() {
            return Ok(None);
        }
        Ok(Some(block))
    }
}

/// Hash equi-join: builds the hash table over the right side on first pull,
/// then streams and probes the left side in order. NULL keys never join.
struct HashJoinStream {
    left: Box<dyn Operator>,
    right: Option<Box<dyn Operator>>,
    table: par::JoinTable,
    right_rows: Vec<Tuple>,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    residual: Option<Expr>,
    cur: Vec<Tuple>,
    /// Next unprobed index in `cur`.
    next_li: usize,
    /// The probe tuple whose match list is mid-emission.
    cur_probe: Option<Tuple>,
    /// Match list of `cur_probe` (build-side indices).
    cur_matches: Vec<usize>,
    mi: usize,
    exhausted: bool,
}

impl HashJoinStream {
    fn build(&mut self, db: &mut Database) -> RelResult<()> {
        let Some(mut right) = self.right.take() else {
            return Ok(());
        };
        self.right_rows = drain(right.as_mut(), db)?;
        self.table = par::build_join_table(db, &self.right_rows, &self.right_keys);
        if self.table.is_empty() {
            self.exhausted = true;
        }
        Ok(())
    }

    /// Advance to the next probe tuple with matches, refilling `cur` from
    /// the left input as needed. Returns `false` at end of stream.
    fn advance_probe(&mut self, db: &mut Database) -> RelResult<bool> {
        'next_left: loop {
            if self.next_li >= self.cur.len() {
                match self.left.next_block(db)? {
                    None => {
                        self.exhausted = true;
                        return Ok(false);
                    }
                    Some(b) => {
                        self.cur = b.tuples;
                        self.next_li = 0;
                        continue 'next_left;
                    }
                }
            }
            let l = &self.cur[self.next_li];
            self.next_li += 1;
            let mut key = Vec::new();
            for &k in &self.left_keys {
                let v = &l.values[k];
                if v.is_null() {
                    continue 'next_left;
                }
                v.encode_key(&mut key);
            }
            if let Some(matches) = self.table.get(&key) {
                self.cur_matches = matches.clone();
                self.mi = 0;
                self.cur_probe = Some(std::mem::take(&mut self.cur[self.next_li - 1]));
                return Ok(true);
            }
        }
    }
}

impl Operator for HashJoinStream {
    fn next_block(&mut self, db: &mut Database) -> RelResult<Option<TupleBlock>> {
        self.build(db)?;
        if self.exhausted && self.mi >= self.cur_matches.len() {
            return Ok(None);
        }
        let mut block = TupleBlock::new();
        loop {
            if self.mi >= self.cur_matches.len() && !self.advance_probe(db)? {
                break;
            }
            let probe = self.cur_probe.as_ref().expect("probe set with matches");
            while self.mi < self.cur_matches.len() && block.len() < BLOCK_CAP {
                let ri = self.cur_matches[self.mi];
                let joined = probe.concat(&self.right_rows[ri]);
                let keep = match &self.residual {
                    Some(p) => eval_pred(p, &joined)?,
                    None => true,
                };
                if keep {
                    block.tuples.push(joined);
                }
                self.mi += 1;
            }
            if block.len() >= BLOCK_CAP {
                break;
            }
        }
        db.counters.join_rows += block.len() as u64;
        if block.is_empty() {
            return Ok(None);
        }
        Ok(Some(block))
    }
}
