//! Relation schemas.

use crate::error::{RelError, RelResult};
use crate::types::DataType;
use crate::value::Value;
use std::fmt;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name. Output schemas of joins use qualified names
    /// (`alias.column`); base tables use bare names.
    pub name: String,
    /// Data type.
    pub ty: DataType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

impl Column {
    /// A nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    /// A NOT NULL column.
    pub fn not_null(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into(),
            ty,
            nullable: false,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The columns, in tuple order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by name. Accepts either an exact match or, when
    /// the stored name is qualified (`e.salary`), a match on the part after
    /// the dot — so unqualified references work over join outputs when
    /// unambiguous.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        if let Some(i) = self.columns.iter().position(|c| c.name == name) {
            return Some(i);
        }
        let mut found = None;
        for (i, c) in self.columns.iter().enumerate() {
            if let Some((_, bare)) = c.name.split_once('.') {
                if bare == name {
                    if found.is_some() {
                        return None; // ambiguous
                    }
                    found = Some(i);
                }
            }
        }
        found
    }

    /// Index of a column, as an error-producing lookup.
    pub fn resolve(&self, name: &str) -> RelResult<usize> {
        self.index_of(name)
            .ok_or_else(|| RelError::NoSuchColumn(name.to_string()))
    }

    /// The column at `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Validate a row against this schema: arity, types (with int→float
    /// coercion applied), and NOT NULL constraints.
    pub fn validate_row(&self, values: Vec<Value>) -> RelResult<Vec<Value>> {
        if values.len() != self.columns.len() {
            return Err(RelError::TypeMismatch {
                expected: format!("{} columns", self.columns.len()),
                got: format!("{} values", values.len()),
            });
        }
        let mut out = Vec::with_capacity(values.len());
        for (v, c) in values.into_iter().zip(&self.columns) {
            if v.is_null() && !c.nullable {
                return Err(RelError::NullViolation(c.name.clone()));
            }
            out.push(v.coerce_to(c.ty).map_err(|_| RelError::TypeMismatch {
                expected: format!("{} for column {}", c.ty, c.name),
                got: "incompatible value".to_string(),
            })?);
        }
        Ok(out)
    }

    /// Concatenate two schemas, qualifying with the given aliases if the
    /// names are not already qualified (used by joins).
    pub fn join(left: &Schema, left_alias: &str, right: &Schema, right_alias: &str) -> Schema {
        let mut columns = Vec::with_capacity(left.len() + right.len());
        for c in &left.columns {
            columns.push(Column {
                name: qualify(left_alias, &c.name),
                ty: c.ty,
                nullable: c.nullable,
            });
        }
        for c in &right.columns {
            columns.push(Column {
                name: qualify(right_alias, &c.name),
                ty: c.ty,
                nullable: c.nullable,
            });
        }
        Schema { columns }
    }

    /// Rename all columns to `alias.name` (used when a scan is bound to a
    /// range variable).
    pub fn qualified(&self, alias: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    name: qualify(alias, &c.name),
                    ty: c.ty,
                    nullable: c.nullable,
                })
                .collect(),
        }
    }
}

fn qualify(alias: &str, name: &str) -> String {
    if name.contains('.') {
        name.to_string()
    } else {
        format!("{alias}.{name}")
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
            if !c.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp_schema() -> Schema {
        Schema::new(vec![
            Column::not_null("name", DataType::Text),
            Column::new("dept", DataType::Text),
            Column::new("salary", DataType::Int),
        ])
    }

    #[test]
    fn index_of_exact_and_suffix() {
        let s = emp_schema().qualified("e");
        assert_eq!(s.index_of("e.name"), Some(0));
        assert_eq!(s.index_of("salary"), Some(2));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn ambiguous_suffix_is_none() {
        let left = emp_schema();
        let right = emp_schema();
        let joined = Schema::join(&left, "a", &right, "b");
        assert_eq!(joined.len(), 6);
        assert_eq!(joined.index_of("a.name"), Some(0));
        assert_eq!(joined.index_of("b.name"), Some(3));
        assert_eq!(joined.index_of("name"), None, "ambiguous must not resolve");
    }

    #[test]
    fn validate_row_checks_arity_null_type() {
        let s = emp_schema();
        assert!(s
            .validate_row(vec![Value::text("a"), Value::Null, Value::Int(1)])
            .is_ok());
        // Wrong arity.
        assert!(s.validate_row(vec![Value::text("a")]).is_err());
        // NOT NULL violation.
        assert!(matches!(
            s.validate_row(vec![Value::Null, Value::Null, Value::Int(1)]),
            Err(RelError::NullViolation(_))
        ));
        // Type mismatch.
        assert!(s
            .validate_row(vec![Value::text("a"), Value::Null, Value::text("x")])
            .is_err());
    }

    #[test]
    fn validate_row_widens_ints() {
        let s = Schema::new(vec![Column::new("x", DataType::Float)]);
        let row = s.validate_row(vec![Value::Int(3)]).unwrap();
        assert_eq!(row[0], Value::Float(3.0));
    }

    #[test]
    fn join_does_not_requalify() {
        let l = emp_schema().qualified("e");
        let r = emp_schema();
        let j = Schema::join(&l, "ignored", &r, "d");
        assert_eq!(j.columns[0].name, "e.name");
        assert_eq!(j.columns[3].name, "d.name");
    }

    #[test]
    fn display_shows_columns() {
        let s = emp_schema();
        let shown = s.to_string();
        assert!(shown.contains("name TEXT NOT NULL"));
        assert!(shown.contains("salary INT"));
    }

    #[test]
    fn resolve_errors_on_missing() {
        assert!(matches!(
            emp_schema().resolve("bogus"),
            Err(RelError::NoSuchColumn(_))
        ));
    }
}
