//! Tuples: rows of values, with their storage encoding.

use crate::error::RelResult;
use crate::value::{decode_row, encode_row, Value};
use std::fmt;

/// A row of values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tuple {
    /// The values, in schema column order.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the tuple has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at column `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Serialize for heap storage.
    pub fn encode(&self) -> Vec<u8> {
        encode_row(&self.values)
    }

    /// Deserialize from heap storage.
    pub fn decode(bytes: &[u8]) -> RelResult<Tuple> {
        Ok(Tuple {
            values: decode_row(bytes)?,
        })
    }

    /// Concatenate two tuples (used by joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.len() + other.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Project the tuple onto the given column indexes.
    pub fn project(&self, indexes: &[usize]) -> Tuple {
        Tuple {
            values: indexes.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match v {
                Value::Text(s) => write!(f, "\"{s}\"")?,
                Value::Null => write!(f, "NULL")?,
                other => write!(f, "{other}")?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tuple {
        Tuple::new(vec![
            Value::text("alice"),
            Value::Int(30),
            Value::Null,
            Value::Bool(true),
        ])
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = sample();
        assert_eq!(Tuple::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn concat_appends() {
        let a = Tuple::new(vec![Value::Int(1)]);
        let b = Tuple::new(vec![Value::Int(2), Value::Int(3)]);
        assert_eq!(
            a.concat(&b).values,
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let t = sample();
        let p = t.project(&[1, 0, 1]);
        assert_eq!(
            p.values,
            vec![Value::Int(30), Value::text("alice"), Value::Int(30)]
        );
    }

    #[test]
    fn display_quotes_text_and_shows_null() {
        assert_eq!(sample().to_string(), "(\"alice\", 30, NULL, true)");
    }
}
