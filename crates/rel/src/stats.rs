//! Table statistics for the optimizer.
//!
//! Row counts are maintained incrementally by DML; per-column distinct
//! counts are computed on demand by `ANALYZE`-style full scans (see
//! [`crate::db::Database::analyze`]) and decay gracefully: a missing
//! distinct estimate falls back to a fixed default selectivity, exactly the
//! System R compromise.

use crate::catalog::TableId;
use std::collections::HashMap;

/// Default selectivity used when no statistics exist for a column.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;
/// Default selectivity for range predicates.
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 0.3;

/// Statistics for one table.
#[derive(Debug, Default, Clone)]
pub struct TableStats {
    /// Current row count.
    pub rows: u64,
    /// Estimated distinct values per column index (from the last analyze).
    pub distinct: HashMap<usize, u64>,
}

impl TableStats {
    /// Estimated selectivity of `col = const`.
    pub fn eq_selectivity(&self, col: usize) -> f64 {
        match self.distinct.get(&col) {
            Some(&d) if d > 0 => {
                // The distinct count dates from the last analyze and can
                // exceed the live row count after deletes; a column never
                // has more distinct values than rows, so clamp before
                // inverting or the estimate drops below one matching row.
                1.0 / d.min(self.rows.max(1)) as f64
            }
            _ => DEFAULT_EQ_SELECTIVITY,
        }
    }

    /// Estimated output rows of an equality predicate on `col`.
    pub fn eq_cardinality(&self, col: usize) -> f64 {
        self.rows as f64 * self.eq_selectivity(col)
    }
}

/// Statistics for all tables.
#[derive(Debug, Default, Clone)]
pub struct StatsRegistry {
    tables: HashMap<TableId, TableStats>,
}

impl StatsRegistry {
    /// Empty registry.
    pub fn new() -> StatsRegistry {
        StatsRegistry::default()
    }

    /// Stats for a table (zeroes if never touched).
    pub fn get(&self, table: TableId) -> TableStats {
        self.tables.get(&table).cloned().unwrap_or_default()
    }

    /// Mutable stats entry.
    pub fn entry(&mut self, table: TableId) -> &mut TableStats {
        self.tables.entry(table).or_default()
    }

    /// Record `n` inserted rows.
    pub fn on_insert(&mut self, table: TableId, n: u64) {
        self.entry(table).rows += n;
    }

    /// Record `n` deleted rows.
    pub fn on_delete(&mut self, table: TableId, n: u64) {
        let e = self.entry(table);
        e.rows = e.rows.saturating_sub(n);
    }

    /// Replace the distinct-count map after an analyze scan.
    pub fn set_distinct(&mut self, table: TableId, distinct: HashMap<usize, u64>) {
        self.entry(table).distinct = distinct;
    }

    /// Forget a dropped table.
    pub fn remove(&mut self, table: TableId) {
        self.tables.remove(&table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_delete_counting() {
        let mut r = StatsRegistry::new();
        r.on_insert(1, 10);
        r.on_insert(1, 5);
        r.on_delete(1, 3);
        assert_eq!(r.get(1).rows, 12);
        // Underflow saturates.
        r.on_delete(1, 100);
        assert_eq!(r.get(1).rows, 0);
    }

    #[test]
    fn selectivity_uses_distinct_when_known() {
        let mut r = StatsRegistry::new();
        r.on_insert(1, 1000);
        let mut d = HashMap::new();
        d.insert(0, 50u64);
        r.set_distinct(1, d);
        let s = r.get(1);
        assert!((s.eq_selectivity(0) - 0.02).abs() < 1e-12);
        assert!((s.eq_cardinality(0) - 20.0).abs() < 1e-9);
        // Unknown column falls back to the default.
        assert_eq!(s.eq_selectivity(7), DEFAULT_EQ_SELECTIVITY);
    }

    #[test]
    fn stale_distinct_clamps_to_live_rows() {
        let mut r = StatsRegistry::new();
        r.on_insert(1, 1000);
        let mut d = HashMap::new();
        d.insert(0, 800u64);
        r.set_distinct(1, d);
        // Heavy delete since the last analyze: the stored distinct count
        // (800) now exceeds the live row count (10).
        r.on_delete(1, 990);
        let s = r.get(1);
        assert!((s.eq_selectivity(0) - 0.1).abs() < 1e-12, "1/10, not 1/800");
        assert!(s.eq_cardinality(0) <= s.rows as f64);
        // Fully emptied table: the clamp floor keeps the estimate finite.
        r.on_delete(1, 10);
        assert!((r.get(1).eq_selectivity(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_table_is_empty() {
        let r = StatsRegistry::new();
        assert_eq!(r.get(99).rows, 0);
    }

    #[test]
    fn remove_forgets() {
        let mut r = StatsRegistry::new();
        r.on_insert(1, 10);
        r.remove(1);
        assert_eq!(r.get(1).rows, 0);
    }
}
