//! Recursive-descent parser for the QUEL dialect.

use super::ast::{ColumnDef, RetrieveStmt, SortKey, Statement, Target};
use super::lexer::{tokenize, Token, TokenKind};
use crate::catalog::IndexKind;
use crate::error::{RelError, RelResult};
use crate::exec::AggFunc;
use crate::expr::{BinOp, Expr, UnOp};
use crate::types::DataType;
use crate::value::Value;

/// Parse a program: one or more statements.
pub fn parse_program(src: &str) -> RelResult<Vec<Statement>> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    while !p.at_eof() {
        out.push(p.statement()?);
    }
    if out.is_empty() {
        return Err(RelError::Parse {
            pos: 0,
            message: "empty program".into(),
        });
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if !matches!(t.kind, TokenKind::Eof) {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> RelError {
        RelError::Parse {
            pos: self.peek().pos,
            message: message.into(),
        }
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Require a keyword.
    fn expect_kw(&mut self, kw: &str) -> RelResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{kw}`, found {}",
                self.peek().kind.describe()
            )))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> RelResult<()> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().kind.describe()
            )))
        }
    }

    /// Require any identifier (returns it verbatim).
    fn ident(&mut self) -> RelResult<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    // -- Statements -----------------------------------------------------------

    fn statement(&mut self) -> RelResult<Statement> {
        if self.at_kw("CREATE") {
            return self.create();
        }
        if self.eat_kw("DROP") {
            if self.eat_kw("TABLE") {
                return Ok(Statement::DropTable(self.ident()?));
            }
            self.expect_kw("INDEX")?;
            return Ok(Statement::DropIndex(self.ident()?));
        }
        if self.eat_kw("RANGE") {
            self.expect_kw("OF")?;
            let var = self.ident()?;
            self.expect_kw("IS")?;
            let table = self.ident()?;
            return Ok(Statement::RangeOf { var, table });
        }
        if self.eat_kw("RETRIEVE") {
            return Ok(Statement::Retrieve(self.retrieve_body()?));
        }
        if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            self.expect_kw("RETRIEVE")?;
            let body = self.retrieve_body()?;
            return Ok(if analyze {
                Statement::ExplainAnalyze(body)
            } else {
                Statement::Explain(body)
            });
        }
        if self.eat_kw("APPEND") {
            self.expect_kw("TO")?;
            let table = self.ident()?;
            let assigns = self.assign_list()?;
            return Ok(Statement::Append { table, assigns });
        }
        if self.eat_kw("REPLACE") {
            let var = self.ident()?;
            let assigns = self.assign_list()?;
            let where_ = self.opt_where()?;
            return Ok(Statement::Replace {
                var,
                assigns,
                where_,
            });
        }
        if self.eat_kw("DELETE") {
            let var = self.ident()?;
            let where_ = self.opt_where()?;
            return Ok(Statement::Delete { var, where_ });
        }
        if self.eat_kw("BEGIN") {
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ABORT") {
            return Ok(Statement::Abort);
        }
        if self.eat_kw("ANALYZE") {
            return Ok(Statement::Analyze(self.ident()?));
        }
        Err(self.error(format!(
            "expected a statement keyword, found {}",
            self.peek().kind.describe()
        )))
    }

    fn create(&mut self) -> RelResult<Statement> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            let name = self.ident()?;
            self.expect(TokenKind::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col_name = self.ident()?;
                let ty_word = self.ident()?;
                let ty = DataType::from_keyword(&ty_word)
                    .ok_or_else(|| self.error(format!("unknown type `{ty_word}`")))?;
                let mut def = ColumnDef {
                    name: col_name,
                    ty,
                    not_null: false,
                    key: false,
                };
                loop {
                    if self.eat_kw("KEY") {
                        def.key = true;
                        def.not_null = true;
                    } else if self.eat_kw("NOT") {
                        self.expect_kw("NULL")?;
                        def.not_null = true;
                    } else {
                        break;
                    }
                }
                columns.push(def);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
            return Ok(Statement::CreateTable { name, columns });
        }
        let unique = self.eat_kw("UNIQUE");
        self.expect_kw("INDEX")?;
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let column = self.ident()?;
        self.expect(TokenKind::RParen)?;
        let kind = if self.eat_kw("USING") {
            let word = self.ident()?;
            match word.to_ascii_uppercase().as_str() {
                "BTREE" => IndexKind::BTree,
                "HASH" => IndexKind::Hash,
                other => return Err(self.error(format!("unknown index kind `{other}`"))),
            }
        } else {
            IndexKind::BTree
        };
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
            kind,
            unique,
        })
    }

    fn retrieve_body(&mut self) -> RelResult<RetrieveStmt> {
        let unique = self.eat_kw("UNIQUE");
        self.expect(TokenKind::LParen)?;
        let mut targets = Vec::new();
        loop {
            targets.push(self.target()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        let where_ = self.opt_where()?;
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.column_ref()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut sort_by = Vec::new();
        if self.eat_kw("SORT") {
            self.expect_kw("BY")?;
            loop {
                let column = self.column_ref()?;
                let ascending = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                sort_by.push(SortKey { column, ascending });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_kw("LIMIT") {
            let count = self.usize_literal()?;
            let offset = if self.eat_kw("OFFSET") {
                self.usize_literal()?
            } else {
                0
            };
            limit = Some((offset, count));
        }
        Ok(RetrieveStmt {
            unique,
            targets,
            where_,
            group_by,
            sort_by,
            limit,
        })
    }

    fn usize_literal(&mut self) -> RelResult<usize> {
        match self.peek().kind {
            TokenKind::Int(i) if i >= 0 => {
                self.bump();
                Ok(i as usize)
            }
            _ => Err(self.error("expected a non-negative integer")),
        }
    }

    /// A dotted or bare column reference.
    fn column_ref(&mut self) -> RelResult<String> {
        let first = self.ident()?;
        if self.eat(&TokenKind::Dot) {
            let second = self.ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    fn target(&mut self) -> RelResult<Target> {
        // Lookahead for `name = ...` (an output label) vs a bare expression.
        // A label is ident `=` not followed by another `=`; expressions never
        // start with `ident =` because `=` is not a prefix operator.
        let mut name = None;
        if let TokenKind::Ident(label) = &self.peek().kind {
            let label = label.clone();
            if matches!(
                self.tokens.get(self.pos + 1).map(|t| &t.kind),
                Some(TokenKind::Eq)
            ) && !is_keyword(&label)
            {
                self.bump();
                self.bump();
                name = Some(label);
            }
        }
        // Aggregate?
        if let TokenKind::Ident(word) = &self.peek().kind {
            if let Some(func) = AggFunc::from_keyword(word) {
                if matches!(
                    self.tokens.get(self.pos + 1).map(|t| &t.kind),
                    Some(TokenKind::LParen)
                ) {
                    self.bump();
                    self.bump();
                    let arg = if self.eat(&TokenKind::Star) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(TokenKind::RParen)?;
                    return Ok(Target::Agg { name, func, arg });
                }
            }
        }
        let expr = self.expr()?;
        Ok(Target::Expr { name, expr })
    }

    fn assign_list(&mut self) -> RelResult<Vec<(String, Expr)>> {
        self.expect(TokenKind::LParen)?;
        let mut out = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(TokenKind::Eq)?;
            let e = self.expr()?;
            out.push((col, e));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(out)
    }

    fn opt_where(&mut self) -> RelResult<Option<Expr>> {
        if self.eat_kw("WHERE") {
            Ok(Some(self.expr()?))
        } else {
            Ok(None)
        }
    }

    // -- Expressions ------------------------------------------------------------

    /// expr := or
    pub(crate) fn expr(&mut self) -> RelResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> RelResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> RelResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> RelResult<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> RelResult<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negate = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            let test = Expr::IsNull(Box::new(left));
            return Ok(if negate {
                Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(test),
                }
            } else {
                test
            });
        }
        // LIKE "pattern"
        if self.eat_kw("LIKE") {
            let pattern = match &self.peek().kind {
                TokenKind::Str(s) => {
                    let s = s.clone();
                    self.bump();
                    s
                }
                other => {
                    return Err(self.error(format!(
                        "LIKE requires a string pattern, found {}",
                        other.describe()
                    )))
                }
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
            });
        }
        let op = match self.peek().kind {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.additive()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> RelResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn multiplicative(&mut self) -> RelResult<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn unary(&mut self) -> RelResult<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> RelResult<Expr> {
        match &self.peek().kind {
            TokenKind::Int(i) => {
                let v = *i;
                self.bump();
                Ok(Expr::Literal(Value::Int(v)))
            }
            TokenKind::Float(f) => {
                let v = *f;
                self.bump();
                Ok(Expr::Literal(Value::Float(v)))
            }
            TokenKind::Str(s) => {
                let v = s.clone();
                self.bump();
                Ok(Expr::Literal(Value::Text(v)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(word) => {
                let upper = word.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => {
                        self.bump();
                        Ok(Expr::Literal(Value::Null))
                    }
                    "TRUE" => {
                        self.bump();
                        Ok(Expr::Literal(Value::Bool(true)))
                    }
                    "FALSE" => {
                        self.bump();
                        Ok(Expr::Literal(Value::Bool(false)))
                    }
                    "DATE" => {
                        // DATE "YYYY-MM-DD" literal.
                        self.bump();
                        match &self.peek().kind {
                            TokenKind::Str(s) => {
                                let days = crate::types::parse_date(s).ok_or_else(|| {
                                    self.error(format!("bad date literal \"{s}\""))
                                })?;
                                self.bump();
                                Ok(Expr::Literal(Value::Date(days)))
                            }
                            other => Err(self.error(format!(
                                "DATE requires a string literal, found {}",
                                other.describe()
                            ))),
                        }
                    }
                    _ => Ok(Expr::ColumnRef(self.column_ref()?)),
                }
            }
            other => Err(self.error(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

/// Words that cannot be used as output labels in a target list.
fn is_keyword(word: &str) -> bool {
    matches!(
        word.to_ascii_uppercase().as_str(),
        "WHERE"
            | "GROUP"
            | "SORT"
            | "BY"
            | "LIMIT"
            | "OFFSET"
            | "AND"
            | "OR"
            | "NOT"
            | "NULL"
            | "TRUE"
            | "FALSE"
            | "IS"
            | "LIKE"
            | "DATE"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Statement {
        let mut stmts = parse_program(src).unwrap();
        assert_eq!(stmts.len(), 1, "expected a single statement");
        stmts.pop().unwrap()
    }

    #[test]
    fn create_table() {
        let s = one("CREATE TABLE emp (name TEXT KEY, dept TEXT, salary INT NOT NULL)");
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "emp");
                assert_eq!(columns.len(), 3);
                assert!(columns[0].key && columns[0].not_null);
                assert!(!columns[1].not_null);
                assert!(columns[2].not_null && !columns[2].key);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_index_variants() {
        match one("CREATE UNIQUE INDEX i ON t (c) USING HASH") {
            Statement::CreateIndex { kind, unique, .. } => {
                assert_eq!(kind, IndexKind::Hash);
                assert!(unique);
            }
            other => panic!("{other:?}"),
        }
        match one("CREATE INDEX i ON t (c)") {
            Statement::CreateIndex { kind, unique, .. } => {
                assert_eq!(kind, IndexKind::BTree);
                assert!(!unique);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn range_and_retrieve() {
        let stmts =
            parse_program("RANGE OF e IS emp RETRIEVE (e.name, e.salary) WHERE e.salary > 100")
                .unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(
            matches!(&stmts[0], Statement::RangeOf { var, table } if var == "e" && table == "emp")
        );
        match &stmts[1] {
            Statement::Retrieve(r) => {
                assert_eq!(r.targets.len(), 2);
                assert!(r.where_.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn named_targets_and_aggregates() {
        let s = one("RETRIEVE (e.dept, total = SUM(e.salary), n = COUNT(*)) GROUP BY e.dept");
        match s {
            Statement::Retrieve(r) => {
                assert!(matches!(&r.targets[0], Target::Expr { name: None, .. }));
                assert!(matches!(
                    &r.targets[1],
                    Target::Agg { name: Some(n), func: AggFunc::Sum, arg: Some(_) } if n == "total"
                ));
                assert!(matches!(
                    &r.targets[2],
                    Target::Agg { name: Some(n), func: AggFunc::Count, arg: None } if n == "n"
                ));
                assert_eq!(r.group_by, vec!["e.dept"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sort_and_limit() {
        let s = one("RETRIEVE (e.name) SORT BY e.salary DESC, e.name LIMIT 10 OFFSET 20");
        match s {
            Statement::Retrieve(r) => {
                assert_eq!(r.sort_by.len(), 2);
                assert!(!r.sort_by[0].ascending);
                assert!(r.sort_by[1].ascending);
                assert_eq!(r.limit, Some((20, 10)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn append_replace_delete() {
        match one(r#"APPEND TO emp (name = "x", salary = 5)"#) {
            Statement::Append { table, assigns } => {
                assert_eq!(table, "emp");
                assert_eq!(assigns.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        match one(r#"REPLACE e (salary = e.salary * 2) WHERE e.dept = "toy""#) {
            Statement::Replace {
                var,
                assigns,
                where_,
            } => {
                assert_eq!(var, "e");
                assert_eq!(assigns.len(), 1);
                assert!(where_.is_some());
            }
            other => panic!("{other:?}"),
        }
        match one("DELETE e") {
            Statement::Delete { var, where_ } => {
                assert_eq!(var, "e");
                assert!(where_.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let s = one("RETRIEVE (x = 1 + 2 * 3)");
        match s {
            Statement::Retrieve(r) => match &r.targets[0] {
                Target::Expr { expr, .. } => {
                    assert_eq!(expr.to_string(), "(1 + (2 * 3))");
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn logical_precedence_and_parens() {
        let s = one(r#"RETRIEVE (e.x) WHERE e.a = 1 OR e.b = 2 AND e.c = 3"#);
        match s {
            Statement::Retrieve(r) => {
                assert_eq!(
                    r.where_.unwrap().to_string(),
                    "((e.a = 1) OR ((e.b = 2) AND (e.c = 3)))"
                );
            }
            other => panic!("{other:?}"),
        }
        let s = one(r#"RETRIEVE (e.x) WHERE (e.a = 1 OR e.b = 2) AND e.c = 3"#);
        match s {
            Statement::Retrieve(r) => {
                assert_eq!(
                    r.where_.unwrap().to_string(),
                    "(((e.a = 1) OR (e.b = 2)) AND (e.c = 3))"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn is_null_like_and_not() {
        let s =
            one(r#"RETRIEVE (e.x) WHERE e.mgr IS NOT NULL AND e.name LIKE "Sm*" AND NOT e.flag"#);
        match s {
            Statement::Retrieve(r) => {
                let text = r.where_.unwrap().to_string();
                assert!(text.contains("IS NULL"));
                assert!(text.contains("LIKE \"Sm*\""));
                assert!(text.contains("(NOT e.flag)"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn date_literals() {
        let s = one(r#"RETRIEVE (e.x) WHERE e.hired >= DATE "1983-05-23""#);
        match s {
            Statement::Retrieve(r) => {
                let text = r.where_.unwrap().to_string();
                assert!(text.contains("1983-05-23"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_program(r#"RETRIEVE (x = DATE "bogus")"#).is_err());
    }

    #[test]
    fn txn_statements() {
        assert!(matches!(one("BEGIN"), Statement::Begin));
        assert!(matches!(one("COMMIT"), Statement::Commit));
        assert!(matches!(one("ABORT"), Statement::Abort));
        assert!(matches!(one("ANALYZE emp"), Statement::Analyze(t) if t == "emp"));
    }

    #[test]
    fn explain() {
        assert!(matches!(
            one("EXPLAIN RETRIEVE (e.x)"),
            Statement::Explain(_)
        ));
    }

    #[test]
    fn explain_analyze() {
        assert!(matches!(
            one("EXPLAIN ANALYZE RETRIEVE (e.x)"),
            Statement::ExplainAnalyze(_)
        ));
        // `ANALYZE` alone still names the statistics statement.
        assert!(matches!(one("ANALYZE emp"), Statement::Analyze(t) if t == "emp"));
    }

    #[test]
    fn negative_numbers_and_unary_minus() {
        let s = one("RETRIEVE (x = -5, y = -(1 + 2))");
        match s {
            Statement::Retrieve(r) => {
                assert_eq!(r.targets.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_have_positions() {
        match parse_program("RETRIEVE e.name") {
            Err(RelError::Parse { message, .. }) => {
                assert!(message.contains("expected `(`"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_program("").is_err());
        assert!(parse_program("FLY TO emp").is_err());
        assert!(parse_program("CREATE TABLE t (c BLOB)").is_err());
    }

    #[test]
    fn multi_statement_program() {
        let stmts = parse_program(
            r#"
            CREATE TABLE emp (name TEXT KEY, salary INT)
            APPEND TO emp (name = "a", salary = 1)  -- seed row
            RANGE OF e IS emp
            RETRIEVE (e.name)
            "#,
        )
        .unwrap();
        assert_eq!(stmts.len(), 4);
    }
}
