//! Tokenizer for the QUEL dialect.

use crate::error::{RelError, RelResult};

/// A token with its byte position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub pos: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized case-insensitively by
    /// the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string literal (with `\"` and `\\` escapes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable token description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(i) => format!("integer {i}"),
            TokenKind::Float(f) => format!("float {f}"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.glyph()),
        }
    }

    fn glyph(&self) -> &'static str {
        match self {
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::Eq => "=",
            TokenKind::Ne => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            _ => "?",
        }
    }
}

fn err(pos: usize, message: impl Into<String>) -> RelError {
    RelError::Parse {
        pos,
        message: message.into(),
    }
}

/// Tokenize a source string. Comments run from `--` to end of line.
pub fn tokenize(src: &str) -> RelResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < bytes.len()
                && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
            {
                j += 1;
            }
            out.push(Token {
                kind: TokenKind::Ident(src[i..j].to_string()),
                pos: start,
            });
            i = j;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            let mut is_float = false;
            while j < bytes.len() {
                let cj = bytes[j] as char;
                if cj.is_ascii_digit() {
                    j += 1;
                } else if cj == '.'
                    && !is_float
                    && bytes
                        .get(j + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    is_float = true;
                    j += 1;
                } else if (cj == 'e' || cj == 'E')
                    && bytes
                        .get(j + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit() || *b == b'+' || *b == b'-')
                {
                    is_float = true;
                    j += 2;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                    break;
                } else {
                    break;
                }
            }
            let text = &src[i..j];
            let kind =
                if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| err(start, format!("bad float literal `{text}`")))?,
                    )
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        err(start, format!("integer literal `{text}` out of range"))
                    })?)
                };
            out.push(Token { kind, pos: start });
            i = j;
            continue;
        }
        // Strings.
        if c == '"' {
            let mut j = i + 1;
            let mut s = String::new();
            loop {
                match bytes.get(j) {
                    None => return Err(err(start, "unterminated string literal")),
                    Some(b'"') => {
                        j += 1;
                        break;
                    }
                    Some(b'\\') => {
                        match bytes.get(j + 1) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            _ => return Err(err(j, "bad escape in string literal")),
                        }
                        j += 2;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = &src[j..];
                        let ch = rest.chars().next().unwrap();
                        s.push(ch);
                        j += ch.len_utf8();
                    }
                }
            }
            out.push(Token {
                kind: TokenKind::Str(s),
                pos: start,
            });
            i = j;
            continue;
        }
        // Operators.
        let (kind, len) = match c {
            '(' => (TokenKind::LParen, 1),
            ')' => (TokenKind::RParen, 1),
            ',' => (TokenKind::Comma, 1),
            '.' => (TokenKind::Dot, 1),
            '=' => (TokenKind::Eq, 1),
            '!' if bytes.get(i + 1) == Some(&b'=') => (TokenKind::Ne, 2),
            '<' if bytes.get(i + 1) == Some(&b'=') => (TokenKind::Le, 2),
            '<' if bytes.get(i + 1) == Some(&b'>') => (TokenKind::Ne, 2),
            '<' => (TokenKind::Lt, 1),
            '>' if bytes.get(i + 1) == Some(&b'=') => (TokenKind::Ge, 2),
            '>' => (TokenKind::Gt, 1),
            '+' => (TokenKind::Plus, 1),
            '-' => (TokenKind::Minus, 1),
            '*' => (TokenKind::Star, 1),
            '/' => (TokenKind::Slash, 1),
            '%' => (TokenKind::Percent, 1),
            other => return Err(err(i, format!("unexpected character `{other}`"))),
        };
        out.push(Token { kind, pos: start });
        i += len;
    }
    out.push(Token {
        kind: TokenKind::Eof,
        pos: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_symbols() {
        assert_eq!(
            kinds("RANGE OF e IS emp"),
            vec![
                TokenKind::Ident("RANGE".into()),
                TokenKind::Ident("OF".into()),
                TokenKind::Ident("e".into()),
                TokenKind::Ident("IS".into()),
                TokenKind::Ident("emp".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.25 1e3 7"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.25),
                TokenKind::Float(1000.0),
                TokenKind::Int(7),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dot_vs_float() {
        // `e.salary` must lex as ident dot ident, not a float.
        assert_eq!(
            kinds("e.salary"),
            vec![
                TokenKind::Ident("e".into()),
                TokenKind::Dot,
                TokenKind::Ident("salary".into()),
                TokenKind::Eof,
            ]
        );
        // `1.x` is int, dot, ident (trailing-dot floats are not supported).
        assert_eq!(
            kinds("1.x"),
            vec![
                TokenKind::Int(1),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""plain" "with \"quote\"" "back\\slash""#),
            vec![
                TokenKind::Str("plain".into()),
                TokenKind::Str("with \"quote\"".into()),
                TokenKind::Str("back\\slash".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(tokenize(r#""oops"#), Err(RelError::Parse { .. })));
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= != < <= > >= <>"),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a -- the rest is noise = != \n b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn bad_character_errors_with_position() {
        match tokenize("abc @ def") {
            Err(RelError::Parse { pos, .. }) => assert_eq!(pos, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            kinds("\"café\""),
            vec![TokenKind::Str("café".into()), TokenKind::Eof]
        );
    }
}
