//! Abstract syntax for the QUEL dialect.

use crate::catalog::IndexKind;
use crate::exec::AggFunc;
use crate::expr::Expr;
use crate::types::DataType;

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Data type.
    pub ty: DataType,
    /// `NOT NULL` (implied by `KEY`).
    pub not_null: bool,
    /// `KEY`: part of the primary key.
    pub key: bool,
}

/// One entry of a `RETRIEVE` target list.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A scalar expression, optionally named (`pay = e.salary * 12`).
    Expr {
        /// Output name (defaults to the expression's source text shape).
        name: Option<String>,
        /// The expression.
        expr: Expr,
    },
    /// An aggregate (`total = SUM(e.salary)`, `n = COUNT(*)`).
    Agg {
        /// Output name.
        name: Option<String>,
        /// The function.
        func: AggFunc,
        /// The argument (`None` = `*`).
        arg: Option<Expr>,
    },
}

impl Target {
    /// Whether this target is an aggregate.
    pub fn is_agg(&self) -> bool {
        matches!(self, Target::Agg { .. })
    }
}

/// A `SORT BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Column reference (output name or input column).
    pub column: String,
    /// Ascending?
    pub ascending: bool,
}

/// A `RETRIEVE` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RetrieveStmt {
    /// `RETRIEVE UNIQUE`: drop duplicate output rows.
    pub unique: bool,
    /// Target list.
    pub targets: Vec<Target>,
    /// `WHERE` predicate.
    pub where_: Option<Expr>,
    /// `GROUP BY` column references.
    pub group_by: Vec<String>,
    /// `SORT BY` keys.
    pub sort_by: Vec<SortKey>,
    /// `LIMIT count [OFFSET n]`.
    pub limit: Option<(usize, usize)>,
}

impl RetrieveStmt {
    /// Whether any target is an aggregate.
    pub fn has_aggregates(&self) -> bool {
        self.targets.iter().any(Target::is_agg)
    }
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE [KEY] [NOT NULL], ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `CREATE [UNIQUE] INDEX name ON table (column) [USING BTREE|HASH]`
    CreateIndex {
        /// Index name.
        name: String,
        /// Table name.
        table: String,
        /// Column name.
        column: String,
        /// Physical kind (default BTREE).
        kind: IndexKind,
        /// Uniqueness.
        unique: bool,
    },
    /// `DROP TABLE name`
    DropTable(String),
    /// `DROP INDEX name`
    DropIndex(String),
    /// `RANGE OF var IS table`
    RangeOf {
        /// Range variable.
        var: String,
        /// Table name.
        table: String,
    },
    /// `RETRIEVE (...) ...`
    Retrieve(RetrieveStmt),
    /// `EXPLAIN RETRIEVE (...) ...` — returns the physical plan as text.
    Explain(RetrieveStmt),
    /// `EXPLAIN ANALYZE RETRIEVE (...) ...` — executes the query and
    /// returns the plan annotated with per-operator row counts, batch
    /// counts, and wall time.
    ExplainAnalyze(RetrieveStmt),
    /// `APPEND TO table (col = expr, ...)`
    Append {
        /// Table name.
        table: String,
        /// Column assignments (expressions must be constant).
        assigns: Vec<(String, Expr)>,
    },
    /// `REPLACE var (col = expr, ...) [WHERE pred]`
    Replace {
        /// Range variable of the target table.
        var: String,
        /// Column assignments (may reference the row via the range var).
        assigns: Vec<(String, Expr)>,
        /// Restriction.
        where_: Option<Expr>,
    },
    /// `DELETE var [WHERE pred]`
    Delete {
        /// Range variable of the target table.
        var: String,
        /// Restriction.
        where_: Option<Expr>,
    },
    /// `BEGIN`
    Begin,
    /// `COMMIT`
    Commit,
    /// `ABORT`
    Abort,
    /// `ANALYZE table`
    Analyze(String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn retrieve_aggregate_detection() {
        let plain = RetrieveStmt {
            targets: vec![Target::Expr {
                name: None,
                expr: Expr::Literal(Value::Int(1)),
            }],
            ..Default::default()
        };
        assert!(!plain.has_aggregates());
        let agg = RetrieveStmt {
            targets: vec![Target::Agg {
                name: Some("n".into()),
                func: AggFunc::Count,
                arg: None,
            }],
            ..Default::default()
        };
        assert!(agg.has_aggregates());
    }
}
