//! A QUEL-like query language.
//!
//! *Windows on the World* predates SQL's dominance; the INGRES lineage
//! spoke QUEL, so this engine does too (with a few pragmatic extensions,
//! documented in the parser):
//!
//! ```text
//! RANGE OF e IS emp
//! RETRIEVE (e.name, pay = e.salary * 12) WHERE e.dept = "toy" SORT BY e.name
//! APPEND TO emp (name = "alice", dept = "toy", salary = 120)
//! REPLACE e (salary = e.salary + 10) WHERE e.dept = "shoe"
//! DELETE e WHERE e.salary < 50
//! ```
//!
//! Plus the DDL/transaction statements an embedded engine needs:
//! `CREATE TABLE`, `CREATE [UNIQUE] INDEX ... USING BTREE|HASH`,
//! `DROP TABLE/INDEX`, `BEGIN`/`COMMIT`/`ABORT`, `ANALYZE`, and
//! `EXPLAIN RETRIEVE ...`.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{ColumnDef, RetrieveStmt, SortKey, Statement, Target};
pub use parser::parse_program;
